//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the slice of the `bytes` 1.x API it uses: [`Bytes`],
//! [`BytesMut`], and little-endian read/write via the [`Buf`] / [`BufMut`]
//! traits. [`Bytes`] shares its backing buffer behind an [`Arc`] so clones
//! and channel sends stay cheap, matching the real crate's behavior.

use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of bytes with a read cursor.
///
/// Reading through [`Buf`] methods consumes from the front: `len()` and
/// `remaining()` both report the unread suffix, as in the real crate.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            offset: 0,
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            offset: 0,
        }
    }

    /// Creates a buffer by copying `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            offset: 0,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let start = self.offset;
        self.offset += n;
        &self.data[start..start + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            offset: 0,
        }
    }
}

/// Lookup table for the IEEE CRC-32 polynomial (reflected 0xEDB88320), built
/// at compile time so the checksum path costs one table index per byte.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/Ethernet polynomial) of `data`.
///
/// Used by wire-frame encoders to checksum payloads; any single-bit flip in
/// the checked region is guaranteed to change the result.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in data {
        c = CRC32_TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A growable byte buffer for building messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte buffer, consuming from the front.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next `n` bytes; panics on underflow.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_bytes(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads a little-endian `u32`, or `None` on underflow instead of
    /// panicking. Decoders of untrusted buffers read their header fields
    /// through this so truncated input surfaces as an error value. (The stub
    /// stays minimal: grow the `try_` family only as decoders need it.)
    fn try_get_u32_le(&mut self) -> Option<u32> {
        if self.remaining() < 4 {
            return None;
        }
        Some(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        self.take(n).to_vec()
    }

    // Primitive reads borrow the underlying slice directly instead of going
    // through `copy_bytes`, keeping wire decoding allocation-free.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("take(4) yields 4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("take(8) yields 8 bytes"))
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends every value of `values` as a little-endian `f32`, so encoders
    /// can serialize a tensor's backing slice without an intermediate `Vec`.
    fn put_f32_slice_le(&mut self, values: &[f32]) {
        for &v in values {
            self.put_f32_le(v);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        buf.put_u8(7);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 7);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Bytes::from_static(&[1, 2]).get_u32_le();
    }

    #[test]
    fn try_reads_return_none_instead_of_panicking() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.try_get_u32_le(), Some(u32::from_le_bytes([1, 2, 3, 4])));
        assert_eq!(b.try_get_u32_le(), None);
        assert_eq!(b.remaining(), 1, "failed try read must not consume");
    }

    #[test]
    fn f32_slice_writer_matches_scalar_writes() {
        let values = [1.5f32, -0.25, f32::NAN, 0.0];
        let mut bulk = BytesMut::new();
        bulk.put_f32_slice_le(&values);
        let mut scalar = BytesMut::new();
        for &v in &values {
            scalar.put_f32_le(v);
        }
        assert_eq!(bulk.as_ref(), scalar.as_ref());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Any single-bit flip changes the checksum.
        let base = crc32(b"hello world");
        assert_ne!(base, crc32(b"hello worle"));
    }

    #[test]
    fn clone_shares_data_but_not_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.get_u32_le();
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 4);
    }
}
