//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the slice of the `bytes` 1.x API it uses: [`Bytes`],
//! [`BytesMut`], and little-endian read/write via the [`Buf`] / [`BufMut`]
//! traits. [`Bytes`] shares its backing buffer behind an [`Arc`] so clones
//! and channel sends stay cheap, matching the real crate's behavior.

use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of bytes with a read cursor.
///
/// Reading through [`Buf`] methods consumes from the front: `len()` and
/// `remaining()` both report the unread suffix, as in the real crate.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            offset: 0,
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            offset: 0,
        }
    }

    /// Creates a buffer by copying `slice`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            offset: 0,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let start = self.offset;
        self.offset += n;
        &self.data[start..start + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            offset: 0,
        }
    }
}

/// Lookup table for the IEEE CRC-32 polynomial (reflected 0xEDB88320), built
/// at compile time so the checksum path costs one table index per byte.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/Ethernet polynomial) of `data`.
///
/// Used by wire-frame encoders to checksum payloads; any single-bit flip in
/// the checked region is guaranteed to change the result.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in data {
        c = CRC32_TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest-even.
///
/// Values beyond the half range (|x| > 65504 after rounding) become signed
/// infinity, magnitudes below 2⁻²⁴·½ round to signed zero, and every NaN maps
/// to the canonical quiet NaN `0x7E00` (payloads are not preserved — wire
/// payloads must not depend on NaN bit patterns). Used by the wire codecs to
/// quantize feature payloads; [`f16_bits_to_f32`] is its exact inverse on
/// every non-NaN half bit pattern.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Infinity keeps its sign; every NaN collapses to the canonical qNaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7C00; // overflow: beyond the largest half
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even. A
        // carry out of the 10-bit mantissa correctly bumps the exponent (and
        // saturates to infinity at the top, matching RNE at 65520).
        let half_exp = (unbiased + 15) as u32;
        let mut val = (half_exp << 10) | (mant >> 13);
        let round = mant & 0x1FFF;
        if round > 0x1000 || (round == 0x1000 && (val & 1) == 1) {
            val += 1;
        }
        return sign | val as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: value = m·2⁻²⁴ with m in 1..=1023.
        let full_mant = mant | 0x0080_0000;
        let shift = (-unbiased - 1) as u32; // 14..=24
        let mut val = full_mant >> shift;
        let rem = full_mant & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (val & 1) == 1) {
            val += 1; // may carry into the smallest normal — still correct
        }
        return sign | val as u16;
    }
    sign // underflow to signed zero
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
///
/// Every half value (including subnormals and infinities) is exactly
/// representable in `f32`, so this conversion is lossless; a decode followed
/// by [`f32_to_f16_bits`] reproduces the original bits for every non-NaN
/// input.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = (bits >> 10) & 0x1F;
    let mant = (bits & 0x03FF) as u32;
    let out = match exp {
        0 => {
            // Zero or subnormal: m·2⁻²⁴ is exact in f32 (m has ≤ 10 bits).
            let magnitude = mant as f32 * f32::from_bits(0x3380_0000); // 2⁻²⁴
            return if sign != 0 { -magnitude } else { magnitude };
        }
        0x1F => sign | 0x7F80_0000 | (mant << 13),
        _ => sign | ((exp as u32 + 112) << 23) | (mant << 13),
    };
    f32::from_bits(out)
}

/// A growable byte buffer for building messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte buffer, consuming from the front.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next `n` bytes; panics on underflow.
    fn copy_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_bytes(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_bytes(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.copy_bytes(2);
        u16::from_le_bytes([b[0], b[1]])
    }

    /// Reads a little-endian `u32`, or `None` on underflow instead of
    /// panicking. Decoders of untrusted buffers read their header fields
    /// through this so truncated input surfaces as an error value. (The stub
    /// stays minimal: grow the `try_` family only as decoders need it.)
    fn try_get_u32_le(&mut self) -> Option<u32> {
        if self.remaining() < 4 {
            return None;
        }
        Some(self.get_u32_le())
    }

    /// Reads one byte, or `None` on underflow — the codec decompressors walk
    /// untrusted token streams through this.
    fn try_get_u8(&mut self) -> Option<u8> {
        if self.remaining() < 1 {
            return None;
        }
        Some(self.get_u8())
    }

    /// Reads a little-endian `u16`, or `None` on underflow.
    fn try_get_u16_le(&mut self) -> Option<u16> {
        if self.remaining() < 2 {
            return None;
        }
        Some(self.get_u16_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_bytes(&mut self, n: usize) -> Vec<u8> {
        self.take(n).to_vec()
    }

    // Primitive reads borrow the underlying slice directly instead of going
    // through `copy_bytes`, keeping wire decoding allocation-free.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("take(4) yields 4 bytes"))
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("take(2) yields 2 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("take(8) yields 8 bytes"))
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends every value of `values` as a little-endian `f32`, so encoders
    /// can serialize a tensor's backing slice without an intermediate `Vec`.
    fn put_f32_slice_le(&mut self, values: &[f32]) {
        for &v in values {
            self.put_f32_le(v);
        }
    }

    /// Appends every value of `values` quantized to a little-endian IEEE 754
    /// binary16 via [`f32_to_f16_bits`] — the f16 wire codec's bulk writer.
    fn put_f16_slice_le(&mut self, values: &[f32]) {
        for &v in values {
            self.put_u16_le(f32_to_f16_bits(v));
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        buf.put_u8(7);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 7);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Bytes::from_static(&[1, 2]).get_u32_le();
    }

    #[test]
    fn try_reads_return_none_instead_of_panicking() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.try_get_u32_le(), Some(u32::from_le_bytes([1, 2, 3, 4])));
        assert_eq!(b.try_get_u32_le(), None);
        assert_eq!(b.remaining(), 1, "failed try read must not consume");
    }

    #[test]
    fn f32_slice_writer_matches_scalar_writes() {
        let values = [1.5f32, -0.25, f32::NAN, 0.0];
        let mut bulk = BytesMut::new();
        bulk.put_f32_slice_le(&values);
        let mut scalar = BytesMut::new();
        for &v in &values {
            scalar.put_f32_le(v);
        }
        assert_eq!(bulk.as_ref(), scalar.as_ref());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Any single-bit flip changes the checksum.
        let base = crc32(b"hello world");
        assert_ne!(base, crc32(b"hello worle"));
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // largest finite half
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00); // RNE tie rounds to inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
        assert_eq!(f32_to_f16_bits(f32::NAN), 0x7E00);
        assert_eq!(f32_to_f16_bits(2.980_232_2e-8), 0x0000); // tie at 2⁻²⁵ → even
        assert_eq!(f32_to_f16_bits(3.0e-8), 0x0001); // just above → smallest subnormal
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001); // 2⁻²⁴ itself
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert!(f16_bits_to_f32(0x7E01).is_nan());
    }

    #[test]
    fn f16_round_trip_is_identity_for_every_non_nan_bit_pattern() {
        for bits in 0..=u16::MAX {
            let value = f16_bits_to_f32(bits);
            if value.is_nan() {
                assert_eq!(f32_to_f16_bits(value), 0x7E00 | (bits & 0x8000));
                continue;
            }
            assert_eq!(f32_to_f16_bits(value), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn f16_rne_relative_error_is_bounded() {
        // Normal halves carry 11 significant bits, so RNE keeps the relative
        // error within 2⁻¹¹ (the wire contract promises ≤ 2⁻¹⁰).
        let mut x = 6.2e-5f32; // just above the smallest normal half
        while x < 2.0e4 {
            for v in [x, -x, x * 1.337, x * 2.9999] {
                let back = f16_bits_to_f32(f32_to_f16_bits(v));
                let rel = ((back - v) / v).abs();
                assert!(rel <= 2f32.powi(-11), "value {v}: relative error {rel}");
            }
            x *= 1.7;
        }
    }

    #[test]
    fn u16_and_f16_slice_writers_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_f16_slice_le(&[1.0, -0.5, 65504.0]);
        let mut b = buf.freeze();
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.try_get_u16_le(), Some(0x3C00));
        assert_eq!(f16_bits_to_f32(b.get_u16_le()), -0.5);
        assert_eq!(b.get_u16_le(), 0x7BFF);
        assert_eq!(b.try_get_u16_le(), None);
        assert_eq!(b.try_get_u8(), None);
        let mut one = Bytes::from(vec![7u8]);
        assert_eq!(one.try_get_u16_le(), None);
        assert_eq!(one.remaining(), 1, "failed try read must not consume");
        assert_eq!(one.try_get_u8(), Some(7));
    }

    #[test]
    fn clone_shares_data_but_not_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.get_u32_le();
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 4);
    }
}
