//! Vendored stand-in for `rand_chacha`, implementing a genuine ChaCha8
//! stream-cipher generator against the sibling `rand` stub's traits.
//!
//! Seeding derives the 32-byte ChaCha key from the 64-bit seed with
//! SplitMix64 (the same construction `rand`'s `seed_from_u64` uses), so
//! streams are deterministic, high-quality, and independent across seeds.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic random number generator backed by the ChaCha8 core.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Creates a generator from a full 32-byte key (little-endian words).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..13 are the block counter, 14..15 the stream nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0u32; 16],
            index: 16,
        }
    }

    /// Generates the next keystream block into `buf` and advances the counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit little-endian counter in words 12..13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        ChaCha8Rng::from_seed(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
