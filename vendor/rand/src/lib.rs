//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the slice of the `rand` 0.8 API it uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, `gen::<T>()`, and
//! `gen_range` over integer and float ranges. Concrete generators live in
//! the sibling `rand_chacha` stub.

/// A source of random `u64` values; everything else derives from this.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a simple 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw random bits via `gen()`.
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f32(rng.next_u64())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the generator's raw bits.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range`; panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_half_open() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
        assert_eq!(unit_f32(0), 0.0);
        assert!(unit_f32(u64::MAX) < 1.0);
    }
}
