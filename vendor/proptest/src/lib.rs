//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of proptest's surface its test-suites use:
//! the [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`]
//! over numeric ranges and tuples, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics: each generated `#[test]` samples its strategies from a ChaCha8
//! stream seeded deterministically from the test's module path and name, and
//! runs the body for the configured number of cases. Unlike real proptest
//! there is no shrinking — a failing case panics with the values embedded in
//! the assertion message — which keeps runs reproducible without persisted
//! regression files.

pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` becomes a `#[test]` that samples its
/// `pat in strategy` arguments for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ( $($pat,)+ ) = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                );
                $body
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..8, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..9, x in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn tuple_strategies_work((a, b) in pair(), flag in 0usize..2) {
            prop_assert!((1..8).contains(&a));
            prop_assert!(b < 100);
            prop_assert!(flag < 2);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..1000) {
            prop_assert_eq!(seed.min(999), seed);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        let mut c = crate::test_runner::TestRng::deterministic("x::z");
        let s = 0u64..1_000_000;
        let xs: Vec<u64> = (0..16).map(|_| s.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| s.sample(&mut b)).collect();
        let zs: Vec<u64> = (0..16).map(|_| s.sample(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
