//! Value-generation strategies: numeric ranges, tuples, and constants.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
