//! Test-run configuration and the deterministic sampling RNG.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How many cases each property test runs (matches proptest's default of 256
/// unless overridden with `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies; seeded from the test's fully-qualified name
/// so every run of the suite samples identical values.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Creates an RNG seeded from `name` (FNV-1a over the UTF-8 bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }

    /// Mutable access to the underlying generator for strategy sampling.
    pub fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.inner
    }
}
