//! Test-run configuration and the deterministic sampling RNG.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How many cases each property test runs (matches proptest's default of 256
/// unless overridden with `#![proptest_config(ProptestConfig::with_cases(n))]`).
///
/// Like the real crate, the `PROPTEST_CASES` environment variable feeds into
/// the case count — here it acts as a *floor* that raises both the default
/// and explicit `with_cases` configurations, so CI can crank adversarial
/// coverage (e.g. `PROPTEST_CASES=512`) without lowering suites that
/// deliberately ask for more.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

fn cases_with_floor(cases: u32, floor: Option<u32>) -> u32 {
    floor.map_or(cases, |env| env.max(cases))
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test (raised to
    /// `PROPTEST_CASES` when that is set and larger).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases_with_floor(cases, env_cases()),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// The RNG handed to strategies; seeded from the test's fully-qualified name
/// so every run of the suite samples identical values.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Creates an RNG seeded from `name` (FNV-1a over the UTF-8 bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }

    /// Mutable access to the underlying generator for strategy sampling.
    pub fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_floor_raises_but_never_lowers() {
        assert_eq!(cases_with_floor(32, None), 32);
        assert_eq!(cases_with_floor(32, Some(512)), 512);
        assert_eq!(cases_with_floor(1024, Some(512)), 1024);
        assert_eq!(cases_with_floor(256, Some(256)), 256);
    }
}
