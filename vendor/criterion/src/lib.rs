//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark with a
//! short warm-up followed by an adaptive timed loop and prints one
//! `name ... time/iter` line — enough to compare hot paths locally while
//! keeping `cargo bench` runs fast and dependency-free.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget for one benchmark's timed loop.
const TIME_BUDGET: Duration = Duration::from_millis(200);
/// Upper bound on timed iterations per benchmark.
const MAX_ITERS: u64 = 10_000;

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs closures and measures their per-iteration time.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up run (also primes caches and catches panics early).
        black_box(routine());
        let mut iters = 0u64;
        let started = Instant::now();
        while started.elapsed() < TIME_BUDGET && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        let elapsed = started.elapsed();
        self.iters = iters.max(1);
        self.nanos_per_iter = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.nanos_per_iter;
    let (scaled, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "bench: {name:<48} {scaled:>10.3} {unit}/iter ({} iters)",
        bencher.iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive loop ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the adaptive loop ignores it.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`, handing it a reference to `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        report(name, &bencher);
        self
    }
}

/// Bundles benchmark functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main`, running each group (CLI flags from `cargo bench` are
/// accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.nanos_per_iter >= 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(3)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
    }
}
