//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is run as a short warm-up followed by a
//! configurable number of *samples*; one sample is an adaptive timed loop that
//! runs the routine until a per-sample wall-clock budget is spent. The
//! min/median/max nanoseconds-per-iteration across samples are reported on
//! stdout, and — when the `CRITERION_OUT` environment variable names a
//! directory — a machine-readable JSON file (one per bench binary, named after
//! the binary) is written there so perf PRs can check in before/after
//! baselines (`--save-baseline`-style, driven by the environment instead of a
//! CLI flag because `cargo bench` owns the command line).
//!
//! Environment knobs:
//!
//! * `CRITERION_SAMPLES` — default sample count per benchmark (default 10);
//!   [`BenchmarkGroup::sample_size`] overrides it per group.
//! * `CRITERION_SAMPLE_MS` — wall-clock budget of one sample in milliseconds
//!   (default 30).
//! * `CRITERION_OUT` — directory to write `<bench-binary>.json` into.

use std::fmt::Display;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Upper bound on timed iterations per sample.
const MAX_ITERS_PER_SAMPLE: u64 = 10_000;
/// Default number of samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;
/// Default wall-clock budget of a single sample.
const DEFAULT_SAMPLE_MS: u64 = 30;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn default_sample_count() -> usize {
    env_usize("CRITERION_SAMPLES", DEFAULT_SAMPLES)
}

fn sample_budget() -> Duration {
    Duration::from_millis(env_usize("CRITERION_SAMPLE_MS", DEFAULT_SAMPLE_MS as usize) as u64)
}

/// One finished measurement, as recorded for JSON emission.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark name (`group/id` or a bare function name).
    pub name: String,
    /// Number of samples taken.
    pub samples: usize,
    /// Total timed iterations across all samples.
    pub total_iters: u64,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, in nanoseconds per iteration.
    pub median_ns: f64,
    /// Slowest sample, in nanoseconds per iteration.
    pub max_ns: f64,
    /// Mean across samples, in nanoseconds per iteration.
    pub mean_ns: f64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs closures and measures their per-iteration time over several samples.
#[derive(Debug)]
pub struct Bencher {
    sample_count: usize,
    samples_ns: Vec<f64>,
    total_iters: u64,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher::with_sample_count(default_sample_count())
    }
}

impl Bencher {
    fn with_sample_count(sample_count: usize) -> Self {
        Bencher {
            sample_count: sample_count.max(1),
            samples_ns: Vec::new(),
            total_iters: 0,
        }
    }

    /// Times `routine`: one warm-up call, then `sample_count` adaptive timed
    /// loops, keeping outputs alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up run (also primes caches and catches panics early).
        black_box(routine());
        let budget = sample_budget();
        self.samples_ns.clear();
        self.total_iters = 0;
        for _ in 0..self.sample_count {
            let mut iters = 0u64;
            let started = Instant::now();
            while started.elapsed() < budget && iters < MAX_ITERS_PER_SAMPLE {
                black_box(routine());
                iters += 1;
            }
            let elapsed = started.elapsed();
            let iters = iters.max(1);
            self.total_iters += iters;
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn record(&self, name: &str) -> BenchRecord {
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let (min_ns, max_ns, median_ns, mean_ns) = if sorted.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            let mid = sorted.len() / 2;
            let median = if sorted.len().is_multiple_of(2) {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            } else {
                sorted[mid]
            };
            let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
            (sorted[0], *sorted.last().unwrap(), median, mean)
        };
        BenchRecord {
            name: name.to_string(),
            samples: sorted.len(),
            total_iters: self.total_iters,
            min_ns,
            median_ns,
            max_ns,
            mean_ns,
        }
    }
}

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn scale(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

fn report(name: &str, bencher: &Bencher) {
    let record = bencher.record(name);
    let (median, unit) = scale(record.median_ns);
    let (min, min_unit) = scale(record.min_ns);
    let (max, max_unit) = scale(record.max_ns);
    println!(
        "bench: {name:<48} {median:>10.3} {unit}/iter \
         (min {min:.3} {min_unit} .. max {max:.3} {max_unit}, {} samples, {} iters)",
        record.samples, record.total_iters
    );
    RESULTS.lock().expect("results poisoned").push(record);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_count = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the per-sample budget comes from
    /// `CRITERION_SAMPLE_MS` instead.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`, handing it a reference to `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_sample_count(self.sample_count);
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::with_sample_count(self.sample_count);
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: default_sample_count(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        report(name, &bencher);
        self
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes every recorded benchmark of this process to JSON.
///
/// The format is intentionally flat so shell tooling (`python3 -m json.tool`,
/// `jq`) can validate and diff it:
///
/// ```json
/// {"available_parallelism": 8, "edvit_threads": "2",
///  "benchmarks": [{"name": "...", "samples": 10, "total_iters": 420,
///                  "min_ns": 1.0, "median_ns": 2.0, "max_ns": 3.0,
///                  "mean_ns": 2.0}]}
/// ```
pub fn results_json() -> String {
    let records = RESULTS.lock().expect("results poisoned");
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let threads_env = std::env::var("EDVIT_THREADS").unwrap_or_else(|_| "unset".to_string());
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"available_parallelism\": {parallelism},\n  \"edvit_threads\": \"{}\",\n  \"benchmarks\": [",
        json_escape(&threads_env)
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"samples\": {}, \"total_iters\": {}, \
             \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"max_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            json_escape(&r.name),
            r.samples,
            r.total_iters,
            r.min_ns,
            r.median_ns,
            r.max_ns,
            r.mean_ns
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes [`results_json`] to `$CRITERION_OUT/<bench-binary>.json` when the
/// `CRITERION_OUT` environment variable is set (creating the directory if
/// needed). Called by [`criterion_main!`] after all groups have run; a no-op
/// when the variable is unset.
pub fn write_results_if_requested() {
    let Ok(dir) = std::env::var("CRITERION_OUT") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let stem = std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    // `cargo bench` binaries carry a `-<hash>` suffix; strip it so the output
    // file name is stable across builds.
    let stem = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    };
    let path = std::path::Path::new(&dir).join(format!("{stem}.json"));
    let json = results_json();
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut file = std::fs::File::create(&path)?;
        file.write_all(json.as_bytes())
    };
    match write() {
        Ok(()) => println!("bench: wrote {}", path.display()),
        Err(e) => eprintln!("bench: failed to write {}: {e}", path.display()),
    }
}

/// Bundles benchmark functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main`, running each group and then emitting JSON results when
/// `CRITERION_OUT` is set (CLI flags from `cargo bench` are accepted and
/// ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
            $crate::write_results_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::with_sample_count(3);
        b.iter(|| (0..100u64).sum::<u64>());
        let r = b.record("sum");
        assert_eq!(r.samples, 3);
        assert!(r.total_iters >= 3);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.mean_ns > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
            b.iter(|| n * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(3)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
    }

    #[test]
    fn json_is_well_formed() {
        let mut c = Criterion::default();
        c.bench_function("json_probe \"quoted\"", |b| b.iter(|| 1 + 1));
        let json = results_json();
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("json_probe \\\"quoted\\\""));
        assert!(json.contains("\"available_parallelism\""));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
