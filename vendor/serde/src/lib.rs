//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the slice of `serde` it actually relies on: the
//! `Serialize`/`Deserialize` marker traits and their derive macros. The repo
//! only ever *derives* the traits (its wire format in `edvit-edge` is a
//! hand-rolled fixed layout), so the traits carry no methods and are
//! blanket-implemented for every type; the derives expand to nothing.
//!
//! Swapping in the real `serde` later is source-compatible for every use in
//! this repository: same import paths, same derive names, same trait bounds.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// Blanket-implemented for all types so that `#[derive(Serialize)]` (a no-op
/// here) and `T: Serialize` bounds both work without generated code.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
///
/// Blanket-implemented for all sized types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

/// Stand-in for the `serde::ser` module namespace.
pub mod ser {
    pub use crate::Serialize;
}

/// Stand-in for the `serde::de` module namespace.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
