//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the two pieces it uses, mapped onto `std`:
//!
//! * [`channel::unbounded`] — an unbounded MPSC channel (`std::sync::mpsc`).
//! * [`scope`] — scoped threads (`std::thread::scope`) with crossbeam's
//!   error-on-panic contract: a panicking child thread surfaces as `Err`
//!   instead of unwinding through the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Unbounded and bounded MPSC channels, backed by [`std::sync::mpsc`].
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, SyncSender, TrySendError};

    /// Creates an unbounded channel; senders are cloneable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a bounded channel of `capacity` slots; `send` blocks once the
    /// buffer is full, which is how the streaming scheduler makes pipeline
    /// backpressure explicit (a device cannot run ahead of the fusion worker
    /// by more than the channel capacity).
    pub fn bounded<T>(capacity: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity)
    }
}

/// Token passed to scoped-thread closures (the real crate passes `&Scope`;
/// callers here only ever bind it as `_`).
#[derive(Clone, Copy, Debug)]
pub struct SpawnToken;

/// A handle for spawning threads inside a [`scope`] invocation.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread running `f`; the thread is joined before
    /// [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(SpawnToken) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(SpawnToken))
    }
}

/// Runs `f` with a [`Scope`], joining every spawned thread before returning.
///
/// Returns `Err` (with the panic payload) if `f` or any spawned thread
/// panicked, mirroring `crossbeam::scope`'s signature.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_all_threads() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        let result = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
            42
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = channel::bounded::<usize>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // A full buffer rejects a non-blocking send instead of queuing it.
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = channel::unbounded::<usize>();
        let sum: usize = scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            rx.iter().sum()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
