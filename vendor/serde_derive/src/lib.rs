//! Vendored no-op stand-in for `serde_derive`.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the minimal dependency surface it uses. The real
//! `serde` derive macros generate `Serialize`/`Deserialize` impls; here the
//! sibling `serde` stub provides blanket impls for every type, so the derive
//! macros only need to exist and accept the `#[serde(...)]` helper attribute
//! — they expand to nothing.

use proc_macro::TokenStream;

/// No-op derive for `serde::Serialize` (satisfied by a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `serde::Deserialize` (satisfied by a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
