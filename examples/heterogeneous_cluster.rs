//! Deploying onto a heterogeneous cluster: half the devices are
//! "underclocked" Raspberry Pis with half the memory and compute. The greedy
//! assignment of Algorithm 3 places the heavier sub-models on the stronger
//! devices, and the distributed runtime executes the deployment across
//! threads with serialized feature messages.
//!
//! Run with: `cargo run -p edvit --example heterogeneous_cluster --release`

use edvit::distributed::run_distributed;
use edvit::edge::NetworkConfig;
use edvit::partition::DeviceSpec;
use edvit::pipeline::{EdVitConfig, EdVitPipeline};

fn main() -> Result<(), edvit::EdVitError> {
    let mut config = EdVitConfig::tiny_demo(4);
    config.devices = DeviceSpec::heterogeneous_cluster(4);

    let deployment = EdVitPipeline::new(config).run()?;
    println!("Heterogeneous 4-device deployment");
    for sub in &deployment.plan.sub_models {
        let device = deployment.plan.assignment.device_for(sub.index);
        println!(
            "  sub-model {} ({:.2} GFLOPs, {:.1} MB) -> device {:?}",
            sub.index,
            sub.cost.gflops(),
            sub.cost.memory_mb(),
            device
        );
    }

    // Run a handful of test samples through the threaded cluster runtime.
    let test = deployment.test_set.clone();
    let n = test.len().min(4);
    let samples: Vec<_> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
    let report = run_distributed(deployment, &samples, NetworkConfig::paper_default())?;
    println!("\nDistributed inference over the simulated switch (wire v2):");
    println!("  samples processed   : {}", report.outputs.len());
    println!("  batched frames      : {} (one per device)", report.frames);
    println!("  feature payload     : {} bytes", report.payload_bytes);
    println!("  bytes on wire       : {} bytes", report.bytes_on_wire);
    println!(
        "  simulated comm time : {:.2} ms (slowest device frame)",
        report.simulated_communication_seconds * 1e3
    );
    println!(
        "  measured throughput : {:.1} samples/s",
        report.samples_per_second
    );
    println!("  predictions         : {:?}", report.predictions()?);
    Ok(())
}
