//! Deploying onto a heterogeneous cluster: half the devices are
//! "underclocked" Raspberry Pis with half the memory and compute. The greedy
//! assignment of Algorithm 3 places the heavier sub-models on the stronger
//! devices; the streaming scheduler then runs pipelined rounds across the
//! cluster and — when one device is killed mid-stream — detects the death
//! from its missed heartbeat, re-plans onto the three survivors and replays
//! the in-flight rounds without losing or duplicating a single sample.
//!
//! Run with: `cargo run -p edvit --example heterogeneous_cluster --release`

use edvit::partition::DeviceSpec;
use edvit::pipeline::{EdVitConfig, EdVitPipeline};
use edvit::sched::StreamConfig;
use edvit::streaming::run_streaming;

fn main() -> Result<(), edvit::EdVitError> {
    let mut config = EdVitConfig::tiny_demo(4);
    config.devices = DeviceSpec::heterogeneous_cluster(4);
    let devices = config.devices.clone();

    let deployment = EdVitPipeline::new(config).run()?;
    println!("Heterogeneous 4-device deployment");
    for sub in &deployment.plan.sub_models {
        let device = deployment.plan.assignment.device_for(sub.index);
        println!(
            "  sub-model {} ({:.2} GFLOPs, {:.1} MB) -> device {:?}",
            sub.index,
            sub.cost.gflops(),
            sub.cost.memory_mb(),
            device
        );
    }

    // Stream the test samples through the scheduler, and kill the device
    // hosting sub-model 0 just after the pipeline warms up.
    let victim = deployment
        .plan
        .assignment
        .device_for(0)
        .expect("sub-model 0 is assigned");
    let test = deployment.test_set.clone();
    let n = test.len().min(8);
    let samples: Vec<_> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
    let stream_config = StreamConfig {
        round_size: 2,
        ..StreamConfig::default()
    }
    .with_failure(victim, 1);
    let report = run_streaming(deployment, &samples, devices, stream_config)?;

    println!("\nStreaming inference with a mid-stream device death (wire v2):");
    println!(
        "  samples fused        : {} (each exactly once)",
        report.outputs.len()
    );
    println!(
        "  rounds / epochs      : {} rounds across {} membership epochs",
        report.rounds, report.epochs
    );
    println!(
        "  frames               : {} data + {} control ({} heartbeats)",
        report.data_frames, report.control_frames, report.heartbeats_seen
    );
    println!("  bytes on wire        : {}", report.bytes_on_wire);
    println!(
        "  device lost          : {:?} (killed before round 1)",
        report.devices_lost
    );
    println!("  repartitions         : {}", report.repartitions);
    println!("  samples replayed     : {}", report.samples_replayed);
    println!(
        "  recovery             : {:.2} s on the simulated clock (detect + re-plan + replay)",
        report.recovery_seconds
    );
    println!(
        "  steady-state         : {:.2} samples/s on the surviving cluster",
        report.steady_state_samples_per_second
    );
    let survivors: Vec<usize> = report
        .final_plan
        .sub_models
        .iter()
        .filter_map(|s| report.final_plan.assignment.device_for(s.index))
        .collect();
    println!("  final hosts          : {survivors:?}");
    println!("  predictions          : {:?}", report.predictions()?);
    Ok(())
}
