//! Quickstart: split a Vision Transformer across two simulated edge devices,
//! prune each sub-model, fuse their features and report the key metrics.
//!
//! Run with: `cargo run -p edvit --example quickstart --release`

use edvit::edge::{LatencyModel, NetOptions, NetworkConfig, PayloadCodec};
use edvit::pipeline::{EdVitConfig, EdVitPipeline};
use edvit::sched::StreamConfig;
use edvit::streaming::run_streaming;

fn main() -> Result<(), edvit::EdVitError> {
    // A deliberately small configuration so the example finishes in seconds.
    let config = EdVitConfig::tiny_demo(2);
    let devices = config.devices.clone();
    println!(
        "Running ED-ViT pipeline on {} devices...",
        config.devices.len()
    );

    let deployment = EdVitPipeline::new(config).run()?;
    let m = &deployment.metrics;

    println!("\n== Split plan ==");
    for sub in &deployment.plan.sub_models {
        println!(
            "  sub-model {} -> device {:?}, classes {:?}, {:.2} GFLOPs, {:.1} MB",
            sub.index,
            deployment.plan.assignment.device_for(sub.index),
            sub.classes,
            sub.cost.gflops(),
            sub.cost.memory_mb()
        );
    }

    println!("\n== Metrics ==");
    println!(
        "  original (unsplit) accuracy : {:.1}%",
        m.original_accuracy * 100.0
    );
    println!(
        "  fused ED-ViT accuracy       : {:.1}%",
        m.fused_accuracy * 100.0
    );
    println!(
        "  softmax-averaging accuracy  : {:.1}%",
        m.averaged_accuracy * 100.0
    );
    println!(
        "  paper-scale latency         : {:.2} s (original {:.2} s)",
        m.latency_seconds, m.original_latency_seconds
    );
    println!(
        "  paper-scale total memory    : {:.1} MB",
        m.total_memory_mb
    );
    println!(
        "  worst-case communication    : {:.2} ms",
        m.communication_seconds * 1e3
    );
    println!(
        "  paper-scale throughput      : {:.2} samples/s",
        m.throughput_samples_per_second
    );

    let t = &deployment.timings;
    println!("\n== Measured wall time ({} threads) ==", t.threads);
    for (stage, seconds) in &t.stages {
        println!("  {stage:<14}: {:.1} ms", seconds * 1e3);
    }
    println!("  {:<14}: {:.1} ms", "total", t.total_seconds * 1e3);

    // Stream the test samples through the fault-tolerant scheduler: devices
    // compute round k+1 while the fusion worker drains round k, each round a
    // batched wire-v2 frame per sub-model plus a heartbeat control frame.
    // Stream twice — once per wire codec — to show the f16 payload shrink
    // with prediction-identical output.
    let plan = deployment.plan.clone();
    let test = deployment.test_set.clone();
    let n = test.len().min(8);
    let samples: Vec<_> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<Result<_, _>>()
        .map_err(edvit::EdVitError::from)?;
    let stream_config = StreamConfig {
        round_size: 2,
        ..StreamConfig::default()
    };
    let coded = run_streaming(
        deployment.clone(),
        &samples,
        devices.clone(),
        stream_config
            .clone()
            .with_options(&NetOptions::default().with_codec(PayloadCodec::F16)),
    )?;
    let report = run_streaming(deployment, &samples, devices.clone(), stream_config)?;
    assert_eq!(
        coded.predictions()?,
        report.predictions()?,
        "f16 quantization must not change top-1 predictions"
    );

    println!("\n== Streaming round report ({n} samples, wire v2 + control frames) ==");
    println!("  {:<8} {:>8} {:>12}", "device", "rounds", "wire bytes");
    for (device, rounds) in &report.per_device_rounds {
        println!(
            "  {device:<8} {rounds:>8} {:>12}",
            report
                .per_device_wire_bytes
                .get(device)
                .copied()
                .unwrap_or(0)
        );
    }
    println!(
        "  {} rounds, {} data frames + {} control frames ({} heartbeats), {} bytes on wire",
        report.rounds,
        report.data_frames,
        report.control_frames,
        report.heartbeats_seen,
        report.bytes_on_wire
    );
    println!(
        "  max rounds in flight    : {}",
        report.max_rounds_in_flight
    );
    println!(
        "  steady-state throughput : {:.2} samples/s (simulated clock)",
        report.steady_state_samples_per_second
    );
    println!(
        "  f16 wire codec          : {} bytes vs {} for f32 ({:.1}% saved; value \
         bytes exactly halved, predictions identical)",
        coded.bytes_on_wire,
        report.bytes_on_wire,
        100.0 * (1.0 - coded.bytes_on_wire as f64 / report.bytes_on_wire as f64)
    );

    // The barrier-vs-pipelined bound on the same plan, from the analytic
    // stream timing (fusion is tiny for ED-ViT, so the pipelined interval is
    // close to the device stage — the per-device bound).
    let model = LatencyModel::new(NetworkConfig::paper_default());
    let barrier = model.estimate_stream(&plan, &devices, 2, false)?;
    let pipelined = model.estimate_stream(&plan, &devices, 2, true)?;
    println!(
        "  analytic (paper scale)  : barrier {:.3} samples/s vs pipelined {:.3} samples/s",
        barrier.steady_state_samples_per_second(),
        pipelined.steady_state_samples_per_second()
    );
    Ok(())
}
