//! Quickstart: split a Vision Transformer across two simulated edge devices,
//! prune each sub-model, fuse their features and report the key metrics.
//!
//! Run with: `cargo run -p edvit --example quickstart --release`

use edvit::distributed::run_distributed;
use edvit::edge::NetworkConfig;
use edvit::pipeline::{EdVitConfig, EdVitPipeline};

fn main() -> Result<(), edvit::EdVitError> {
    // A deliberately small configuration so the example finishes in seconds.
    let config = EdVitConfig::tiny_demo(2);
    println!(
        "Running ED-ViT pipeline on {} devices...",
        config.devices.len()
    );

    let deployment = EdVitPipeline::new(config).run()?;
    let m = &deployment.metrics;

    println!("\n== Split plan ==");
    for sub in &deployment.plan.sub_models {
        println!(
            "  sub-model {} -> device {:?}, classes {:?}, {:.2} GFLOPs, {:.1} MB",
            sub.index,
            deployment.plan.assignment.device_for(sub.index),
            sub.classes,
            sub.cost.gflops(),
            sub.cost.memory_mb()
        );
    }

    println!("\n== Metrics ==");
    println!(
        "  original (unsplit) accuracy : {:.1}%",
        m.original_accuracy * 100.0
    );
    println!(
        "  fused ED-ViT accuracy       : {:.1}%",
        m.fused_accuracy * 100.0
    );
    println!(
        "  softmax-averaging accuracy  : {:.1}%",
        m.averaged_accuracy * 100.0
    );
    println!(
        "  paper-scale latency         : {:.2} s (original {:.2} s)",
        m.latency_seconds, m.original_latency_seconds
    );
    println!(
        "  paper-scale total memory    : {:.1} MB",
        m.total_memory_mb
    );
    println!(
        "  worst-case communication    : {:.2} ms",
        m.communication_seconds * 1e3
    );
    println!(
        "  paper-scale throughput      : {:.2} samples/s",
        m.throughput_samples_per_second
    );

    let t = &deployment.timings;
    println!("\n== Measured wall time ({} threads) ==", t.threads);
    for (stage, seconds) in &t.stages {
        println!("  {stage:<14}: {:.1} ms", seconds * 1e3);
    }
    println!("  {:<14}: {:.1} ms", "total", t.total_seconds * 1e3);

    // Run a round of test samples through the threaded cluster runtime: each
    // device packs all of its features into one batched wire-v2 frame.
    let test = deployment.test_set.clone();
    let n = test.len().min(8);
    let samples: Vec<_> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<Result<_, _>>()
        .map_err(edvit::EdVitError::from)?;
    let report = run_distributed(deployment, &samples, NetworkConfig::paper_default())?;

    println!("\n== Distributed round ({n} samples, wire v2) ==");
    println!(
        "  {:<8} {:>12} {:>12} {:>14}",
        "device", "compute ms", "wire bytes", "samples/s"
    );
    let throughputs = report.per_device_samples_per_second();
    for (device, (seconds, wire_bytes)) in report
        .per_device_compute_seconds
        .iter()
        .zip(&report.per_device_wire_bytes)
        .enumerate()
    {
        println!(
            "  {device:<8} {:>12.1} {:>12} {:>14.1}",
            seconds * 1e3,
            wire_bytes,
            throughputs[device]
        );
    }
    println!(
        "  total: {} frames, {} bytes on wire ({} payload), {:.1} samples/s end to end",
        report.frames, report.bytes_on_wire, report.payload_bytes, report.samples_per_second
    );
    Ok(())
}
