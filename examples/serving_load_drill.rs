//! Serving load drill: a seeded open-loop arrival process against the
//! multi-tenant continuous-batching front door, with hard assertions that
//! CI depends on — continuous batching beats the barrier-per-request
//! baseline on p99 at the same offered load, overload sheds
//! deterministically within every tenant's queue bound, the adaptive
//! pipeline depth actually moves, and a mid-drill device crash shows up as
//! recovery time in the tail latencies, never as a lost request.
//!
//! All timing is virtual (`SimClock` semantics): thousands of requests
//! drill in milliseconds of host time and the printed percentiles are
//! bit-reproducible from the seed (first CLI argument, or
//! `EDVIT_SERVE_SEED`, default 0).
//!
//! Run with: `cargo run -p edvit --example serving_load_drill --release -- 3`

use edvit::pipeline::{EdVitConfig, EdVitPipeline};
use edvit::serve::run_server;
use edvit::serving::{ArrivalSpec, DepthController, ServeConfig, ServeScheduler, TenantSpec};
use edvit::tensor::Tensor;

/// Fusion-MLP cost of roughly one sub-model's per-sample FLOPs, so the
/// fusion stage is comparable to the device stage: the pipelined round
/// interval is `max(device, fusion)` where the barrier baseline pays
/// `device + fusion` per request.
const FUSION_FLOPS: u64 = 1_250_000_000;

fn open_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("interactive", 100_000),
        TenantSpec::new("batch", 100_000),
    ]
}

fn drill_config(tenants: Vec<TenantSpec>, arrivals: ArrivalSpec) -> ServeConfig {
    let mut config = ServeConfig::new(tenants, arrivals);
    config.stream.fusion_flops = FUSION_FLOPS;
    config
}

fn main() -> Result<(), edvit::EdVitError> {
    let seed: u64 = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("EDVIT_SERVE_SEED").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let config = EdVitConfig::tiny_demo(4).with_seed(seed);
    let devices = config.devices.clone();
    let trained = EdVitPipeline::new(config).run()?;
    let test = trained.test_set.clone();
    let n = test.len().min(8);
    let samples: Vec<Tensor> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<Result<_, _>>()
        .map_err(edvit::EdVitError::from)?;

    // Calibrate offered load against the cluster's nominal continuous
    // service rate, so the drill stresses the same operating points at
    // every seed.
    let capacity = ServeScheduler::new(
        trained.plan.clone(),
        devices.clone(),
        drill_config(open_tenants(), ArrivalSpec::new(1.0, 1, 0)),
    )?
    .nominal_capacity_per_second()?;
    println!("nominal continuous capacity: {capacity:.4} requests/s (virtual)");

    // --- Leg 1: continuous batching vs barrier-per-request at 0.8x load. ----
    let arrivals = ArrivalSpec::new(0.8 * capacity, 48, seed.wrapping_add(11));
    let mut continuous_config = drill_config(open_tenants(), arrivals);
    continuous_config.depth = DepthController {
        min_depth: 2,
        max_depth: 2,
        backlog_rounds: usize::MAX,
    };
    let continuous = run_server(
        trained.clone(),
        &samples,
        devices.clone(),
        continuous_config,
    )?;
    let barrier = run_server(
        trained.clone(),
        &samples,
        devices.clone(),
        drill_config(open_tenants(), arrivals).barrier_per_request(),
    )?;
    assert!(continuous.no_lost_requests(), "continuous lost requests");
    assert!(barrier.no_lost_requests(), "barrier lost requests");
    assert_eq!(continuous.shed, 0, "sustainable load must not shed");
    assert_eq!(barrier.admitted, continuous.admitted);
    assert!(
        continuous.p99_latency_seconds < barrier.p99_latency_seconds,
        "continuous p99 {:.3}s must beat barrier p99 {:.3}s at the same load",
        continuous.p99_latency_seconds,
        barrier.p99_latency_seconds
    );
    assert!(
        continuous.partial_rounds > 0,
        "continuous batching should have dispatched at least one partial round"
    );
    println!(
        "ok: continuous p99 {:.3}s beats barrier p99 {:.3}s over {} requests \
         ({} rounds vs {})",
        continuous.p99_latency_seconds,
        barrier.p99_latency_seconds,
        continuous.completed,
        continuous.rounds_formed,
        barrier.rounds_formed
    );

    // --- Leg 2: overload against tight per-tenant bounds. -------------------
    let overload_arrivals = ArrivalSpec::new(5.0 * capacity, 80, seed.wrapping_add(23));
    let tight_tenants = || {
        vec![
            TenantSpec::new("interactive", 2),
            TenantSpec::new("batch", 5),
        ]
    };
    let overloaded = run_server(
        trained.clone(),
        &samples,
        devices.clone(),
        drill_config(tight_tenants(), overload_arrivals),
    )?;
    assert!(overloaded.no_lost_requests(), "overload lost requests");
    assert!(overloaded.shed > 0, "5x overload must shed");
    assert!(overloaded.tenants[0].max_queue_depth <= 2);
    assert!(overloaded.tenants[1].max_queue_depth <= 5);
    // Deterministic from the seed: the same drill sheds the same requests.
    let again = run_server(
        trained.clone(),
        &samples,
        devices.clone(),
        drill_config(tight_tenants(), overload_arrivals),
    )?;
    assert_eq!(overloaded.shed, again.shed, "shed counts must be seeded");
    assert_eq!(
        overloaded.p99_latency_seconds, again.p99_latency_seconds,
        "latency percentiles must be bit-reproducible"
    );
    println!(
        "ok: overload shed {} of {} deterministically; bounds held at {:?}",
        overloaded.shed,
        overloaded.admitted,
        overloaded
            .tenants
            .iter()
            .map(|t| t.max_queue_depth)
            .collect::<Vec<_>>()
    );

    // --- Leg 3: adaptive depth moves under a 3x burst. ----------------------
    let mut adaptive = drill_config(
        open_tenants(),
        ArrivalSpec::new(3.0 * capacity, 48, seed.wrapping_add(5)),
    );
    adaptive.depth = DepthController {
        min_depth: 1,
        max_depth: 4,
        backlog_rounds: 2,
    };
    let burst = run_server(trained.clone(), &samples, devices.clone(), adaptive)?;
    assert!(burst.no_lost_requests(), "burst lost requests");
    assert!(
        !burst.depth_changes.is_empty(),
        "the adaptive controller must change depth at least once"
    );
    println!(
        "ok: adaptive depth made {} transitions, ending at depth {}",
        burst.depth_changes.len(),
        burst.final_depth
    );

    // --- Leg 4: mid-drill device crash — recovery, not loss. ----------------
    let victim = trained
        .plan
        .assignment
        .device_for((seed as usize) % trained.plan.sub_models.len())
        .expect("every sub-model is assigned");
    let mut crash_config = drill_config(
        open_tenants(),
        ArrivalSpec::new(0.7 * capacity, 48, seed.wrapping_add(17)),
    );
    crash_config.stream = crash_config.stream.with_failure(victim, 2);
    let crashed = run_server(trained, &samples, devices, crash_config)?;
    assert!(
        crashed.no_lost_requests(),
        "the crash must cost latency, never requests: {} admitted, {} completed, {} shed",
        crashed.admitted,
        crashed.completed,
        crashed.shed
    );
    assert_eq!(crashed.devices_lost, vec![victim], "wrong device died");
    assert!(crashed.recovery_seconds > 0.0, "recovery must be recorded");
    assert!(
        crashed.p99_latency_seconds > continuous.p99_latency_seconds,
        "the crash must be visible in the tail"
    );
    println!(
        "ok: device {victim} died mid-drill; {} requests all served, recovery {:.2}s, \
         p99 {:.3}s vs healthy {:.3}s",
        crashed.completed,
        crashed.recovery_seconds,
        crashed.p99_latency_seconds,
        continuous.p99_latency_seconds
    );

    // Per-tenant SLO table, the report CI archives.
    println!("tenant                admitted completed shed  p50(s)   p99(s)  maxq");
    for t in &crashed.tenants {
        println!(
            "{:<22}{:>8}{:>10}{:>5}{:>8.3}{:>9.3}{:>6}",
            t.name,
            t.admitted,
            t.completed,
            t.shed_overflow + t.shed_deadline,
            t.p50_latency_seconds,
            t.p99_latency_seconds,
            t.max_queue_depth
        );
    }
    Ok(())
}
