//! Chaos drill for the streaming scheduler: deterministic, seeded device
//! death mid-stream, with hard assertions that every sample is classified
//! exactly once and that the failover produces the same predictions the
//! healthy cluster would have.
//!
//! CI runs this as the `chaos` job. The seed (first CLI argument, or
//! `EDVIT_CHAOS_SEED`, default 0) picks which device dies and when, so a
//! failure is reproducible from the printed seed alone.
//!
//! Run with: `cargo run -p edvit --example streaming_failover --release -- 3`

use edvit::edge::LatencyModel;
use edvit::pipeline::{EdVitConfig, EdVitPipeline};
use edvit::sched::{ScheduleMode, StreamConfig};
use edvit::streaming::run_streaming;
use edvit::tensor::Tensor;

fn main() -> Result<(), edvit::EdVitError> {
    let seed: u64 = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("EDVIT_CHAOS_SEED").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let config = EdVitConfig::tiny_demo(4).with_seed(seed);
    let devices = config.devices.clone();

    // Train once; the healthy reference run and the chaos run each stream
    // through a clone (a run moves the sub-models onto its device threads).
    let reference_deployment = EdVitPipeline::new(config).run()?;
    let chaos_deployment = reference_deployment.clone();
    let rejoin_deployment = reference_deployment.clone();

    let test = reference_deployment.test_set.clone();
    let n = test.len().min(12);
    let samples: Vec<Tensor> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<Result<_, _>>()
        .map_err(edvit::EdVitError::from)?;

    // The seed deterministically picks the victim (a device that actually
    // hosts a sub-model) and the round it dies before.
    let plan = &reference_deployment.plan;
    let victim_sub = (seed as usize) % plan.sub_models.len();
    let victim = plan
        .assignment
        .device_for(victim_sub)
        .expect("every sub-model is assigned");
    let round_size = 2usize;
    let rounds = n.div_ceil(round_size) as u64;
    let death_round = 1 + (seed % rounds.saturating_sub(1).max(1));
    println!(
        "chaos seed {seed}: killing device {victim} (host of sub-model {victim_sub}) \
         before round {death_round} of {rounds}"
    );

    let stream_config = StreamConfig {
        round_size,
        ..StreamConfig::default()
    };
    let healthy = run_streaming(
        reference_deployment,
        &samples,
        devices.clone(),
        stream_config.clone(),
    )?;
    let chaos = run_streaming(
        chaos_deployment,
        &samples,
        devices.clone(),
        stream_config.clone().with_failure(victim, death_round),
    )?;

    // --- The assertions CI depends on. --------------------------------------
    // Exactly once: one fused output per input sample. (The scheduler
    // already hard-errors on a duplicate fusion; this checks nothing was
    // dropped either.)
    assert_eq!(
        chaos.outputs.len(),
        samples.len(),
        "lost samples: {} outputs for {} inputs",
        chaos.outputs.len(),
        samples.len()
    );
    // The failover changed who computed, not what was computed: predictions
    // must match the healthy cluster sample for sample.
    let healthy_predictions = healthy.predictions()?;
    let chaos_predictions = chaos.predictions()?;
    assert_eq!(
        healthy_predictions, chaos_predictions,
        "failover changed predictions"
    );
    for (i, (a, b)) in healthy.outputs.iter().zip(&chaos.outputs).enumerate() {
        assert_eq!(a.data(), b.data(), "sample {i} fused to different logits");
    }
    // The death actually happened and was handled.
    assert_eq!(
        chaos.devices_lost,
        vec![victim],
        "wrong device declared dead"
    );
    assert_eq!(chaos.repartitions, 1, "expected exactly one repartition");
    assert!(
        chaos.recovery_seconds > 0.0,
        "recovery time must be recorded"
    );
    for sub in &chaos.final_plan.sub_models {
        let host = chaos.final_plan.assignment.device_for(sub.index);
        assert_ne!(
            host,
            Some(victim),
            "sub-model {} still assigned to the dead device",
            sub.index
        );
    }

    println!(
        "ok: {} samples fused exactly once across {} epochs; {} replayed; \
         recovery {:.2} s; predictions identical to the healthy cluster",
        chaos.outputs.len(),
        chaos.epochs,
        chaos.samples_replayed,
        chaos.recovery_seconds
    );

    // --- Leg 3: crash then elastic rejoin. ----------------------------------
    // The victim dies early, then comes back mid-stream as a new
    // identity-epoch offering its original capacity; the scheduler must
    // re-admit it, repartition, and end the stream with steady-state
    // throughput matching the analytic model for the rejoined plan.
    let rejoin_death = 1u64;
    let rejoin_at = 2 + seed % rounds.saturating_sub(2).max(1);
    let victim_spec = devices
        .iter()
        .find(|d| d.id == victim)
        .expect("victim comes from the device list")
        .clone();
    println!(
        "chaos seed {seed}: killing device {victim} before round {rejoin_death}, \
         rejoining it at round {rejoin_at} of {rounds}"
    );
    let rejoined = run_streaming(
        rejoin_deployment,
        &samples,
        devices.clone(),
        stream_config
            .clone()
            .with_failure(victim, rejoin_death)
            .with_join(victim_spec, rejoin_at),
    )?;
    assert_eq!(
        rejoined.outputs.len(),
        samples.len(),
        "rejoin leg lost samples"
    );
    assert_eq!(
        healthy_predictions,
        rejoined.predictions()?,
        "crash-then-rejoin changed predictions"
    );
    assert_eq!(rejoined.devices_lost, vec![victim]);
    assert_eq!(rejoined.devices_joined, vec![victim]);
    assert_eq!(
        rejoined.rejoins, 1,
        "the comeback must be a new identity-epoch"
    );
    assert_eq!(
        rejoined.repartitions, 2,
        "one repartition for the death, one for the rejoin"
    );
    // Throughput restored: the reported steady state must match the analytic
    // StreamTiming bound of the rejoined plan on the full membership.
    let timing = LatencyModel::new(stream_config.network)
        .with_options(&stream_config.net_options())
        .estimate_stream(
            &rejoined.final_plan,
            &devices,
            stream_config.round_size,
            stream_config.mode == ScheduleMode::Pipelined,
        )?;
    let analytic = timing.steady_state_samples_per_second();
    let reported = rejoined.steady_state_samples_per_second;
    assert!(
        (reported - analytic).abs() <= analytic * 1e-9,
        "steady state {reported} not restored to the analytic bound {analytic}"
    );

    println!(
        "ok: device {victim} rejoined at round {rejoin_at}; {} samples fused exactly \
         once across {} epochs; steady state restored to {:.2} samples/s (analytic {:.2})",
        rejoined.outputs.len(),
        rejoined.epochs,
        reported,
        analytic
    );
    Ok(())
}
