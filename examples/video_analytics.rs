//! Low-power video analytics: the paper's motivating scenario. A ViT-Base
//! classifier for a 10-class video-frame task (CIFAR-10-like) is split over a
//! rack of Raspberry Pi 4B devices under a 180 MB total memory budget.
//!
//! Run with: `cargo run -p edvit --example video_analytics --release`

use edvit::datasets::DatasetKind;
use edvit::experiments::{split_curve, ExperimentOptions};
use edvit::vit::ViTVariant;

fn main() -> Result<(), edvit::EdVitError> {
    let options = ExperimentOptions::fast();
    let device_counts = [1usize, 2, 5];
    println!("Video analytics with split ViT-Base on the CIFAR-10-like dataset");
    println!(
        "(fast mode: tiny models, single trial — use the fig4 bench binary for full sweeps)\n"
    );
    let points = split_curve(
        DatasetKind::Cifar10Like,
        ViTVariant::Base,
        &device_counts,
        &options,
    )?;
    println!(
        "{:<10} {:>12} {:>16} {:>18}",
        "Devices", "Accuracy", "Latency (s)", "Total memory (MB)"
    );
    for p in &points {
        println!(
            "{:<10} {:>11.1}% {:>16.2} {:>18.1}",
            p.devices,
            p.accuracy_mean * 100.0,
            p.latency_seconds,
            p.total_memory_mb
        );
    }
    let first = points.first().expect("at least one point");
    let last = points.last().expect("at least one point");
    println!(
        "\nSplitting across {} devices cuts per-frame latency {:.1}x (from {:.1} s on one device; the unsplit model needs {:.1} s).",
        last.devices,
        first.latency_seconds / last.latency_seconds,
        first.latency_seconds,
        last.original_latency_seconds
    );
    Ok(())
}
