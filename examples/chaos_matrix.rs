//! The chaos matrix: every fault kind the `edvit-chaos` crate can declare,
//! run against the streaming scheduler across several seeds, with hard
//! assertions on exactly-once fusion and prediction identity (or, for the
//! degraded leg, explicitly bounded drift limited to the zero-filled slots of
//! the dropped sub-model).
//!
//! Everything runs on the scheduler's virtual `SimClock` and a seeded
//! ChaCha8 fault plan, so a cell of the matrix replays bit-identically on
//! any machine: a failure here is reproducible from the printed seed alone.
//!
//! CI runs this as part of the `chaos` job. Seeds come from the CLI
//! (`cargo run -p edvit --example chaos_matrix --release -- 0 1 2 5`),
//! defaulting to {0, 1, 2, 5}.

use edvit::chaos::{CompiledChaos, FaultKind, FaultPlan};
use edvit::edge::{FusionFn, SubModelFn};
use edvit::partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit::sched::{StreamConfig, StreamReport, StreamScheduler};
use edvit::tensor::Tensor;
use edvit::vit::ViTConfig;

const SAMPLES: usize = 16;
const ROUND_SIZE: usize = 2;
const ROUNDS: u64 = (SAMPLES / ROUND_SIZE) as u64;

/// Deterministic executors: sub-model `i` maps a sample to
/// `[sum(sample) + i, i]`, so every fused output pins down both the sample
/// and the contributing sub-models — any divergence is visible in the data.
fn executors_for(plan: &SplitPlan) -> Vec<SubModelFn> {
    (0..plan.sub_models.len())
        .map(|i| -> SubModelFn {
            Box::new(move |sample: &Tensor| {
                Ok(Tensor::from_vec(vec![sample.sum() + i as f32, i as f32], &[2]).unwrap())
            })
        })
        .collect()
}

fn concat_fusion() -> FusionFn {
    Box::new(|concat: &Tensor| Ok(concat.clone()))
}

fn inputs() -> Vec<Tensor> {
    (0..SAMPLES).map(|i| Tensor::full(&[3], i as f32)).collect()
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        round_size: ROUND_SIZE,
        ..StreamConfig::default()
    }
}

fn run(
    plan: &SplitPlan,
    devices: &[DeviceSpec],
    samples: &[Tensor],
    config: StreamConfig,
) -> Result<StreamReport, Box<dyn std::error::Error>> {
    let scheduler = StreamScheduler::new(plan.clone(), devices.to_vec(), config)?;
    Ok(scheduler.run(samples, executors_for(plan), concat_fusion())?)
}

/// Exactly-once plus prediction identity: the two invariants every
/// non-degraded cell of the matrix must preserve, whatever went wrong on the
/// wire.
fn assert_identical(name: &str, seed: u64, healthy: &StreamReport, chaos: &StreamReport) {
    assert_eq!(
        chaos.outputs.len(),
        healthy.outputs.len(),
        "[seed {seed}] {name}: lost or duplicated samples"
    );
    for (i, (a, b)) in healthy.outputs.iter().zip(&chaos.outputs).enumerate() {
        assert_eq!(
            a.data(),
            b.data(),
            "[seed {seed}] {name}: sample {i} fused to different logits"
        );
    }
}

fn summarize(name: &str, seed: u64, report: &StreamReport) {
    println!(
        "  seed {seed} {name:<22} retries={} corrupt={} dup={} hb-dropped={} stale={} \
         lost={:?} rejoins={} repartitions={} recovery={:.3}s degraded-rounds={}",
        report.retries,
        report.corrupt_frames,
        report.duplicate_frames,
        report.dropped_heartbeats,
        report.stale_control_frames,
        report.devices_lost,
        report.rejoins,
        report.repartitions,
        report.recovery_seconds,
        report.degraded_rounds.len(),
    );
}

fn compile(
    plan: &SplitPlan,
    devices: &[DeviceSpec],
    seed: u64,
    fault: FaultKind,
) -> Result<CompiledChaos, Box<dyn std::error::Error>> {
    Ok(FaultPlan::new(seed)
        .with(fault)
        .compile(plan, devices, ROUNDS)?)
}

/// One seed's worth of matrix: a healthy baseline, then every fault kind
/// against it.
fn run_matrix_for_seed(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = SplitPlanner::new(PlannerConfig::default()).plan(
        &ViTConfig::vit_base(10),
        &devices,
        seed,
    )?;
    let samples = inputs();
    let healthy = run(&plan, &devices, &samples, stream_config())?;
    assert_eq!(healthy.outputs.len(), SAMPLES);
    assert!(healthy.devices_lost.is_empty());
    assert_eq!(healthy.retries, 0);

    // Victims rotate with the seed but always host at least one sub-model,
    // so every fault has a frame to land on.
    let hosting: Vec<usize> = devices
        .iter()
        .map(|d| d.id)
        .filter(|&id| !plan.assignment.sub_models_on(id).is_empty())
        .collect();
    assert!(
        !hosting.is_empty(),
        "nobody hosts anything; matrix is vacuous"
    );
    let victim = hosting[seed as usize % hosting.len()];
    let round = 1 + seed % (ROUNDS - 2); // 1..=5: mid-stream, never the tail

    // --- Recoverable wire faults: retried, invisible in the output. -------
    let corrupt = compile(
        &plan,
        &devices,
        seed,
        FaultKind::CorruptFrame {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, corrupt.apply(stream_config()))?;
    assert_identical("corrupt-frame", seed, &healthy, &report);
    assert_eq!(report.retries, 1, "one corrupt delivery, one re-request");
    assert_eq!(report.corrupt_frames, 1);
    assert!(report.retry_seconds > 0.0, "retries must cost virtual time");
    assert!(report.devices_lost.is_empty());
    summarize("corrupt-frame", seed, &report);

    let truncate = compile(
        &plan,
        &devices,
        seed,
        FaultKind::TruncateFrame {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, truncate.apply(stream_config()))?;
    assert_identical("truncate-frame", seed, &healthy, &report);
    assert_eq!(report.retries, 1);
    assert_eq!(report.corrupt_frames, 1);
    assert!(report.devices_lost.is_empty());
    summarize("truncate-frame", seed, &report);

    let drop_data = compile(
        &plan,
        &devices,
        seed,
        FaultKind::DropDataFrame {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, drop_data.apply(stream_config()))?;
    assert_identical("drop-data-frame", seed, &healthy, &report);
    assert_eq!(report.retries, 1, "a dropped data frame is re-requested");
    assert!(report.devices_lost.is_empty());
    summarize("drop-data-frame", seed, &report);

    // --- Duplicate / replay: absorbed by dedupe, never retried. -----------
    let duplicate = compile(
        &plan,
        &devices,
        seed,
        FaultKind::DuplicateFrame {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, duplicate.apply(stream_config()))?;
    assert_identical("duplicate-frame", seed, &healthy, &report);
    assert_eq!(
        report.duplicate_frames, 1,
        "the copy must be absorbed, not fused"
    );
    assert_eq!(report.retries, 0);
    summarize("duplicate-frame", seed, &report);

    let replay_hb = compile(
        &plan,
        &devices,
        seed,
        FaultKind::ReplayHeartbeat {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, replay_hb.apply(stream_config()))?;
    assert_identical("replay-heartbeat", seed, &healthy, &report);
    assert_eq!(
        report.stale_control_frames, 1,
        "the replayed beacon must read as stale"
    );
    assert_eq!(report.stale_heartbeats, 1);
    assert!(report.devices_lost.is_empty());
    summarize("replay-heartbeat", seed, &report);

    // --- Lost beacon: the next fresh beacon closes the round. -------------
    let drop_hb = compile(
        &plan,
        &devices,
        seed,
        FaultKind::DropHeartbeat {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, drop_hb.apply(stream_config()))?;
    assert_identical("drop-heartbeat", seed, &healthy, &report);
    assert_eq!(report.dropped_heartbeats, 1);
    assert_eq!(report.retries, 0, "beacons are not re-requested");
    assert!(
        report.devices_lost.is_empty(),
        "one lost beacon is within grace"
    );
    summarize("drop-heartbeat", seed, &report);

    // --- Retry budget exhausted: escalation to device death. --------------
    let persistent = compile(
        &plan,
        &devices,
        seed,
        FaultKind::PersistentCorruption {
            device: victim,
            round,
        },
    )?;
    let report = run(&plan, &devices, &samples, persistent.apply(stream_config()))?;
    assert_identical("persistent-corruption", seed, &healthy, &report);
    assert_eq!(
        report.devices_lost,
        vec![victim],
        "the link must escalate to death"
    );
    assert_eq!(report.repartitions, 1);
    assert_eq!(report.retries, u64::from(stream_config().max_retries));
    assert!(
        report.samples_replayed >= 1,
        "the poisoned round is replayed"
    );
    assert!(report.recovery_seconds > 0.0);
    summarize("persistent-corruption", seed, &report);

    // --- Crash and crash-then-rejoin. --------------------------------------
    let crash_round = 1 + seed % 2;
    let crash = compile(
        &plan,
        &devices,
        seed,
        FaultKind::Crash {
            device: victim,
            at_round: crash_round,
        },
    )?;
    let report = run(&plan, &devices, &samples, crash.apply(stream_config()))?;
    assert_identical("crash", seed, &healthy, &report);
    assert_eq!(report.devices_lost, vec![victim]);
    assert_eq!(report.repartitions, 1);
    assert!(report.recovery_seconds > 0.0);
    summarize("crash", seed, &report);

    let rejoin = compile(
        &plan,
        &devices,
        seed,
        FaultKind::CrashThenRejoin {
            device: victim,
            at_round: crash_round,
            rejoin_after: 1 + seed % 2,
        },
    )?;
    let report = run(&plan, &devices, &samples, rejoin.apply(stream_config()))?;
    assert_identical("crash-then-rejoin", seed, &healthy, &report);
    assert_eq!(report.devices_lost, vec![victim]);
    assert_eq!(
        report.devices_joined,
        vec![victim],
        "the victim must come back"
    );
    assert_eq!(report.rejoins, 1, "the comeback is a new identity-epoch");
    assert_eq!(
        report.repartitions, 2,
        "one for the death, one for the rejoin"
    );
    summarize("crash-then-rejoin", seed, &report);

    // --- Flaky link: seeded per-round corruption, all recovered. -----------
    let flaky = compile(
        &plan,
        &devices,
        seed,
        FaultKind::FlakyLink {
            device: victim,
            corrupt_per_mille: 400,
        },
    )?;
    let flaky_hits = flaky.script.len() as u64;
    let report = run(&plan, &devices, &samples, flaky.apply(stream_config()))?;
    assert_identical("flaky-link", seed, &healthy, &report);
    assert_eq!(
        report.retries, flaky_hits,
        "every flaky round costs exactly one retry"
    );
    assert_eq!(report.corrupt_frames, flaky_hits);
    assert!(report.devices_lost.is_empty());
    summarize("flaky-link", seed, &report);

    Ok(())
}

/// The degraded leg: a cluster engineered so tight that losing one device
/// makes full coverage infeasible, forcing the scheduler to fuse from
/// partial scores. Drift must be *bounded*: confined to degraded rounds, and
/// within those, exactly the zero-filled slots of the dropped sub-model.
fn run_degraded_leg(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    // First plan on a comfortable two-Pi cluster to learn the sub-model
    // costs, then shrink device 1 until it can host either sub-model alone
    // but never both.
    let roomy = DeviceSpec::raspberry_pi_cluster(2);
    let sizing =
        SplitPlanner::new(PlannerConfig::default()).plan(&ViTConfig::vit_base(10), &roomy, seed)?;
    let max_cost = sizing
        .sub_models
        .iter()
        .map(|s| s.cost.memory_bytes)
        .max()
        .unwrap_or(0);
    let mut devices = roomy;
    devices[1].memory_bytes = max_cost + max_cost / 2;
    let plan = SplitPlanner::new(PlannerConfig::default()).plan(
        &ViTConfig::vit_base(10),
        &devices,
        seed,
    )?;
    assert!(
        !plan.assignment.sub_models_on(0).is_empty(),
        "device 0 hosts nothing; killing it would degrade nothing"
    );

    let samples = inputs();
    let healthy = run(&plan, &devices, &samples, stream_config())?;

    let death_round = 2u64;
    let chaos = FaultPlan::new(seed)
        .with(FaultKind::Crash {
            device: 0,
            at_round: death_round,
        })
        .compile(&plan, &devices, ROUNDS)?;
    let report = run(
        &plan,
        &devices,
        &samples,
        chaos.apply(stream_config()).with_max_missing_sub_models(1),
    )?;

    assert_eq!(report.devices_lost, vec![0]);
    assert_eq!(
        report.missing_sub_models.len(),
        1,
        "exactly one sub-model dropped"
    );
    let expected_degraded: Vec<u64> = (death_round..ROUNDS).collect();
    assert_eq!(
        report.degraded_rounds, expected_degraded,
        "every round after the death fuses degraded"
    );
    assert_eq!(
        report.outputs.len(),
        SAMPLES,
        "degradation must not drop samples"
    );

    // The drift bound: healthy rounds are bit-identical, degraded rounds
    // differ only in the dropped sub-model's zero-filled slots.
    let missing = report.missing_sub_models[0];
    let width = 2usize; // every synthetic executor emits two features
    let zeroed = missing * width..(missing + 1) * width;
    for (i, (a, b)) in healthy.outputs.iter().zip(&report.outputs).enumerate() {
        let round = (i / ROUND_SIZE) as u64;
        if round < death_round {
            assert_eq!(a.data(), b.data(), "sample {i} drifted in a healthy round");
            continue;
        }
        for (k, (&ha, &ca)) in a.data().iter().zip(b.data()).enumerate() {
            if zeroed.contains(&k) {
                assert_eq!(ca, 0.0, "sample {i} slot {k} must be zero-filled");
            } else {
                assert_eq!(
                    ha, ca,
                    "sample {i} slot {k} drifted outside the dropped sub-model"
                );
            }
        }
    }
    summarize("degraded-fusion", seed, &report);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds: Vec<u64> = {
        let cli: Vec<u64> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if cli.is_empty() {
            vec![0, 1, 2, 5]
        } else {
            cli
        }
    };
    println!("chaos matrix: {SAMPLES} samples, {ROUNDS} rounds, seeds {seeds:?}");
    for &seed in &seeds {
        run_matrix_for_seed(seed)?;
        run_degraded_leg(seed)?;
    }
    println!(
        "ok: {} fault kinds x {} seeds, exactly-once fusion and bounded drift throughout",
        10,
        seeds.len()
    );
    Ok(())
}
