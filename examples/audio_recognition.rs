//! Audio recognition at the edge: GTZAN-like music-genre spectrograms
//! (224×224×1 in the paper) classified by a split ViT-Base.
//!
//! Run with: `cargo run -p edvit --example audio_recognition --release`

use edvit::datasets::DatasetKind;
use edvit::pipeline::{EdVitConfig, EdVitPipeline};
use edvit::vit::ViTVariant;

fn main() -> Result<(), edvit::EdVitError> {
    // Three edge devices, GTZAN-like single-channel inputs.
    let mut config = EdVitConfig::tiny_demo(3);
    config.dataset_kind = DatasetKind::GtzanLike;
    config.synthetic = edvit::datasets::SyntheticConfig {
        class_limit: Some(6),
        samples_per_class: 8,
        ..edvit::datasets::SyntheticConfig::tiny(DatasetKind::GtzanLike)
    };
    config.paper_model = edvit::vit::ViTConfig::from_variant(ViTVariant::Base, 6).with_channels(1);

    let deployment = EdVitPipeline::new(config).run()?;
    let m = &deployment.metrics;
    println!("GTZAN-like audio recognition with a split ViT-Base (3 devices)");
    println!(
        "  fused accuracy            : {:.1}%",
        m.fused_accuracy * 100.0
    );
    println!(
        "  per-sub-model FLOPs (G)   : {:?}",
        m.per_submodel_flops
            .iter()
            .map(|f| *f as f64 / 1e9)
            .collect::<Vec<_>>()
    );
    println!(
        "  feature payloads (bytes)  : {:?}",
        m.feature_payload_bytes
    );
    println!(
        "  paper-scale latency       : {:.2} s (original {:.2} s)",
        m.latency_seconds, m.original_latency_seconds
    );
    println!("  total sub-model memory    : {:.1} MB", m.total_memory_mb);
    Ok(())
}
