//! Post-mortem replay: the acceptance drill for the event-sourced run
//! journal. For each seed, a chaos failover stream drill and an overloaded
//! serving crash drill run with a recording `MetricsSink`; the journal is
//! serialized to its line-oriented text form, parsed back, and replayed
//! *offline* — and the reconstructed counters must equal the live reports
//! **bitwise**, field by field. Any divergence prints the differing fields
//! and fails the run.
//!
//! Everything runs on virtual clocks and seeded fault plans, so a failure
//! here is reproducible from the printed seed alone. CI runs this as the
//! `observability` job's post-mortem leg:
//! `cargo run -p edvit --example postmortem_replay --release -- 0 1 2 3`
//! (seeds default to {0, 1, 2, 3}).

use edvit::chaos::{FaultKind, FaultPlan};
use edvit::edge::{FusionFn, SubModelFn};
use edvit::metrics::{MetricsSink, RunJournal};
use edvit::partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit::sched::{StreamConfig, StreamScheduler};
use edvit::serving::{ArrivalSpec, DepthController, ServeConfig, ServeScheduler, TenantSpec};
use edvit::tensor::Tensor;
use edvit::vit::ViTConfig;

const SAMPLES: usize = 16;
const ROUND_SIZE: usize = 2;
const ROUNDS: u64 = (SAMPLES / ROUND_SIZE) as u64;

/// Fusion cost comparable to one sub-model's per-sample FLOPs, the same
/// operating point the serving drill example stresses.
const FUSION_FLOPS: u64 = 1_250_000_000;

type DynResult<T> = Result<T, Box<dyn std::error::Error>>;

/// Deterministic executors: sub-model `i` maps a sample to
/// `[sum(sample) + i, i]`, so replay divergence can never hide behind
/// model noise.
fn executors_for(plan: &SplitPlan) -> Vec<SubModelFn> {
    (0..plan.sub_models.len())
        .map(|i| -> SubModelFn {
            Box::new(move |sample: &Tensor| {
                Ok(Tensor::from_vec(vec![sample.sum() + i as f32, i as f32], &[2]).unwrap())
            })
        })
        .collect()
}

fn concat_fusion() -> FusionFn {
    Box::new(|concat: &Tensor| Ok(concat.clone()))
}

fn inputs() -> Vec<Tensor> {
    (0..SAMPLES).map(|i| Tensor::full(&[3], i as f32)).collect()
}

fn plan_for(devices: &[DeviceSpec], seed: u64) -> DynResult<SplitPlan> {
    Ok(
        SplitPlanner::new(PlannerConfig::default()).plan(
            &ViTConfig::vit_base(10),
            devices,
            seed,
        )?,
    )
}

/// A device that actually hosts a sub-model, rotating with the seed, so the
/// injected faults always have a frame to land on.
fn victim_for(plan: &SplitPlan, devices: &[DeviceSpec], seed: u64) -> usize {
    let hosting: Vec<usize> = devices
        .iter()
        .map(|d| d.id)
        .filter(|&id| !plan.assignment.sub_models_on(id).is_empty())
        .collect();
    hosting[seed as usize % hosting.len()]
}

/// Round-trips the sink's journal through its text codec and returns the
/// parsed copy, proving the on-disk form alone carries the full record.
fn round_trip(sink: &MetricsSink) -> DynResult<RunJournal> {
    let live = sink.journal();
    let text = live.to_text();
    let parsed = RunJournal::from_text(&text)?;
    if parsed.len() != live.len() {
        return Err(format!(
            "journal text round-trip lost events: {} live vs {} parsed",
            live.len(),
            parsed.len()
        )
        .into());
    }
    Ok(parsed)
}

/// Leg 1: a chaos failover drill on the streaming scheduler — a corrupted
/// frame early, then a crash-and-rejoin mid-stream — replayed from the
/// journal text alone.
fn stream_leg(seed: u64) -> DynResult<()> {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = plan_for(&devices, seed)?;
    let victim = victim_for(&plan, &devices, seed);
    let chaos = FaultPlan::new(seed)
        .with(FaultKind::CorruptFrame {
            device: victim,
            round: 1,
        })
        .with(FaultKind::CrashThenRejoin {
            device: victim,
            at_round: 3,
            rejoin_after: 1 + seed % 2,
        })
        .compile(&plan, &devices, ROUNDS)?;

    let sink = MetricsSink::recording();
    let config = chaos
        .apply(StreamConfig {
            round_size: ROUND_SIZE,
            ..StreamConfig::default()
        })
        .with_sink(sink.clone());
    let scheduler = StreamScheduler::new(plan.clone(), devices.clone(), config)?;
    let report = scheduler.run(&inputs(), executors_for(&plan), concat_fusion())?;

    // The wire books must balance before replay even enters the picture.
    let per_device: u64 = report.per_device_wire_bytes.values().sum();
    if report.bytes_on_wire != per_device {
        return Err(format!(
            "seed {seed}: wire accounting drifted: bytes_on_wire {} != per-device sum {per_device}",
            report.bytes_on_wire
        )
        .into());
    }

    let journal = round_trip(&sink)?;
    let live = report.counters();
    let replayed = journal.replay_stream()?;
    if !replayed.bitwise_eq(&live) {
        return Err(format!(
            "seed {seed}: stream replay diverged from the live report on {:?}",
            replayed.diff(&live)
        )
        .into());
    }
    println!(
        "  seed {seed} stream  ok: {} events replay {} rounds, {} retries, lost {:?}, \
         rejoins {}, {} bytes on wire — bitwise",
        journal.len(),
        report.rounds,
        report.retries,
        report.devices_lost,
        report.rejoins,
        report.bytes_on_wire
    );
    Ok(())
}

/// Leg 2: an overloaded serving drill with adaptive depth and a mid-drill
/// device crash. The one journal carries both the drill's own events and the
/// embedded streaming scheduler's, and each replays bitwise against its
/// report.
fn serve_leg(seed: u64) -> DynResult<()> {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = plan_for(&devices, seed)?;
    let victim = victim_for(&plan, &devices, seed);
    let samples: Vec<Tensor> = (0..8).map(|i| Tensor::full(&[3], i as f32)).collect();

    let base_config = |arrivals: ArrivalSpec| {
        let tenants = vec![
            TenantSpec::new("interactive", 2).with_deadline(2.0),
            TenantSpec::new("batch", 100_000),
        ];
        let mut config = ServeConfig::new(tenants, arrivals);
        config.stream.fusion_flops = FUSION_FLOPS;
        config
    };

    // Calibrate offered load against the cluster's nominal service rate so
    // every seed stresses the same 3x-overload operating point.
    let capacity = ServeScheduler::new(
        plan.clone(),
        devices.clone(),
        base_config(ArrivalSpec::new(1.0, 1, 0)),
    )?
    .nominal_capacity_per_second()?;

    let sink = MetricsSink::recording();
    let mut config = base_config(ArrivalSpec::new(3.0 * capacity, 48, seed.wrapping_add(17)));
    config.depth = DepthController {
        min_depth: 1,
        max_depth: 4,
        backlog_rounds: 2,
    };
    config.stream = config.stream.with_failure(victim, 3);
    let config = config.with_sink(sink.clone());
    let scheduler = ServeScheduler::new(plan.clone(), devices.clone(), config)?;
    let report = scheduler.run(&samples, executors_for(&plan), concat_fusion())?;

    // Depth-transition consistency: the chain is anchored at the configured
    // (clamped) initial depth, contiguous, and ends at final_depth.
    if let Some(first) = report.depth_changes.first() {
        if first.from != report.initial_depth {
            return Err(format!(
                "seed {seed}: depth chain starts at {} but the drill began at {}",
                first.from, report.initial_depth
            )
            .into());
        }
    }
    let chain_end = report
        .depth_changes
        .last()
        .map_or(report.initial_depth, |step| step.to);
    if chain_end != report.final_depth {
        return Err(format!(
            "seed {seed}: depth chain ends at {chain_end} but final_depth is {}",
            report.final_depth
        )
        .into());
    }

    let journal = round_trip(&sink)?;
    let live = report.counters();
    let replayed = journal.replay_serve()?;
    if !replayed.bitwise_eq(&live) {
        return Err(format!(
            "seed {seed}: serve replay diverged from the live report on {:?}",
            replayed.diff(&live)
        )
        .into());
    }
    // The embedded stream run shares the journal; its counters replay too.
    if let Some(stream) = &report.stream {
        let stream_live = stream.counters();
        let stream_replayed = journal.replay_stream()?;
        if !stream_replayed.bitwise_eq(&stream_live) {
            return Err(format!(
                "seed {seed}: embedded stream replay diverged on {:?}",
                stream_replayed.diff(&stream_live)
            )
            .into());
        }
    }
    println!(
        "  seed {seed} serve   ok: {} events replay {} admitted / {} completed / {} shed, \
         depth {} -> {} over {} transitions, crash of device {victim} recovered in {:.3}s — bitwise",
        journal.len(),
        report.admitted,
        report.completed,
        report.shed,
        report.initial_depth,
        report.final_depth,
        report.depth_changes.len(),
        report.recovery_seconds
    );

    // One exposition sample, so the post-mortem artifact is visibly more
    // than a counter dump.
    if seed == 0 {
        let exposition = sink.expose();
        let families = exposition
            .lines()
            .filter(|line| line.starts_with("# TYPE"))
            .count();
        let requests: Vec<&str> = exposition
            .lines()
            .filter(|line| line.starts_with("edvit_requests_total"))
            .collect();
        println!("  seed 0 exposition: {families} metric families, e.g.:");
        for line in requests.iter().take(4) {
            println!("    {line}");
        }
    }
    Ok(())
}

fn main() -> DynResult<()> {
    let seeds: Vec<u64> = {
        let cli: Vec<u64> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if cli.is_empty() {
            vec![0, 1, 2, 3]
        } else {
            cli
        }
    };
    println!("post-mortem replay: {SAMPLES} samples, {ROUNDS} rounds, seeds {seeds:?}");
    for &seed in &seeds {
        stream_leg(seed)?;
        serve_leg(seed)?;
    }
    println!(
        "ok: {} seeds x 2 drills reconstructed every report counter bitwise from journal text",
        seeds.len()
    );
    Ok(())
}
