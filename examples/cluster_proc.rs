//! Multi-process loopback cluster: every device worker is a real OS process.
//!
//! The parent trains the seeded tiny demo deployment, runs it once through
//! the in-process sim runtime as the reference, then binds a loopback
//! [`Coordinator`] and re-execs itself once per device
//! (`EDVIT_CLUSTER_WORKER=<id>`). Each child retrains the *same* seeded
//! deployment — deterministic training means identical weights without any
//! weight shipping — keeps only its own sub-model, and streams feature-batch
//! rounds over TCP: join, then per round one wire-v2 batch frame plus a
//! heartbeat, then a graceful leave. The coordinator fuses every sample
//! exactly once and the fused logits must be **bitwise identical** to the
//! sim run — the transport moves bytes, it does not touch numerics.
//!
//! Run with: `cargo run -p edvit --example cluster_proc --release`

use std::net::SocketAddr;
use std::process::Command;

use edvit::distributed::{into_executors, run_distributed, RunOptions};
use edvit::edge::{FeatureBatchMessage, PayloadCodec};
use edvit::net::{Coordinator, RoundSpec, WorkerClient};
use edvit::pipeline::{EdVitConfig, EdVitDeployment, EdVitPipeline};
use edvit::tensor::Tensor;

/// Seed shared by the parent and every worker process: same seed, same
/// trained weights, no weight shipping.
const SEED: u64 = 7;
/// Devices in the cluster — one worker process each.
const NUM_DEVICES: usize = 3;
/// Samples per streamed round.
const ROUND_SIZE: usize = 2;
/// Capacity every worker offers in its join frame (FLOP/s).
const CAPACITY_FLOPS: f64 = 1.0e9;

const WORKER_ENV: &str = "EDVIT_CLUSTER_WORKER";
const ADDR_ENV: &str = "EDVIT_CLUSTER_ADDR";

type DynError = Box<dyn std::error::Error>;

/// Trains the seeded demo and slices off the shared test samples.
fn trained_demo() -> Result<(EdVitDeployment, Vec<Tensor>), DynError> {
    let config = EdVitConfig::tiny_demo(NUM_DEVICES).with_seed(SEED);
    let deployment = EdVitPipeline::new(config).run()?;
    let test = deployment.test_set.clone();
    let n = test.len().min(8);
    let samples = (0..n)
        .map(|i| test.images().row(i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((deployment, samples))
}

/// One worker process: compute this device's features round by round and
/// stream them to the coordinator.
fn worker(device_id: usize, addr: &SocketAddr) -> Result<(), DynError> {
    let (deployment, samples) = trained_demo()?;
    let feature_dim = deployment.sub_models[device_id].plan.feature_dim();
    let (mut executors, _fusion) = into_executors(deployment);
    if device_id >= executors.len() {
        return Err(format!("device {device_id} has no sub-model").into());
    }
    let mut executor = executors.remove(device_id);

    let mut client = WorkerClient::connect(addr, device_id, CAPACITY_FLOPS)?;
    for round in 0..samples.len().div_ceil(ROUND_SIZE) {
        let lo = round * ROUND_SIZE;
        let hi = (lo + ROUND_SIZE).min(samples.len());
        let mut batch = FeatureBatchMessage::new(device_id, feature_dim);
        for (sample, input) in samples.iter().enumerate().take(hi).skip(lo) {
            let feature = executor(input)?;
            batch.push_tensor(sample, &feature)?;
        }
        client.send_frame(&batch.encode_with(PayloadCodec::F32))?;
        client.heartbeat(CAPACITY_FLOPS)?;
    }
    client.leave()?;
    Ok(())
}

fn main() -> Result<(), DynError> {
    // Child branch: re-exec'd with the worker env vars set.
    if let Ok(device) = std::env::var(WORKER_ENV) {
        let device_id: usize = device.parse()?;
        let addr: SocketAddr = std::env::var(ADDR_ENV)?.parse()?;
        return worker(device_id, &addr);
    }

    println!("Training the seeded demo deployment ({NUM_DEVICES} devices)...");
    let (deployment, samples) = trained_demo()?;
    let sim = run_distributed(deployment.clone(), &samples, &RunOptions::default())?;

    let coordinator = Coordinator::bind()?;
    let addr = coordinator.local_addr();
    println!("Coordinator listening on {addr}; spawning {NUM_DEVICES} worker processes...");
    let exe = std::env::current_exe()?;
    let mut children = Vec::new();
    for device in 0..NUM_DEVICES {
        children.push(
            Command::new(&exe)
                .env(WORKER_ENV, device.to_string())
                .env(ADDR_ENV, addr.to_string())
                .spawn()?,
        );
    }

    let workers = coordinator.accept_workers(NUM_DEVICES)?;
    println!("\n== Admitted workers ==");
    for w in &workers {
        println!(
            "  device {} (pid {}): {:.1e} FLOP/s offered, {}-byte join frame",
            w.device_id,
            children[w.device_id].id(),
            w.capacity_flops,
            w.join_bytes
        );
    }

    let spec = RoundSpec {
        round_size: ROUND_SIZE,
        total_samples: samples.len(),
        num_sub_models: NUM_DEVICES,
    };
    let (_executors, mut fusion) = into_executors(deployment);
    let report =
        Coordinator::collect_rounds(workers, &spec, &mut |concat: &Tensor| fusion(concat))?;

    for (device, child) in children.iter_mut().enumerate() {
        let status = child.wait()?;
        if !status.success() {
            return Err(format!("worker process {device} exited with {status}").into());
        }
    }

    println!(
        "\n== Cluster report ({} samples over loopback TCP) ==",
        samples.len()
    );
    println!("  data frames     : {}", report.data_frames);
    println!(
        "  control frames  : {} ({} heartbeats)",
        report.control_frames, report.heartbeats_seen
    );
    println!("  bytes on wire   : {}", report.bytes_on_wire);
    for (device, rounds) in &report.per_device_rounds {
        println!("  device {device} closed {rounds} rounds");
    }

    // The acceptance check: multi-process fusion is bitwise the sim run.
    if report.outputs.len() != sim.outputs.len() {
        return Err("cluster fused a different number of samples than the sim run".into());
    }
    for (i, (tcp, reference)) in report.outputs.iter().zip(&sim.outputs).enumerate() {
        if tcp.data() != reference.data() {
            return Err(format!("sample {i}: cluster logits differ from the sim run").into());
        }
    }
    println!(
        "\nAll {} fused outputs are bitwise identical to the in-process sim run \
         (predictions: {:?}).",
        report.outputs.len(),
        report.predictions()?
    );
    Ok(())
}
