//! End-to-end serving drills on the virtual clock: continuous batching
//! beats the barrier-per-request baseline on p99 at the same offered load,
//! overload sheds deterministically within per-tenant bounds, the adaptive
//! pipeline depth reacts to backlog, and a mid-drill device crash shows up
//! in the tail latencies — never as a lost request.

use edvit_edge::{FusionFn, SubModelFn};
use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit_serve::{
    AdmissionMode, ArrivalSpec, DepthController, ServeConfig, ServeError, ServeReport,
    ServeScheduler, TenantSpec,
};
use edvit_tensor::Tensor;
use edvit_vit::ViTConfig;

fn cluster() -> (SplitPlan, Vec<DeviceSpec>) {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = SplitPlanner::new(PlannerConfig::default())
        .plan(&ViTConfig::vit_base(10), &devices, 7)
        .unwrap();
    (plan, devices)
}

/// Deterministic executors: sub-model `i` maps a sample to
/// `[sum(sample) + i, i]`, so a fused output identifies its sample.
fn executors_for(plan: &SplitPlan) -> Vec<SubModelFn> {
    (0..plan.sub_models.len())
        .map(|i| -> SubModelFn {
            Box::new(move |sample: &Tensor| {
                Ok(Tensor::from_vec(vec![sample.sum() + i as f32, i as f32], &[2]).unwrap())
            })
        })
        .collect()
}

fn concat_fusion() -> FusionFn {
    Box::new(|concat: &Tensor| Ok(concat.clone()))
}

fn sample_pool(n: usize) -> Vec<Tensor> {
    (0..n).map(|i| Tensor::full(&[3], i as f32)).collect()
}

/// Fusion-MLP cost used by every drill in this file: roughly one
/// sub-model's worth of MAC-FLOPs, so the fusion stage is comparable to the
/// device stage. That balance is what continuous batching exploits — the
/// pipelined round interval is `max(device, fusion)` where the barrier
/// baseline pays `device + fusion` per request.
const FUSION_FLOPS: u64 = 1_250_000_000;

fn drill_config(tenants: Vec<TenantSpec>, arrivals: ArrivalSpec) -> ServeConfig {
    let mut config = ServeConfig::new(tenants, arrivals);
    config.stream.fusion_flops = FUSION_FLOPS;
    config
}

/// Nominal continuous-batching service capacity of the test cluster, in
/// samples per virtual second.
fn capacity_per_second() -> f64 {
    let (plan, devices) = cluster();
    ServeScheduler::new(
        plan,
        devices,
        drill_config(open_tenants(), ArrivalSpec::new(1.0, 1, 0)),
    )
    .unwrap()
    .nominal_capacity_per_second()
    .unwrap()
}

fn run_with(config: ServeConfig) -> ServeReport {
    let (plan, devices) = cluster();
    let executors = executors_for(&plan);
    let scheduler = ServeScheduler::new(plan, devices, config).unwrap();
    scheduler
        .run(&sample_pool(8), executors, concat_fusion())
        .unwrap()
}

/// Roomy tenants so admission never sheds and both modes serve the
/// identical request set.
fn open_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("interactive", 100_000),
        TenantSpec::new("batch", 100_000),
    ]
}

#[test]
fn continuous_batching_beats_barrier_per_request_on_p99() {
    // Offered load: ~80% of the continuous pipeline's nominal capacity —
    // comfortably sustainable when rounds coalesce and the stages overlap,
    // hopeless for a one-request-per-round barrier admitting serially.
    let rate = 0.8 * capacity_per_second();
    let arrivals = ArrivalSpec::new(rate, 96, 11);

    // Pin the pipeline depth at 2 so this test isolates the batching
    // discipline; depth adaptation has its own test below.
    let mut continuous_config = drill_config(open_tenants(), arrivals);
    continuous_config.depth = DepthController {
        min_depth: 2,
        max_depth: 2,
        backlog_rounds: usize::MAX,
    };
    let continuous = run_with(continuous_config);
    let barrier = run_with(drill_config(open_tenants(), arrivals).barrier_per_request());

    // Same offered load, nothing shed on either side: both serve all 96.
    assert_eq!(continuous.admitted, 96);
    assert_eq!(barrier.admitted, 96);
    assert_eq!(continuous.completed, 96);
    assert_eq!(barrier.completed, 96);
    assert_eq!(continuous.shed, 0);
    assert_eq!(barrier.shed, 0);
    assert!(continuous.no_lost_requests());
    assert!(barrier.no_lost_requests());

    // Identical fused tensors per request id, whatever the batching.
    assert_eq!(continuous.outputs.len(), 96);
    for (id, tensor) in &continuous.outputs {
        assert_eq!(tensor.data(), barrier.outputs[id].data());
    }

    // The acceptance bar: continuous batching wins the tail at the same
    // offered load, on the simulated clock.
    assert!(
        continuous.p99_latency_seconds < barrier.p99_latency_seconds,
        "continuous p99 {} !< barrier p99 {}",
        continuous.p99_latency_seconds,
        barrier.p99_latency_seconds
    );
    assert!(continuous.p50_latency_seconds <= barrier.p50_latency_seconds);
    assert!(continuous.served_samples_per_second > barrier.served_samples_per_second);
    // The barrier baseline forms one round per request; continuous coalesces.
    assert_eq!(barrier.rounds_formed, 96);
    assert!(continuous.rounds_formed < barrier.rounds_formed);
    // Continuous batching dispatches under-filled rounds rather than wait.
    assert!(continuous.partial_rounds > 0);
}

#[test]
fn overload_sheds_within_bounds_and_deterministically() {
    // 4x the service capacity: the queues must back up and shed.
    let rate = 4.0 * capacity_per_second();
    let tenants = vec![
        TenantSpec::new("small", 3),
        TenantSpec::new("deadline", 40).with_deadline(30.0),
    ];
    let config = drill_config(tenants.clone(), ArrivalSpec::new(rate, 160, 23));

    let report = run_with(config.clone());
    assert_eq!(report.admitted, 160);
    assert!(report.shed > 0, "4x overload must shed");
    assert!(report.no_lost_requests());
    // Bounds are hard ceilings even at the high-water mark.
    assert!(report.tenants[0].max_queue_depth <= 3);
    assert!(report.tenants[1].max_queue_depth <= 40);
    // The bounded tenant sheds on overflow; the deadline tenant sheds
    // requests that aged past 30 virtual seconds in its deep queue.
    assert!(report.tenants[0].shed_overflow > 0);
    assert!(report.tenants[1].shed_deadline > 0);
    // Every completed request produced an output tensor.
    assert_eq!(report.outputs.len() as u64, report.completed);

    // Same seed, same drill: shed counts and percentiles are bit-identical.
    let again = run_with(config);
    assert_eq!(report.tenants, again.tenants);
    assert_eq!(report.shed, again.shed);
    assert_eq!(report.p99_latency_seconds, again.p99_latency_seconds);
    assert_eq!(report.rounds_formed, again.rounds_formed);
}

#[test]
fn adaptive_depth_deepens_on_fusion_then_shallows_under_backlog() {
    let rate = 3.0 * capacity_per_second();
    let mut config = drill_config(open_tenants(), ArrivalSpec::new(rate, 96, 5));
    config.depth = DepthController {
        min_depth: 1,
        max_depth: 4,
        backlog_rounds: 2,
    };
    // The stream default starts the pipeline at depth 2, leaving room to
    // move both ways.
    assert_eq!(config.stream.pipeline_depth, 2);

    let report = run_with(config);
    assert!(
        !report.depth_changes.is_empty(),
        "sustained 3x overload must trigger at least one depth change"
    );
    // Early, the queue is shallow and fusion is the wider stage: deepen.
    // Once the 3x backlog builds past 2 rounds, shallow back out. (As the
    // finite arrival stream drains at the end, the controller may deepen
    // again — the policy follows the load, it does not ratchet.)
    assert!(report.depth_changes.iter().any(|c| c.to > c.from));
    assert!(report.depth_changes.iter().any(|c| c.to < c.from));
    assert!((1..=4).contains(&report.final_depth));
    for change in &report.depth_changes {
        assert!((1..=4).contains(&change.to), "depth escaped its clamp");
        assert_eq!(change.to.abs_diff(change.from), 1, "one step per decision");
    }
    assert!(report.no_lost_requests());
}

#[test]
fn mid_drill_crash_recovers_in_tail_latency_not_lost_requests() {
    let rate = 0.7 * capacity_per_second();
    let arrivals = ArrivalSpec::new(rate, 64, 17);

    let clean = run_with(drill_config(open_tenants(), arrivals));
    let mut crashed_config = drill_config(open_tenants(), arrivals);
    crashed_config.stream = crashed_config.stream.with_failure(2, 3);
    let crashed = run_with(crashed_config);

    // Recovery accounting: the device is gone, the recovery window is
    // charged, and the run still completes everything it admitted.
    assert_eq!(crashed.devices_lost, vec![2]);
    assert!(crashed.recovery_seconds > 0.0);
    assert_eq!(clean.devices_lost, Vec::<usize>::new());
    assert!(clean.no_lost_requests());
    assert!(crashed.no_lost_requests());
    assert_eq!(crashed.completed, 64);
    assert_eq!(crashed.outputs.len(), 64);

    // The crash shows up where it should: in the tail latency...
    assert!(
        crashed.p99_latency_seconds > clean.p99_latency_seconds,
        "crash p99 {} !> clean p99 {}",
        crashed.p99_latency_seconds,
        clean.p99_latency_seconds
    );
    // ...and not in the results: survivors recompute the same tensors.
    for (id, tensor) in &clean.outputs {
        assert_eq!(tensor.data(), crashed.outputs[id].data());
    }
}

#[test]
fn degenerate_serving_configurations_are_typed_errors() {
    let (plan, devices) = cluster();
    // No tenants.
    let err = ServeScheduler::new(
        plan.clone(),
        devices.clone(),
        ServeConfig::new(Vec::new(), ArrivalSpec::new(1.0, 1, 0)),
    )
    .unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig { .. }));
    // No devices.
    let err = ServeScheduler::new(
        plan.clone(),
        Vec::new(),
        ServeConfig::new(open_tenants(), ArrivalSpec::new(1.0, 1, 0)),
    )
    .unwrap_err();
    assert!(matches!(err, ServeError::InvalidConfig { .. }));
    // Unsorted drill arrivals.
    let scheduler = ServeScheduler::new(
        plan,
        devices,
        ServeConfig::new(open_tenants(), ArrivalSpec::new(1.0, 4, 0)),
    )
    .unwrap();
    let mut requests = ArrivalSpec::new(5.0, 4, 9).generate(2, 4).unwrap();
    requests.swap(0, 3);
    assert!(matches!(
        scheduler.drill(&requests).unwrap_err(),
        ServeError::InvalidConfig { .. }
    ));
}

#[test]
fn all_shed_run_skips_execution_entirely() {
    let config = drill_config(
        vec![TenantSpec::new("blocked", 0)],
        ArrivalSpec::new(50.0, 32, 3),
    );
    let report = run_with(config);
    assert_eq!(report.admitted, 32);
    assert_eq!(report.shed, 32);
    assert_eq!(report.completed, 0);
    assert_eq!(report.rounds_formed, 0);
    assert!(report.outputs.is_empty());
    assert!(report.stream.is_none(), "nothing to execute, no stream run");
    assert!(report.no_lost_requests());
    assert_eq!(report.p99_latency_seconds, 0.0);
    assert_eq!(report.tenants[0].shed_overflow, 32);
}

#[test]
fn barrier_mode_reports_its_discipline() {
    let config = drill_config(open_tenants(), ArrivalSpec::new(2.0, 8, 1));
    assert_eq!(config.mode, AdmissionMode::Continuous);
    let barrier = config.clone().barrier_per_request();
    assert_eq!(barrier.mode, AdmissionMode::BarrierPerRequest);
    let report = run_with(barrier);
    // Depth is pinned at 1 and never adapts in the baseline.
    assert_eq!(report.final_depth, 1);
    assert!(report.depth_changes.is_empty());
    assert!(report.no_lost_requests());
}
