//! Property tests of the admission queue invariants, plus the degenerate
//! edge-case trio (zero tenants, burst arrivals, all-shed).
//!
//! The properties pinned here are the serving front-door's contract:
//! every offered request ends in exactly one disposition (dispatched,
//! shed on overflow, or shed on deadline), per-tenant FIFO order is
//! preserved, and queue bounds are never exceeded.

use std::collections::BTreeSet;

use edvit_serve::{
    AdmissionQueue, AdmissionVerdict, ArrivalSpec, Request, TenantCounters, TenantSpec,
};
use proptest::prelude::*;

fn tenant_specs(count: usize, bounds: &[usize], deadline: f64) -> Vec<TenantSpec> {
    (0..count)
        .map(|t| {
            let spec = TenantSpec::new(format!("tenant-{t}"), bounds[t % bounds.len()]);
            if t % 2 == 1 && deadline > 0.0 {
                spec.with_deadline(deadline)
            } else {
                spec
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drive a random arrival sequence through offer/drain cycles and check,
    /// at every step and at the end, that the books balance: admitted ==
    /// dispatched + shed + queued, no double disposition, FIFO per tenant,
    /// bounds respected.
    #[test]
    fn admission_books_always_balance(
        tenants in 1usize..4,
        bound_a in 0usize..6,
        bound_b in 1usize..8,
        deadline in 0.0f64..0.5,
        rate in 0.5f64..200.0,
        count in 1usize..96,
        drain_every in 1usize..6,
        capacity in 1usize..8,
        seed in 0u64..500,
    ) {
        let specs = tenant_specs(tenants, &[bound_a, bound_b], deadline);
        let requests = ArrivalSpec::new(rate, count, seed)
            .generate(tenants, 16)
            .unwrap();
        let mut queue = AdmissionQueue::new(specs.clone()).unwrap();
        let mut offered: BTreeSet<u64> = BTreeSet::new();
        let mut dispatched: Vec<Request> = Vec::new();
        let mut now = 0.0f64;

        let check = |queue: &AdmissionQueue| {
            for (t, c) in queue.counters().iter().enumerate() {
                // Exactly-one-disposition, counting the still-queued rump.
                prop_assert_eq!(
                    c.admitted,
                    c.dispatched + c.shed() + queue.queued_of(t) as u64,
                    "tenant {} books unbalanced", t
                );
                // The queue bound is a hard ceiling, even at the high-water mark.
                prop_assert!(c.max_queue_depth <= specs[t].max_queue);
            }
        };

        for (i, request) in requests.iter().enumerate() {
            now = request.arrival_seconds;
            offered.insert(request.id);
            let verdict = queue.offer(request.clone()).unwrap();
            if specs[request.tenant].max_queue == 0 {
                prop_assert_eq!(verdict, AdmissionVerdict::ShedOverflow);
            }
            if (i + 1) % drain_every == 0 {
                dispatched.extend(queue.drain_round(now, capacity));
                check(&queue);
            }
        }
        // Final drain: keep forming rounds until the queues are dry.
        while queue.queued() > 0 {
            dispatched.extend(queue.drain_round(now, capacity));
            check(&queue);
        }

        // No request is both shed and completed: every dispatched id is
        // unique and was actually offered.
        let ids: BTreeSet<u64> = dispatched.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), dispatched.len(), "a request was dispatched twice");
        prop_assert!(ids.is_subset(&offered));

        // Global accounting: offered == dispatched + shed.
        let total_dispatched: u64 = queue.counters().iter().map(|c| c.dispatched).sum();
        let total_shed: u64 = queue.counters().iter().map(TenantCounters::shed).sum();
        prop_assert_eq!(total_dispatched as usize, dispatched.len());
        prop_assert_eq!(total_dispatched + total_shed, offered.len() as u64);

        // Per-tenant FIFO: dispatch order preserves arrival (id) order.
        for t in 0..tenants {
            let order: Vec<u64> = dispatched
                .iter()
                .filter(|r| r.tenant == t)
                .map(|r| r.id)
                .collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "tenant {} dispatched out of arrival order: {:?}", t, order
            );
        }
    }

    /// The drain never over-fills a round and never invents requests.
    #[test]
    fn drained_rounds_respect_capacity(
        queued in 0usize..40,
        capacity in 1usize..10,
        seed in 0u64..100,
    ) {
        let mut queue = AdmissionQueue::new(vec![
            TenantSpec::new("a", usize::MAX),
            TenantSpec::new("b", usize::MAX),
        ])
        .unwrap();
        for r in ArrivalSpec::new(50.0, queued, seed).generate(2, 4).unwrap() {
            queue.offer(r).unwrap();
        }
        let round = queue.drain_round(1e9, capacity);
        prop_assert!(round.len() <= capacity);
        prop_assert_eq!(round.len(), queued.min(capacity));
        prop_assert_eq!(queue.queued(), queued.saturating_sub(capacity));
    }
}

// ---- the degenerate edge-case trio -------------------------------------

#[test]
fn zero_tenants_are_rejected_everywhere() {
    assert!(AdmissionQueue::new(Vec::new()).is_err());
    assert!(ArrivalSpec::new(10.0, 8, 1).generate(0, 4).is_err());
}

#[test]
fn burst_arrivals_respect_every_queue_bound() {
    // An extreme burst: 200 requests at ~the same virtual instant, against
    // two tenants bounded at 3 and 5. Everything past the bounds sheds; the
    // bounds are never pierced, and the outcome is seed-deterministic.
    let tenants = vec![TenantSpec::new("small", 3), TenantSpec::new("medium", 5)];
    let burst = ArrivalSpec::new(1e6, 200, 42);
    let run = || {
        let mut queue = AdmissionQueue::new(tenants.clone()).unwrap();
        for r in burst.generate(2, 8).unwrap() {
            queue.offer(r).unwrap();
        }
        queue
    };
    let queue = run();
    assert_eq!(queue.queued_of(0), 3);
    assert_eq!(queue.queued_of(1), 5);
    let c = queue.counters();
    assert_eq!(c[0].max_queue_depth, 3);
    assert_eq!(c[1].max_queue_depth, 5);
    assert_eq!(c[0].admitted + c[1].admitted, 200);
    assert_eq!(
        c[0].shed_overflow + c[1].shed_overflow,
        200 - 8,
        "everything past the two bounds sheds on arrival"
    );
    // Same seed, same burst, same shed counts — bit-for-bit.
    let again = run();
    assert_eq!(queue.counters(), again.counters());
}

#[test]
fn all_shed_tenant_never_dispatches() {
    let mut queue = AdmissionQueue::new(vec![TenantSpec::new("blocked", 0)]).unwrap();
    for r in ArrivalSpec::new(100.0, 64, 7).generate(1, 4).unwrap() {
        assert_eq!(queue.offer(r).unwrap(), AdmissionVerdict::ShedOverflow);
    }
    assert_eq!(queue.queued(), 0);
    assert!(queue.drain_round(1e9, 16).is_empty());
    let c = queue.counters()[0];
    assert_eq!(c.admitted, 64);
    assert_eq!(c.shed_overflow, 64);
    assert_eq!(c.dispatched, 0);
}
