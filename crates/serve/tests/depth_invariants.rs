//! Depth-transition consistency and serve-journal replay.
//!
//! The invariants this file pins (the satellite fixes of the observability
//! PR): the depth-transition chain is *anchored* — the first
//! `depth_changes` entry departs from the configured (post-clamp) initial
//! depth, consecutive entries are contiguous (`from[i+1] == to[i]`), and
//! `final_depth` equals the last entry's `to` (or the initial depth when
//! the controller never moved) — and a recorded drill's journal replays
//! offline to counters bitwise equal to the live [`ServeReport`].

use edvit_edge::{FusionFn, SubModelFn};
use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit_serve::{
    ArrivalSpec, DepthController, MetricsSink, RunJournal, ServeConfig, ServeReport,
    ServeScheduler, TenantSpec,
};
use edvit_tensor::Tensor;
use edvit_vit::ViTConfig;

fn cluster() -> (SplitPlan, Vec<DeviceSpec>) {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = SplitPlanner::new(PlannerConfig::default())
        .plan(&ViTConfig::vit_base(10), &devices, 7)
        .unwrap();
    (plan, devices)
}

fn executors_for(plan: &SplitPlan) -> Vec<SubModelFn> {
    (0..plan.sub_models.len())
        .map(|i| -> SubModelFn {
            Box::new(move |sample: &Tensor| {
                Ok(Tensor::from_vec(vec![sample.sum() + i as f32, i as f32], &[2]).unwrap())
            })
        })
        .collect()
}

fn concat_fusion() -> FusionFn {
    Box::new(|concat: &Tensor| Ok(concat.clone()))
}

fn sample_pool(n: usize) -> Vec<Tensor> {
    (0..n).map(|i| Tensor::full(&[3], i as f32)).collect()
}

/// Fusion cost comparable to the device stage, as in the drill tests.
const FUSION_FLOPS: u64 = 1_250_000_000;

fn drill_config(tenants: Vec<TenantSpec>, arrivals: ArrivalSpec) -> ServeConfig {
    let mut config = ServeConfig::new(tenants, arrivals);
    config.stream.fusion_flops = FUSION_FLOPS;
    config
}

fn open_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("interactive", 100_000),
        TenantSpec::new("batch", 100_000),
    ]
}

fn capacity_per_second() -> f64 {
    let (plan, devices) = cluster();
    ServeScheduler::new(
        plan,
        devices,
        drill_config(open_tenants(), ArrivalSpec::new(1.0, 1, 0)),
    )
    .unwrap()
    .nominal_capacity_per_second()
    .unwrap()
}

fn run_with(config: ServeConfig) -> ServeReport {
    let (plan, devices) = cluster();
    let executors = executors_for(&plan);
    ServeScheduler::new(plan, devices, config)
        .unwrap()
        .run(&sample_pool(8), executors, concat_fusion())
        .unwrap()
}

/// The satellite-2 invariant: the depth chain is anchored at
/// `initial_depth`, contiguous link to link, and terminated by
/// `final_depth`.
fn assert_depth_chain(report: &ServeReport, label: &str) {
    match report.depth_changes.first() {
        Some(first) => assert_eq!(
            first.from, report.initial_depth,
            "{label}: first transition must depart from the initial depth"
        ),
        None => assert_eq!(
            report.final_depth, report.initial_depth,
            "{label}: no transitions, yet the depth moved"
        ),
    }
    for pair in report.depth_changes.windows(2) {
        assert_eq!(
            pair[1].from, pair[0].to,
            "{label}: depth chain broken between rounds {} and {}",
            pair[0].round, pair[1].round
        );
    }
    if let Some(last) = report.depth_changes.last() {
        assert_eq!(
            last.to, report.final_depth,
            "{label}: final_depth must equal the last transition's target"
        );
    }
}

#[test]
fn adaptive_depth_chain_is_anchored_and_contiguous_under_overload() {
    let rate = 3.0 * capacity_per_second();
    let mut config = drill_config(open_tenants(), ArrivalSpec::new(rate, 96, 5));
    config.depth = DepthController {
        min_depth: 1,
        max_depth: 4,
        backlog_rounds: 2,
    };
    // The configured pipeline depth (2) already sits inside the band, so
    // the clamp must be the identity here.
    let report = run_with(config);
    assert_eq!(report.initial_depth, 2);
    assert!(
        !report.depth_changes.is_empty(),
        "3x overload must move the depth"
    );
    assert_depth_chain(&report, "overload");
}

#[test]
fn initial_depth_reports_the_clamped_configuration() {
    // Configured depth 2 clamps up into a [3, 5] controller band.
    let rate = 0.8 * capacity_per_second();
    let mut config = drill_config(open_tenants(), ArrivalSpec::new(rate, 24, 9));
    config.depth = DepthController {
        min_depth: 3,
        max_depth: 5,
        backlog_rounds: usize::MAX,
    };
    assert_eq!(config.stream.pipeline_depth, 2);
    let report = run_with(config);
    assert_eq!(report.initial_depth, 3, "clamp must anchor the chain");
    assert_depth_chain(&report, "clamped");

    // The barrier baseline is always depth 1 and never adapts.
    let barrier =
        run_with(drill_config(open_tenants(), ArrivalSpec::new(rate, 24, 9)).barrier_per_request());
    assert_eq!(barrier.initial_depth, 1);
    assert_eq!(barrier.final_depth, 1);
    assert!(barrier.depth_changes.is_empty());
    assert_depth_chain(&barrier, "barrier");
}

#[test]
fn mid_drill_crash_interleaved_with_depth_changes_keeps_the_chain_consistent() {
    let rate = 3.0 * capacity_per_second();
    let mut config = drill_config(open_tenants(), ArrivalSpec::new(rate, 96, 5));
    config.depth = DepthController {
        min_depth: 1,
        max_depth: 4,
        backlog_rounds: 2,
    };
    config.stream = config.stream.with_failure(2, 3);
    let report = run_with(config);
    assert_eq!(report.devices_lost, vec![2]);
    assert!(report.recovery_seconds > 0.0);
    assert!(
        !report.depth_changes.is_empty(),
        "overload plus a crash must still adapt the depth"
    );
    assert_depth_chain(&report, "crash+depth");
    assert!(report.no_lost_requests());
}

/// Bitwise replay across operating points: sustainable load, overload with
/// tight queues and deadlines (exercising both shed paths), and a crash
/// interleaved with depth adaptation — at four seeds each.
#[test]
fn journaled_drills_replay_bitwise_at_seeds_0_through_3() {
    let capacity = capacity_per_second();
    for seed in 0u64..4 {
        let legs: Vec<(&str, ServeConfig)> = vec![
            (
                "sustainable",
                drill_config(open_tenants(), ArrivalSpec::new(0.8 * capacity, 48, seed)),
            ),
            ("overload", {
                let tenants = vec![
                    TenantSpec::new("interactive", 2).with_deadline(2.0),
                    TenantSpec::new("batch", 5),
                ];
                drill_config(tenants, ArrivalSpec::new(5.0 * capacity, 64, seed))
            }),
            ("crash", {
                let mut config =
                    drill_config(open_tenants(), ArrivalSpec::new(3.0 * capacity, 64, seed));
                config.depth = DepthController {
                    min_depth: 1,
                    max_depth: 4,
                    backlog_rounds: 2,
                };
                config.stream = config.stream.with_failure(2, 3);
                config
            }),
        ];
        for (label, config) in legs {
            let sink = MetricsSink::recording();
            let report = run_with(config.with_sink(sink.clone()));
            assert_depth_chain(&report, label);

            let journal = RunJournal::from_text(&sink.journal().to_text()).unwrap();
            let replayed = journal.replay_serve().unwrap();
            let live = report.counters();
            assert!(
                replayed.bitwise_eq(&live),
                "seed {seed} {label}: replay diverged on {:?}",
                replayed.diff(&live)
            );
        }
    }
}
