//! Serving reports: per-tenant SLO statistics and the drill-wide summary.

use std::collections::BTreeMap;

use edvit_metrics::{DepthStep, ServeCounters, TenantRow};
use edvit_sched::{DepthChange, StreamReport};
use edvit_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Nearest-rank percentile of an ascending-sorted latency slice.
///
/// `q` is in `[0, 1]`; an empty slice reports `0.0` so all-shed tenants show
/// a flat (not `NaN`) row.
pub fn percentile(sorted_ascending: &[f64], q: f64) -> f64 {
    if sorted_ascending.is_empty() {
        return 0.0;
    }
    let n = sorted_ascending.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted_ascending[rank.saturating_sub(1).min(n - 1)]
}

/// One tenant's row in the serving report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Requests that arrived for this tenant.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed on arrival (queue full).
    pub shed_overflow: u64,
    /// Requests dropped at dispatch (deadline expired).
    pub shed_deadline: u64,
    /// Deepest this tenant's queue ever grew.
    pub max_queue_depth: usize,
    /// Median round-trip latency (arrival to fused output) in virtual
    /// seconds; 0 when nothing completed.
    pub p50_latency_seconds: f64,
    /// 99th-percentile round-trip latency in virtual seconds.
    pub p99_latency_seconds: f64,
}

/// Everything a serving run reports: admission accounting, SLO percentiles,
/// batching/depth behaviour, recovery cost, and the fused outputs keyed by
/// request id.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-tenant rows, in tenant index order.
    pub tenants: Vec<TenantStats>,
    /// Requests that arrived across all tenants.
    pub admitted: u64,
    /// Requests served to completion across all tenants.
    pub completed: u64,
    /// Requests shed across all tenants (overflow + deadline).
    pub shed: u64,
    /// Rounds the batcher formed.
    pub rounds_formed: usize,
    /// Rounds dispatched below the configured capacity (continuous batching
    /// never waits to fill — partial rounds are the feature, not a bug).
    pub partial_rounds: usize,
    /// Every adaptive pipeline-depth transition, in round order.
    pub depth_changes: Vec<DepthChange>,
    /// Pipeline depth the drill started at (post-clamp). The transition
    /// chain is anchored here: the first `depth_changes` entry, when any,
    /// departs *from* this value.
    pub initial_depth: usize,
    /// Pipeline depth after the last round.
    pub final_depth: usize,
    /// Median round-trip latency over all completed requests.
    pub p50_latency_seconds: f64,
    /// 99th-percentile round-trip latency over all completed requests.
    pub p99_latency_seconds: f64,
    /// The open-loop offered load, arrivals per virtual second.
    pub offered_rate_per_second: f64,
    /// Completions per virtual second actually achieved.
    pub served_samples_per_second: f64,
    /// Virtual time from the first arrival to the last completion.
    pub simulated_total_seconds: f64,
    /// Virtual seconds spent detecting crashes, re-planning, and replaying.
    pub recovery_seconds: f64,
    /// Device ids lost to mid-drill crashes, in crash order.
    pub devices_lost: Vec<usize>,
    /// Fused model outputs keyed by request id. Every dispatched request has
    /// an output here — shedding is the only way to lose a request.
    pub outputs: BTreeMap<u64, Tensor>,
    /// The embedded streaming scheduler's report, when any round executed
    /// (`None` when every request was shed or none arrived).
    pub stream: Option<StreamReport>,
}

impl ServeReport {
    /// `true` when every admitted request was either completed or shed —
    /// i.e. none silently vanished.
    pub fn no_lost_requests(&self) -> bool {
        self.admitted == self.completed + self.shed && self.outputs.len() as u64 == self.completed
    }

    /// The accounting projection of this report, in the shape an offline
    /// [`edvit_metrics::RunJournal::replay_serve`] reconstructs — the two
    /// must match bitwise for a journaled run.
    pub fn counters(&self) -> ServeCounters {
        ServeCounters {
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantRow {
                    name: t.name.clone(),
                    admitted: t.admitted,
                    completed: t.completed,
                    shed_overflow: t.shed_overflow,
                    shed_deadline: t.shed_deadline,
                    max_queue_depth: t.max_queue_depth,
                    p50_latency_seconds: t.p50_latency_seconds,
                    p99_latency_seconds: t.p99_latency_seconds,
                })
                .collect(),
            admitted: self.admitted,
            completed: self.completed,
            shed: self.shed,
            rounds_formed: self.rounds_formed,
            partial_rounds: self.partial_rounds,
            depth_changes: self
                .depth_changes
                .iter()
                .map(|d| DepthStep {
                    round: d.round,
                    from: d.from,
                    to: d.to,
                })
                .collect(),
            initial_depth: self.initial_depth,
            final_depth: self.final_depth,
            p50_latency_seconds: self.p50_latency_seconds,
            p99_latency_seconds: self.p99_latency_seconds,
            offered_rate_per_second: self.offered_rate_per_second,
            served_samples_per_second: self.served_samples_per_second,
            simulated_total_seconds: self.simulated_total_seconds,
            recovery_seconds: self.recovery_seconds,
            devices_lost: self.devices_lost.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentile_matches_hand_computed_values() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&sorted, 2.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.25), 7.0);
    }
}
