//! The serving scheduler: admit arrivals, coalesce whatever is queued into
//! rounds (continuous batching), time the rounds on the virtual clock, and
//! execute them through the streaming scheduler.
//!
//! The drill is split from execution on purpose: [`ServeScheduler::drill`]
//! is a pure virtual-time event loop (no model runs, no threads) that decides
//! *which* requests form *which* rounds and *when* each round completes —
//! that is where admission, shedding, fairness, adaptive depth and crash
//! recovery live, and it is cheap enough to proptest and benchmark densely.
//! [`ServeScheduler::run`] then replays the formed rounds through
//! [`StreamScheduler::run_rounds`] so every dispatched request produces a
//! real fused tensor with exactly-once accounting.

use std::collections::BTreeMap;

use edvit_edge::{FusionFn, LatencyModel, RoundTimings, SubModelFn};
use edvit_metrics::{MetricsSink, RunEvent};
use edvit_partition::{DeviceSpec, SplitPlan};
use edvit_sched::{
    DepthChange, DepthController, RoundLayout, ScheduleMode, StreamConfig, StreamScheduler,
};
use edvit_tensor::Tensor;

use crate::admission::{AdmissionQueue, TenantCounters};
use crate::report::{percentile, ServeReport, TenantStats};
use crate::request::{ArrivalSpec, Request, TenantSpec};
use crate::{Result, ServeError};

/// How the front door turns queued requests into rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Continuous batching: at every dispatch opportunity, fill a round with
    /// whatever is queued (up to the round capacity) and go — never wait for
    /// the round to fill. Rounds overlap up to the adaptive pipeline depth.
    Continuous,
    /// One request per round, the next admitted only after the previous
    /// completes. The baseline continuous batching is measured against.
    BarrierPerRequest,
}

/// Configuration of a serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Batching discipline.
    pub mode: AdmissionMode,
    /// Adaptive pipeline-depth policy (ignored in
    /// [`AdmissionMode::BarrierPerRequest`], which is always depth 1).
    pub depth: DepthController,
    /// The tenants and their admission contracts.
    pub tenants: Vec<TenantSpec>,
    /// The seeded open-loop arrival process driving the run.
    pub arrivals: ArrivalSpec,
    /// The embedded streaming scheduler's configuration. `round_size` is the
    /// round capacity continuous batching fills up to (one knob for both
    /// layers); `failures` crash devices mid-drill; timing knobs (network,
    /// codec, grace rounds, replan cost) price the virtual clock.
    pub stream: StreamConfig,
}

impl ServeConfig {
    /// Continuous batching with default depth policy and stream settings.
    pub fn new(tenants: Vec<TenantSpec>, arrivals: ArrivalSpec) -> Self {
        ServeConfig {
            mode: AdmissionMode::Continuous,
            depth: DepthController::default(),
            tenants,
            arrivals,
            stream: StreamConfig::default(),
        }
    }

    /// Switches to the one-request-per-round baseline.
    #[must_use]
    pub fn barrier_per_request(mut self) -> Self {
        self.mode = AdmissionMode::BarrierPerRequest;
        self
    }

    /// Attaches an observability sink. The drill journals admission,
    /// depth, crash and round events into it, and the embedded streaming
    /// scheduler (which shares the stream configuration) records its wire
    /// events into the same journal.
    #[must_use]
    pub fn with_sink(mut self, sink: MetricsSink) -> Self {
        self.stream.sink = sink;
        self
    }
}

/// One round the drill formed: which requests, dispatched when, fused when.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedRound {
    /// Virtual dispatch time.
    pub start_seconds: f64,
    /// Virtual time the round's fused outputs are available; per-request
    /// latency is `completion_seconds - arrival_seconds`.
    pub completion_seconds: f64,
    /// The dispatched requests, in batch order.
    pub requests: Vec<Request>,
}

/// The pure virtual-time result of a drill: rounds, accounting, depth and
/// recovery behaviour — everything except the actual tensors.
#[derive(Debug, Clone)]
pub struct DrillOutcome {
    /// The rounds in dispatch order.
    pub rounds: Vec<PlannedRound>,
    /// Per-tenant admission counters at the end of the drill.
    pub counters: Vec<TenantCounters>,
    /// Every adaptive-depth transition, in round order.
    pub depth_changes: Vec<DepthChange>,
    /// Pipeline depth the drill started at (after clamping the configured
    /// depth into the controller's band). The first entry of
    /// `depth_changes`, when any, transitions *from* this value.
    pub initial_depth: usize,
    /// Pipeline depth after the last round.
    pub final_depth: usize,
    /// Deepest the pipeline ever ran; the execution pass sizes its lanes to
    /// this.
    pub max_depth_used: usize,
    /// Devices lost to scripted crashes, in crash order.
    pub devices_lost: Vec<usize>,
    /// Virtual seconds spent detecting crashes, re-planning and refilling.
    pub recovery_seconds: f64,
    /// Virtual time of the last completion (0 when nothing dispatched).
    pub end_seconds: f64,
}

/// The request front-door: owns the deployment plan, the device membership
/// and the serving configuration.
#[derive(Debug, Clone)]
pub struct ServeScheduler {
    plan: SplitPlan,
    devices: Vec<DeviceSpec>,
    config: ServeConfig,
}

impl ServeScheduler {
    /// Creates a serving scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when there are no devices, no
    /// tenants, or a zero round capacity.
    pub fn new(plan: SplitPlan, devices: Vec<DeviceSpec>, config: ServeConfig) -> Result<Self> {
        if devices.is_empty() {
            return Err(ServeError::InvalidConfig {
                message: "no devices to serve on".to_string(),
            });
        }
        if config.tenants.is_empty() {
            return Err(ServeError::InvalidConfig {
                message: "serving needs at least one tenant".to_string(),
            });
        }
        if config.stream.round_size == 0 {
            return Err(ServeError::InvalidConfig {
                message: "round capacity must be at least 1".to_string(),
            });
        }
        Ok(ServeScheduler {
            plan,
            devices,
            config,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Round capacity: the configured round size under continuous batching,
    /// 1 in the barrier baseline.
    pub fn capacity(&self) -> usize {
        match self.config.mode {
            AdmissionMode::Continuous => self.config.stream.round_size,
            AdmissionMode::BarrierPerRequest => 1,
        }
    }

    fn pipelined(&self) -> bool {
        self.config.mode == AdmissionMode::Continuous
    }

    fn timings_for(&self, plan: &SplitPlan, devices: &[DeviceSpec]) -> RoundTimings {
        let stream = &self.config.stream;
        let mut model = LatencyModel::new(stream.network).with_options(&stream.net_options());
        if stream.fusion_flops > 0 {
            model = model.with_fusion_flops(stream.fusion_flops);
        }
        RoundTimings::new(model, plan.clone(), devices.to_vec(), self.pipelined())
    }

    /// Nominal steady-state service capacity in samples per virtual second:
    /// a full round's size over its issue interval on the initial membership.
    /// Offered loads above this back the queues up (shedding under bounded
    /// queues); loads below it drain.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Edge`] when the latency model rejects the plan.
    pub fn nominal_capacity_per_second(&self) -> Result<f64> {
        let mut timings = self.timings_for(&self.plan, &self.devices);
        let timing = timings.timing_for(self.capacity())?;
        Ok(self.capacity() as f64 / timing.round_interval_seconds)
    }

    /// Runs the admission/batching drill over an explicit arrival sequence
    /// (sorted by arrival time) without executing any model code.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for unsorted arrivals or
    /// unknown tenants, [`ServeError::Partition`] when a crash leaves
    /// survivors that cannot host the plan, and
    /// [`ServeError::AllDevicesLost`] when scripted crashes kill everyone.
    pub fn drill(&self, requests: &[Request]) -> Result<DrillOutcome> {
        if requests
            .windows(2)
            .any(|w| w[0].arrival_seconds > w[1].arrival_seconds)
        {
            return Err(ServeError::InvalidConfig {
                message: "drill arrivals must be sorted by arrival time".to_string(),
            });
        }
        let cap = self.capacity();
        let pipelined = self.pipelined();
        let stream_cfg = &self.config.stream;
        let ctl = self.config.depth;

        let sink = stream_cfg.sink.clone();
        let mut queue = AdmissionQueue::new(self.config.tenants.clone())?;
        queue.attach_sink(sink.clone());
        let mut devices = self.devices.clone();
        let mut plan = self.plan.clone();
        let mut failures = stream_cfg.failures.clone();
        failures.sort_by_key(|f| f.at_round);
        let mut timings = self.timings_for(&plan, &devices);
        let mut nominal = timings.timing_for(cap)?;

        let min_depth = ctl.min_depth.max(1);
        let max_depth = ctl.max_depth.max(min_depth);
        let mut depth = if pipelined {
            stream_cfg.pipeline_depth.clamp(min_depth, max_depth)
        } else {
            1
        };
        let initial_depth = depth;
        let mut max_depth_used = depth;
        let mut depth_changes: Vec<DepthChange> = Vec::new();

        sink.record(
            0.0,
            RunEvent::ServeStarted {
                tenants: self.config.tenants.len() as u64,
                capacity: cap as u64,
                initial_depth: initial_depth as u64,
                offered_rate_per_second: self.config.arrivals.rate_per_second,
            },
        );
        for (index, tenant) in self.config.tenants.iter().enumerate() {
            sink.record(
                0.0,
                RunEvent::TenantRegistered {
                    tenant: index as u64,
                    name: tenant.name.clone(),
                },
            );
        }

        let mut next_arrival = 0usize;
        let mut now = 0.0f64;
        let mut rounds: Vec<PlannedRound> = Vec::new();
        // Issue interval of the previous round: the pipeline cannot accept a
        // new round faster than its bottleneck stage drains the last one.
        let mut last_interval = 0.0f64;
        let mut devices_lost: Vec<usize> = Vec::new();
        let mut recovery_seconds = 0.0f64;

        loop {
            admit_until(&mut queue, requests, &mut next_arrival, now)?;
            if queue.queued() == 0 {
                match requests.get(next_arrival) {
                    // Idle: jump the virtual clock to the next arrival.
                    Some(r) => {
                        now = r.arrival_seconds;
                        continue;
                    }
                    None => break,
                }
            }
            let k = rounds.len();
            if pipelined {
                let queued_rounds = queue.queued().div_ceil(cap);
                let fusion_bound = nominal.fusion_round_seconds > nominal.device_round_seconds;
                let next_depth = ctl.decide(fusion_bound, queued_rounds, depth);
                if next_depth != depth {
                    depth_changes.push(DepthChange {
                        round: k as u64,
                        from: depth,
                        to: next_depth,
                    });
                    sink.record(
                        now,
                        RunEvent::DepthChanged {
                            round: k as u64,
                            from: depth as u64,
                            to: next_depth as u64,
                        },
                    );
                    depth = next_depth;
                    max_depth_used = max_depth_used.max(depth);
                }
            }
            // Dispatch when (a) work is queued, (b) the pipeline can issue
            // (one round per bottleneck interval), and (c) at most `depth`
            // rounds are in flight.
            let mut start = now;
            if let Some(prev) = rounds.last() {
                start = start.max(prev.start_seconds + last_interval);
            }
            if k >= depth {
                start = start.max(rounds[k - depth].completion_seconds);
            }
            // Stragglers arriving before the actual dispatch instant still
            // make this round — that is the "never wait, but never leave a
            // seat empty" half of continuous batching.
            admit_until(&mut queue, requests, &mut next_arrival, start)?;
            let batch = queue.drain_round(start, cap);
            if batch.is_empty() {
                // Everything queued had expired; the sheds are counted, move
                // time forward and look again.
                now = start;
                continue;
            }

            let crashed = {
                let mut hit = None;
                while let Some(f) = failures.first().copied() {
                    if f.at_round > k as u64 {
                        break;
                    }
                    failures.remove(0);
                    if devices.iter().any(|d| d.id == f.device_id) {
                        hit = Some(f.device_id);
                        break;
                    }
                }
                hit
            };
            let completion;
            if let Some(dead) = crashed {
                // Detection is round-denominated on the *old* membership's
                // nominal interval, matching the streaming scheduler's
                // heartbeat deadline; then the planner runs; then the round
                // replays on the survivors.
                let detection =
                    (stream_cfg.grace_rounds + 1) as f64 * nominal.round_interval_seconds;
                devices.retain(|d| d.id != dead);
                devices_lost.push(dead);
                if devices.is_empty() {
                    return Err(ServeError::AllDevicesLost { lost: devices_lost });
                }
                plan = plan.replan_for_survivors(&devices, stream_cfg.energy_samples_per_round)?;
                timings = self.timings_for(&plan, &devices);
                nominal = timings.timing_for(cap)?;
                let t = timings.timing_for(batch.len())?;
                let stall = detection + stream_cfg.replan_seconds;
                completion = start + stall + t.device_round_seconds + t.fusion_round_seconds;
                // One pre-summed charge per crash, so an offline replay of
                // the journal re-adds the exact f64 the live drill added.
                let charge = stall + t.round_interval_seconds;
                recovery_seconds += charge;
                sink.record(
                    start,
                    RunEvent::ServeCrash {
                        device: dead as u64,
                        round: k as u64,
                    },
                );
                sink.record(start, RunEvent::ServeRecovery { seconds: charge });
                // The pipe stalls through recovery: the next round cannot
                // issue until the replayed round has cleared the new
                // membership's bottleneck stage.
                last_interval = charge;
            } else {
                let t = timings.timing_for(batch.len())?;
                completion = start + t.device_round_seconds + t.fusion_round_seconds;
                last_interval = t.round_interval_seconds;
            }
            sink.record(
                start,
                RunEvent::ServeRound {
                    round: k as u64,
                    start_seconds: start,
                    completion_seconds: completion,
                    size: batch.len() as u64,
                },
            );
            rounds.push(PlannedRound {
                start_seconds: start,
                completion_seconds: completion,
                requests: batch,
            });
            now = start;
        }

        let end_seconds = rounds
            .iter()
            .map(|r| r.completion_seconds)
            .fold(0.0f64, f64::max);
        sink.record(end_seconds, RunEvent::ServeEnded);
        Ok(DrillOutcome {
            counters: queue.counters().to_vec(),
            depth_changes,
            initial_depth,
            final_depth: depth,
            max_depth_used,
            devices_lost,
            recovery_seconds,
            end_seconds,
            rounds,
        })
    }

    /// Generates the configured arrival sequence, drills it, executes the
    /// formed rounds through the streaming scheduler, and assembles the
    /// [`ServeReport`] with per-tenant SLO statistics and fused outputs
    /// keyed by request id.
    ///
    /// `samples` is the pool arrivals draw from; `executors`/`fusion` come
    /// from the deployment exactly as for [`StreamScheduler::run`].
    ///
    /// # Errors
    ///
    /// Everything [`ServeScheduler::drill`] can return, plus
    /// [`ServeError::Sched`] when the execution pass fails.
    pub fn run(
        &self,
        samples: &[Tensor],
        executors: Vec<SubModelFn>,
        fusion: FusionFn,
    ) -> Result<ServeReport> {
        let requests = self
            .config
            .arrivals
            .generate(self.config.tenants.len(), samples.len())?;
        let drill = self.drill(&requests)?;
        let cap = self.capacity();

        let sizes: Vec<usize> = drill.rounds.iter().map(|r| r.requests.len()).collect();
        let mut outputs: BTreeMap<u64, Tensor> = BTreeMap::new();
        let stream = if sizes.is_empty() {
            None
        } else {
            let layout = RoundLayout::from_sizes(&sizes)?;
            let flat: Vec<Tensor> = drill
                .rounds
                .iter()
                .flat_map(|r| r.requests.iter().map(|q| samples[q.sample].clone()))
                .collect();
            let mut cfg = self.config.stream.clone();
            cfg.round_size = cap;
            cfg.mode = if self.pipelined() {
                ScheduleMode::Pipelined
            } else {
                ScheduleMode::Barrier
            };
            cfg.pipeline_depth = drill.max_depth_used.max(1);
            let report = StreamScheduler::new(self.plan.clone(), self.devices.clone(), cfg)?
                .run_rounds(&flat, &layout, executors, fusion)?;
            let mut fused = report.outputs.iter();
            for round in &drill.rounds {
                for request in &round.requests {
                    if let Some(tensor) = fused.next() {
                        outputs.insert(request.id, tensor.clone());
                    }
                }
            }
            Some(report)
        };

        let tenant_count = self.config.tenants.len();
        let mut per_tenant: Vec<Vec<f64>> = vec![Vec::new(); tenant_count];
        let mut all: Vec<f64> = Vec::new();
        for round in &drill.rounds {
            for request in &round.requests {
                let latency = round.completion_seconds - request.arrival_seconds;
                per_tenant[request.tenant].push(latency);
                all.push(latency);
            }
        }
        all.sort_by(f64::total_cmp);
        for lats in &mut per_tenant {
            lats.sort_by(f64::total_cmp);
        }

        let tenants: Vec<TenantStats> = self
            .config
            .tenants
            .iter()
            .zip(&drill.counters)
            .zip(&per_tenant)
            .map(|((spec, c), lats)| TenantStats {
                name: spec.name.clone(),
                admitted: c.admitted,
                completed: c.dispatched,
                shed_overflow: c.shed_overflow,
                shed_deadline: c.shed_deadline,
                max_queue_depth: c.max_queue_depth,
                p50_latency_seconds: percentile(lats, 0.50),
                p99_latency_seconds: percentile(lats, 0.99),
            })
            .collect();
        let admitted: u64 = drill.counters.iter().map(|c| c.admitted).sum();
        let completed: u64 = drill.counters.iter().map(|c| c.dispatched).sum();
        let shed: u64 = drill.counters.iter().map(TenantCounters::shed).sum();

        Ok(ServeReport {
            tenants,
            admitted,
            completed,
            shed,
            rounds_formed: drill.rounds.len(),
            partial_rounds: sizes.iter().filter(|&&s| s < cap).count(),
            depth_changes: drill.depth_changes,
            initial_depth: drill.initial_depth,
            final_depth: drill.final_depth,
            p50_latency_seconds: percentile(&all, 0.50),
            p99_latency_seconds: percentile(&all, 0.99),
            offered_rate_per_second: self.config.arrivals.rate_per_second,
            served_samples_per_second: if drill.end_seconds > 0.0 {
                completed as f64 / drill.end_seconds
            } else {
                0.0
            },
            simulated_total_seconds: drill.end_seconds,
            recovery_seconds: drill.recovery_seconds,
            devices_lost: drill.devices_lost,
            outputs,
            stream,
        })
    }
}

/// Offers every request with `arrival_seconds <= time`, in order.
fn admit_until(
    queue: &mut AdmissionQueue,
    requests: &[Request],
    next: &mut usize,
    time: f64,
) -> Result<()> {
    while *next < requests.len() && requests[*next].arrival_seconds <= time {
        queue.offer(requests[*next].clone())?;
        *next += 1;
    }
    Ok(())
}
