use std::fmt;

use edvit_edge::EdgeError;
use edvit_partition::PartitionError;
use edvit_sched::SchedError;

/// Error type of the serving front-door.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server was configured inconsistently (no tenants, a zero arrival
    /// rate, unsorted request arrivals, ...).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// The embedded streaming scheduler failed while executing the formed
    /// rounds (propagated from `edvit-sched`).
    Sched(SchedError),
    /// The analytic latency model rejected a round (propagated from
    /// `edvit-edge`), e.g. an empty plan.
    Edge(EdgeError),
    /// Re-planning onto the survivors of a mid-drill crash failed
    /// (propagated from `edvit-partition`).
    Partition(PartitionError),
    /// Every device crashed during the drill; there is no membership left to
    /// serve the queued requests on.
    AllDevicesLost {
        /// Device ids lost, in crash order.
        lost: Vec<usize>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { message } => {
                write!(f, "invalid serving configuration: {message}")
            }
            ServeError::Sched(e) => write!(f, "serving stream failure: {e}"),
            ServeError::Edge(e) => write!(f, "serving latency model failure: {e}"),
            ServeError::Partition(e) => write!(f, "serving re-plan failure: {e}"),
            ServeError::AllDevicesLost { lost } => write!(
                f,
                "every device crashed mid-drill (lost, in order: {lost:?}); nothing left to serve on"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sched(e) => Some(e),
            ServeError::Edge(e) => Some(e),
            ServeError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

impl From<EdgeError> for ServeError {
    fn from(e: EdgeError) -> Self {
        ServeError::Edge(e)
    }
}

impl From<PartitionError> for ServeError {
    fn from(e: PartitionError) -> Self {
        ServeError::Partition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources_cover_every_variant() {
        let invalid = ServeError::InvalidConfig {
            message: "no tenants".into(),
        };
        assert!(invalid.to_string().contains("no tenants"));
        let sched: ServeError = SchedError::InvalidConfig {
            message: "round size 0".into(),
        }
        .into();
        assert!(matches!(sched, ServeError::Sched(_)));
        assert!(sched.to_string().contains("round size 0"));
        let edge: ServeError = EdgeError::InvalidConfig {
            message: "empty plan".into(),
        }
        .into();
        assert!(matches!(edge, ServeError::Edge(_)));
        assert!(edge.to_string().contains("empty plan"));
        let partition: ServeError = PartitionError::Infeasible {
            reason: "too small".into(),
        }
        .into();
        assert!(matches!(partition, ServeError::Partition(_)));
        assert!(partition.to_string().contains("too small"));
        let lost = ServeError::AllDevicesLost { lost: vec![2, 0] };
        assert!(lost.to_string().contains("[2, 0]"));
        use std::error::Error;
        assert!(invalid.source().is_none());
        assert!(sched.source().is_some());
        assert!(edge.source().is_some());
        assert!(partition.source().is_some());
        assert!(lost.source().is_none());
    }
}
