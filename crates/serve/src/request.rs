//! Requests, tenants, and the seeded open-loop arrival generator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, ServeError};

/// One tenant's admission contract: how deep its queue may grow and how long
/// a request may wait before it is dropped instead of served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name, used in the per-tenant report rows.
    pub name: String,
    /// Most requests this tenant may have queued at once. A request arriving
    /// with the queue full is shed immediately (`shed_overflow`). A bound of
    /// 0 blocks the tenant entirely — every request sheds on arrival.
    pub max_queue: usize,
    /// Deadline in virtual seconds from arrival: a queued request older than
    /// this at dispatch time is dropped (`shed_deadline`) rather than served
    /// uselessly late. Non-positive means no deadline.
    pub deadline_seconds: f64,
}

impl TenantSpec {
    /// A tenant with the given queue bound and no deadline.
    pub fn new(name: impl Into<String>, max_queue: usize) -> Self {
        TenantSpec {
            name: name.into(),
            max_queue,
            deadline_seconds: 0.0,
        }
    }

    /// Sets a dispatch deadline in virtual seconds from arrival.
    #[must_use]
    pub fn with_deadline(mut self, deadline_seconds: f64) -> Self {
        self.deadline_seconds = deadline_seconds;
        self
    }
}

/// One admitted-or-not inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id in arrival order.
    pub id: u64,
    /// Index into the tenant list.
    pub tenant: usize,
    /// Index into the sample pool the server was given.
    pub sample: usize,
    /// Virtual arrival time.
    pub arrival_seconds: f64,
}

/// A seeded open-loop Poisson arrival process: requests arrive at
/// `rate_per_second` on the virtual clock regardless of how the server keeps
/// up (that is what makes overload and shedding observable). Same seed, same
/// arrivals — shed counts and latency percentiles are reproducible bit for
/// bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Mean arrivals per virtual second (> 0).
    pub rate_per_second: f64,
    /// Total requests to generate.
    pub count: usize,
    /// ChaCha8 seed for inter-arrival gaps and tenant/sample assignment.
    pub seed: u64,
}

impl ArrivalSpec {
    /// An arrival process with the given rate, count and seed.
    pub fn new(rate_per_second: f64, count: usize, seed: u64) -> Self {
        ArrivalSpec {
            rate_per_second,
            count,
            seed,
        }
    }

    /// Generates the arrival sequence: exponential inter-arrival gaps via
    /// inverse-CDF sampling, tenant and sample drawn uniformly. Arrival times
    /// are strictly increasing.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the rate is non-positive or
    /// either the tenant list or the sample pool is empty.
    pub fn generate(&self, tenants: usize, sample_pool: usize) -> Result<Vec<Request>> {
        if self.rate_per_second <= 0.0 || !self.rate_per_second.is_finite() {
            return Err(ServeError::InvalidConfig {
                message: format!(
                    "arrival rate must be positive and finite, got {}",
                    self.rate_per_second
                ),
            });
        }
        if tenants == 0 {
            return Err(ServeError::InvalidConfig {
                message: "cannot generate arrivals without tenants".to_string(),
            });
        }
        if sample_pool == 0 {
            return Err(ServeError::InvalidConfig {
                message: "cannot generate arrivals from an empty sample pool".to_string(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut requests = Vec::with_capacity(self.count);
        let mut t = 0.0f64;
        for id in 0..self.count as u64 {
            let u: f64 = rng.gen();
            // Inverse CDF of Exp(rate); u ∈ [0, 1) keeps the log finite.
            t += -(1.0 - u).ln() / self.rate_per_second;
            requests.push(Request {
                id,
                tenant: rng.gen_range(0..tenants),
                sample: rng.gen_range(0..sample_pool),
                arrival_seconds: t,
            });
        }
        Ok(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_seed_deterministic_and_strictly_increasing() {
        let spec = ArrivalSpec::new(10.0, 64, 7);
        let a = spec.generate(3, 8).unwrap();
        let b = spec.generate(3, 8).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for pair in a.windows(2) {
            assert!(pair[0].arrival_seconds < pair[1].arrival_seconds);
        }
        assert!(a.iter().all(|r| r.tenant < 3 && r.sample < 8));
        // Mean inter-arrival should be in the right ballpark of 1/rate.
        let mean = a.last().map_or(0.0, |r| r.arrival_seconds) / 64.0;
        assert!(mean > 0.02 && mean < 0.5, "mean gap {mean}");
        // A different seed produces a different sequence.
        let c = ArrivalSpec::new(10.0, 64, 8).generate(3, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_arrival_specs_are_rejected() {
        assert!(ArrivalSpec::new(0.0, 4, 1).generate(1, 1).is_err());
        assert!(ArrivalSpec::new(-1.0, 4, 1).generate(1, 1).is_err());
        assert!(ArrivalSpec::new(f64::INFINITY, 4, 1)
            .generate(1, 1)
            .is_err());
        assert!(ArrivalSpec::new(1.0, 4, 1).generate(0, 1).is_err());
        assert!(ArrivalSpec::new(1.0, 4, 1).generate(1, 0).is_err());
        assert_eq!(ArrivalSpec::new(1.0, 0, 1).generate(1, 1).unwrap().len(), 0);
    }

    #[test]
    fn tenant_spec_builder_sets_deadline() {
        let spec = TenantSpec::new("batch", 8).with_deadline(2.5);
        assert_eq!(spec.name, "batch");
        assert_eq!(spec.max_queue, 8);
        assert_eq!(spec.deadline_seconds, 2.5);
        assert_eq!(TenantSpec::new("x", 1).deadline_seconds, 0.0);
    }
}
