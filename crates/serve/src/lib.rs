//! `edvit-serve`: the continuous-batching request front-door with
//! multi-tenant admission control.
//!
//! The crates below this one answer "how fast does a *stream* of samples
//! flow through a partitioned ViT?". This crate answers the serving
//! question: *concurrent requests from named tenants arrive on their own
//! clock* — who gets admitted, how queued requests coalesce into cluster
//! rounds, and what latency each tenant actually observes.
//!
//! The pieces:
//!
//! * [`TenantSpec`] / [`ArrivalSpec`] — tenants with bounded queues and
//!   optional deadlines; a seeded open-loop Poisson arrival process on the
//!   virtual clock (same seed, bit-identical drill).
//! * [`AdmissionQueue`] — per-tenant FIFOs with overflow shedding at
//!   arrival, deadline shedding at dispatch, and persistent round-robin
//!   draining so no tenant starves another.
//! * [`ServeScheduler`] — the front door. [`ServeScheduler::drill`] is the
//!   pure virtual-time event loop (continuous batching: fill a round from
//!   whatever is queued, never wait for stragglers; adaptive pipeline depth
//!   via [`DepthController`]; scripted crashes recovered by re-planning onto
//!   survivors). [`ServeScheduler::run`] executes the formed rounds through
//!   the streaming scheduler's [`RoundLayout`] seam so every dispatched
//!   request yields a real fused tensor, exactly once.
//! * [`ServeReport`] — per-tenant p50/p99 round-trip latency, queue
//!   high-water marks, admitted/shed/completed counters, depth transitions,
//!   recovery cost, and outputs keyed by request id.
//!
//! All timing is virtual ([`edvit_sched::SimClock`] semantics): a drill over
//! thousands of requests runs in microseconds of host time and reports
//! deterministic latency percentiles.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod admission;
mod error;
mod report;
mod request;
mod server;

pub use admission::{AdmissionQueue, AdmissionVerdict, TenantCounters};
pub use error::ServeError;
pub use report::{percentile, ServeReport, TenantStats};
pub use request::{ArrivalSpec, Request, TenantSpec};
pub use server::{AdmissionMode, DrillOutcome, PlannedRound, ServeConfig, ServeScheduler};

// Re-export the pieces callers configure a server with, so downstream code
// does not need to depend on the scheduler crates directly.
pub use edvit_metrics::{MetricsSink, RunJournal, ServeCounters};
pub use edvit_sched::{DepthChange, DepthController, RoundLayout, StreamConfig, StreamReport};

/// Convenience alias for results carrying a [`ServeError`].
pub type Result<T> = std::result::Result<T, ServeError>;
