//! The multi-tenant admission queue: bounded per-tenant FIFOs, deadline
//! drops at dispatch, and round-robin fairness when a round is formed.
//!
//! The state machine a request moves through:
//!
//! ```text
//!            offer()                    drain_round()
//! arrival ──────────────► queued ─────────────────────► dispatched
//!    │                       │
//!    │ queue full            │ older than the tenant deadline at dispatch
//!    ▼                       ▼
//!  shed_overflow          shed_deadline
//! ```
//!
//! Every offered request ends in exactly one of `dispatched`,
//! `shed_overflow` or `shed_deadline` (or is still queued); the counters are
//! maintained so that `admitted == dispatched + shed + queued` holds per
//! tenant at every step — the invariant the admission proptests pin.

use std::collections::VecDeque;

use edvit_metrics::{MetricsSink, RunEvent};
use serde::{Deserialize, Serialize};

use crate::request::{Request, TenantSpec};
use crate::{Result, ServeError};

/// What [`AdmissionQueue::offer`] did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The request was queued for dispatch.
    Queued,
    /// The tenant's queue was full; the request was shed on arrival.
    ShedOverflow,
}

/// Per-tenant admission accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// Requests offered to admission (everything that arrived).
    pub admitted: u64,
    /// Requests shed on arrival because the queue was full.
    pub shed_overflow: u64,
    /// Requests dropped at dispatch because they outlived their deadline.
    pub shed_deadline: u64,
    /// Requests handed to a round.
    pub dispatched: u64,
    /// Deepest the queue ever grew.
    pub max_queue_depth: usize,
}

impl TenantCounters {
    /// Total requests shed, for whatever reason.
    pub fn shed(&self) -> u64 {
        self.shed_overflow + self.shed_deadline
    }
}

/// Bounded multi-tenant admission queues with round-robin draining.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    tenants: Vec<TenantSpec>,
    queues: Vec<VecDeque<Request>>,
    counters: Vec<TenantCounters>,
    /// Next tenant the round-robin drain visits; persists across rounds so a
    /// busy tenant cannot starve a quiet one.
    cursor: usize,
    /// Observability sink admission decisions are journaled into. Disabled
    /// (a no-op) unless [`AdmissionQueue::attach_sink`] hands in a recorder.
    sink: MetricsSink,
}

impl AdmissionQueue {
    /// Creates the queues for the given tenants.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the tenant list is empty.
    pub fn new(tenants: Vec<TenantSpec>) -> Result<Self> {
        if tenants.is_empty() {
            return Err(ServeError::InvalidConfig {
                message: "admission needs at least one tenant".to_string(),
            });
        }
        let n = tenants.len();
        Ok(AdmissionQueue {
            tenants,
            queues: vec![VecDeque::new(); n],
            counters: vec![TenantCounters::default(); n],
            cursor: 0,
            sink: MetricsSink::disabled(),
        })
    }

    /// Attaches the observability sink admission events are recorded into.
    /// Events mirror the counters one-for-one, so an offline replay of the
    /// journal reconstructs every [`TenantCounters`] field exactly.
    pub fn attach_sink(&mut self, sink: MetricsSink) {
        self.sink = sink;
    }

    /// The tenant specifications, in index order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Offers one arriving request: queued when the tenant has room, shed
    /// immediately when not.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the request names an
    /// unknown tenant.
    pub fn offer(&mut self, request: Request) -> Result<AdmissionVerdict> {
        let t = request.tenant;
        if t >= self.tenants.len() {
            return Err(ServeError::InvalidConfig {
                message: format!(
                    "request {} names tenant {t}, but only {} exist",
                    request.id,
                    self.tenants.len()
                ),
            });
        }
        self.counters[t].admitted += 1;
        let at = request.arrival_seconds;
        self.sink.record(
            at,
            RunEvent::RequestAdmitted {
                tenant: t as u64,
                id: request.id,
            },
        );
        if self.queues[t].len() >= self.tenants[t].max_queue {
            self.counters[t].shed_overflow += 1;
            self.sink.record(
                at,
                RunEvent::RequestShedOverflow {
                    tenant: t as u64,
                    id: request.id,
                },
            );
            return Ok(AdmissionVerdict::ShedOverflow);
        }
        self.queues[t].push_back(request);
        self.counters[t].max_queue_depth =
            self.counters[t].max_queue_depth.max(self.queues[t].len());
        self.sink.record(
            at,
            RunEvent::QueueDepth {
                tenant: t as u64,
                depth: self.queues[t].len() as u64,
            },
        );
        Ok(AdmissionVerdict::Queued)
    }

    /// Forms one round of up to `capacity` requests at virtual time `now`:
    /// round-robin across tenants (one request per visit, cursor persisted
    /// across rounds), preserving FIFO order within each tenant. Queued
    /// requests older than their tenant's deadline are dropped instead of
    /// dispatched.
    pub fn drain_round(&mut self, now: f64, capacity: usize) -> Vec<Request> {
        let mut batch = Vec::new();
        let n = self.queues.len();
        let mut empty_streak = 0usize;
        while batch.len() < capacity && empty_streak < n {
            let t = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            let deadline = self.tenants[t].deadline_seconds;
            // Expired requests sit at the front (per-tenant FIFO ages in
            // arrival order); shed them before dispatching the head.
            while let Some(front) = self.queues[t].front() {
                if deadline > 0.0 && front.arrival_seconds + deadline < now {
                    let expired = self.queues[t].pop_front();
                    self.counters[t].shed_deadline += 1;
                    if let Some(expired) = expired {
                        self.sink.record(
                            now,
                            RunEvent::RequestShedDeadline {
                                tenant: t as u64,
                                id: expired.id,
                            },
                        );
                    }
                } else {
                    break;
                }
            }
            match self.queues[t].pop_front() {
                Some(request) => {
                    self.counters[t].dispatched += 1;
                    self.sink.record(
                        now,
                        RunEvent::RequestDispatched {
                            tenant: t as u64,
                            id: request.id,
                            arrival_seconds: request.arrival_seconds,
                        },
                    );
                    batch.push(request);
                    empty_streak = 0;
                }
                None => empty_streak += 1,
            }
        }
        batch
    }

    /// Total requests currently queued across all tenants.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Requests currently queued for one tenant (0 for unknown tenants).
    pub fn queued_of(&self, tenant: usize) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    /// Per-tenant counters, in tenant index order.
    pub fn counters(&self) -> &[TenantCounters] {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, tenant: usize, at: f64) -> Request {
        Request {
            id,
            tenant,
            sample: 0,
            arrival_seconds: at,
        }
    }

    #[test]
    fn bounded_queue_sheds_overflow_and_tracks_high_water() {
        let mut q = AdmissionQueue::new(vec![TenantSpec::new("a", 2)]).unwrap();
        assert_eq!(
            q.offer(request(0, 0, 0.0)).unwrap(),
            AdmissionVerdict::Queued
        );
        assert_eq!(
            q.offer(request(1, 0, 0.1)).unwrap(),
            AdmissionVerdict::Queued
        );
        assert_eq!(
            q.offer(request(2, 0, 0.2)).unwrap(),
            AdmissionVerdict::ShedOverflow
        );
        assert_eq!(q.queued(), 2);
        assert_eq!(q.queued_of(0), 2);
        assert_eq!(q.queued_of(9), 0);
        let c = q.counters()[0];
        assert_eq!(c.admitted, 3);
        assert_eq!(c.shed_overflow, 1);
        assert_eq!(c.max_queue_depth, 2);
        assert_eq!(c.shed(), 1);
        // Unknown tenants are a typed error, not an index panic.
        assert!(q.offer(request(3, 7, 0.3)).is_err());
        assert_eq!(q.tenants().len(), 1);
    }

    #[test]
    fn drain_is_round_robin_across_tenants_and_fifo_within() {
        let mut q =
            AdmissionQueue::new(vec![TenantSpec::new("a", 10), TenantSpec::new("b", 10)]).unwrap();
        for id in 0..4 {
            q.offer(request(id, 0, id as f64 * 0.01)).unwrap();
        }
        for id in 4..6 {
            q.offer(request(id, 1, id as f64 * 0.01)).unwrap();
        }
        let round = q.drain_round(1.0, 4);
        let ids: Vec<u64> = round.iter().map(|r| r.id).collect();
        // Alternating tenants, each FIFO: a0, b4, a1, b5.
        assert_eq!(ids, vec![0, 4, 1, 5]);
        // The cursor persists: the next round starts where this one stopped.
        let ids: Vec<u64> = q.drain_round(1.0, 4).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn deadline_expired_requests_are_dropped_at_dispatch() {
        let mut q =
            AdmissionQueue::new(vec![TenantSpec::new("rt", 10).with_deadline(0.5)]).unwrap();
        q.offer(request(0, 0, 0.0)).unwrap();
        q.offer(request(1, 0, 0.4)).unwrap();
        // At t=0.7 the first request (deadline 0.5) has expired; the second
        // has not.
        let round = q.drain_round(0.7, 4);
        assert_eq!(round.len(), 1);
        assert_eq!(round[0].id, 1);
        let c = q.counters()[0];
        assert_eq!(c.shed_deadline, 1);
        assert_eq!(c.dispatched, 1);
        assert_eq!(c.admitted, c.shed() + c.dispatched);
    }

    #[test]
    fn zero_capacity_tenant_sheds_everything() {
        let mut q = AdmissionQueue::new(vec![TenantSpec::new("blocked", 0)]).unwrap();
        for id in 0..5 {
            assert_eq!(
                q.offer(request(id, 0, id as f64)).unwrap(),
                AdmissionVerdict::ShedOverflow
            );
        }
        assert_eq!(q.queued(), 0);
        assert!(q.drain_round(10.0, 8).is_empty());
        let c = q.counters()[0];
        assert_eq!(c.admitted, 5);
        assert_eq!(c.shed_overflow, 5);
        assert_eq!(c.dispatched, 0);
    }

    #[test]
    fn empty_tenant_list_is_rejected() {
        assert!(AdmissionQueue::new(vec![]).is_err());
    }
}
