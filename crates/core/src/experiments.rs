//! Experiment harness: one function per table / figure of the paper's
//! evaluation section. The `edvit-bench` binaries are thin wrappers that call
//! these functions and print the rows.
//!
//! Every accuracy-bearing experiment runs at the trainable (CPU) scale on the
//! synthetic datasets and is averaged over `trials` seeds, mirroring the
//! paper's five-trial averages; latency / memory / FLOPs numbers come from
//! the paper-scale analytic cost model and the calibrated Raspberry-Pi
//! profile, so they are deterministic.

use edvit_baselines::{BaselineKind, SplitBaselineConfig, SplitBaselineRunner};
use edvit_datasets::{DatasetKind, SyntheticConfig, SyntheticGenerator};
use edvit_edge::{wire as edge_wire, NetworkConfig, PayloadCodec};
use edvit_parallel::ParallelPool;
use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlanner};
use edvit_tensor::stats;
use edvit_vit::{analysis, training::TrainConfig, ViTConfig, ViTVariant};

use crate::pipeline::{EdVitConfig, EdVitPipeline};
use crate::{EdVitError, Result};

/// Device counts used throughout the paper's figures.
pub const PAPER_DEVICE_COUNTS: [usize; 5] = [1, 2, 3, 5, 10];

/// Controls how heavy the accuracy experiments are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Number of independent trials (the paper uses 5).
    pub trials: usize,
    /// Fast mode shrinks datasets and training schedules so a full sweep
    /// finishes in seconds; full mode uses the experiment-grade settings.
    pub fast: bool,
}

impl ExperimentOptions {
    /// Fast single-trial options (used by tests and smoke runs).
    pub fn fast() -> Self {
        ExperimentOptions {
            trials: 1,
            fast: true,
        }
    }

    /// Paper-style options: five trials at experiment scale.
    pub fn full() -> Self {
        ExperimentOptions {
            trials: 5,
            fast: false,
        }
    }
}

fn pipeline_config(
    kind: DatasetKind,
    variant: ViTVariant,
    devices: usize,
    options: &ExperimentOptions,
    seed: u64,
) -> EdVitConfig {
    let mut config = if options.fast {
        let mut c = EdVitConfig::tiny_demo(devices);
        c.dataset_kind = kind;
        c.synthetic = SyntheticConfig {
            class_limit: Some(kind.num_classes().min(10)),
            samples_per_class: 6,
            ..SyntheticConfig::tiny(kind)
        };
        c.paper_model = ViTConfig::from_variant(variant, kind.num_classes().min(10))
            .with_channels(kind.channels());
        c.planner.memory_budget_bytes = match variant {
            ViTVariant::Small => 50_000_000,
            ViTVariant::Large => 600_000_000,
            _ => 180_000_000,
        };
        c.devices = DeviceSpec::raspberry_pi_cluster(devices);
        c
    } else {
        EdVitConfig::experiment(kind, variant, devices)
    };
    config = config.with_seed(seed);
    config
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One row of Table I: characteristics of a standard ViT on a Raspberry Pi 4B.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model variant name.
    pub model: String,
    /// Transformer depth.
    pub depth: usize,
    /// Embedding width.
    pub width: usize,
    /// Attention heads.
    pub heads: usize,
    /// Parameters in millions.
    pub params_millions: f64,
    /// FLOPs (MACs) in units of 10⁹.
    pub gflops: f64,
    /// Estimated single-sample latency on a Raspberry Pi 4B, in milliseconds.
    pub latency_ms: f64,
    /// Parameter memory in MB.
    pub memory_mb: f64,
}

/// Regenerates Table I from the analytic cost model and the calibrated
/// Raspberry-Pi profile.
pub fn table1() -> Vec<Table1Row> {
    let device = DeviceSpec::raspberry_pi_4b(0);
    [
        ViTConfig::vit_small(1000),
        ViTConfig::vit_base(1000),
        ViTConfig::vit_large(1000),
    ]
    .into_iter()
    .map(|config| {
        let cost = analysis::cost_of_config(&config);
        Table1Row {
            model: config.variant.to_string(),
            depth: config.depth,
            width: config.embed_dim,
            heads: config.heads,
            params_millions: cost.params_millions(),
            gflops: cost.gflops(),
            latency_ms: device.execution_seconds(cost.flops) * 1e3,
            memory_mb: cost.memory_mb(),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Figures 4, 5 and 6: accuracy / latency / memory vs. number of devices
// ---------------------------------------------------------------------------

/// One point of the split curves (one dataset, one variant, one device count).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitCurvePoint {
    /// Dataset name.
    pub dataset: String,
    /// Model variant name.
    pub variant: String,
    /// Number of edge devices.
    pub devices: usize,
    /// Mean fused accuracy across trials.
    pub accuracy_mean: f32,
    /// Sample standard deviation of the accuracy across trials.
    pub accuracy_std: f32,
    /// Paper-scale end-to-end latency per sample (seconds).
    pub latency_seconds: f64,
    /// Paper-scale latency of the original, unsplit model (seconds).
    pub original_latency_seconds: f64,
    /// Paper-scale total sub-model memory (MB).
    pub total_memory_mb: f64,
}

/// Runs the split sweep for one dataset and variant over `device_counts`,
/// producing one curve point per device count (the building block of
/// Figs. 4, 5 and 6).
///
/// # Errors
///
/// Propagates pipeline failures (e.g. infeasible memory budgets).
pub fn split_curve(
    kind: DatasetKind,
    variant: ViTVariant,
    device_counts: &[usize],
    options: &ExperimentOptions,
) -> Result<Vec<SplitCurvePoint>> {
    let mut points = Vec::with_capacity(device_counts.len());
    for &devices in device_counts {
        // Trials are fully independent (each gets its own seed), so they run
        // across the thread pool; inner kernels then stay sequential.
        let trials = options.trials.max(1);
        let pool = ParallelPool::global();
        let run_trial = |trial: usize| {
            let config = pipeline_config(kind, variant, devices, options, trial as u64 + 1);
            EdVitPipeline::new(config).run()
        };
        let deployments: Vec<_> = if trials > 1 && !pool.is_sequential() {
            pool.map_indexed(trials, run_trial)
        } else {
            (0..trials).map(run_trial).collect()
        };
        let mut accuracies = Vec::with_capacity(trials);
        let mut latency = 0.0;
        let mut original_latency = 0.0;
        let mut memory = 0.0;
        for deployment in deployments {
            let deployment = deployment?;
            accuracies.push(deployment.metrics.fused_accuracy);
            latency = deployment.metrics.latency_seconds;
            original_latency = deployment.metrics.original_latency_seconds;
            memory = deployment.metrics.total_memory_mb;
        }
        let (mean, std) = stats::mean_std(&accuracies);
        points.push(SplitCurvePoint {
            dataset: kind.paper_name().to_string(),
            variant: variant.to_string(),
            devices,
            accuracy_mean: mean,
            accuracy_std: std,
            latency_seconds: latency,
            original_latency_seconds: original_latency,
            total_memory_mb: memory,
        });
    }
    Ok(points)
}

/// Fig. 4: ViT-Base on the three vision datasets.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig4(device_counts: &[usize], options: &ExperimentOptions) -> Result<Vec<SplitCurvePoint>> {
    let mut rows = Vec::new();
    for kind in DatasetKind::vision() {
        rows.extend(split_curve(kind, ViTVariant::Base, device_counts, options)?);
    }
    Ok(rows)
}

/// Fig. 5: ViT-Base on the two audio datasets.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig5(device_counts: &[usize], options: &ExperimentOptions) -> Result<Vec<SplitCurvePoint>> {
    let mut rows = Vec::new();
    for kind in DatasetKind::audio() {
        rows.extend(split_curve(kind, ViTVariant::Base, device_counts, options)?);
    }
    Ok(rows)
}

/// Fig. 6: ViT-Small and ViT-Large on CIFAR-10 and Caltech256.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig6(device_counts: &[usize], options: &ExperimentOptions) -> Result<Vec<SplitCurvePoint>> {
    let mut rows = Vec::new();
    for variant in [ViTVariant::Small, ViTVariant::Large] {
        for kind in [DatasetKind::Cifar10Like, DatasetKind::Caltech256Like] {
            rows.extend(split_curve(kind, variant, device_counts, options)?);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Table II and §V-D: FLOPs and communication overhead
// ---------------------------------------------------------------------------

/// One row of Table II: per-sub-model FLOPs for a dataset and device count.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Number of devices (`None` means the original unsplit model).
    pub devices: Option<usize>,
    /// Per-sub-model FLOPs in units of 10⁹.
    pub gflops: f64,
}

/// Regenerates Table II (ViT-Base sub-model FLOPs on CIFAR-10 and GTZAN for
/// 2/3/5/10 devices) from the planner and the analytic cost model.
///
/// # Errors
///
/// Propagates planner failures.
pub fn table2() -> Result<Vec<Table2Row>> {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Cifar10Like, DatasetKind::GtzanLike] {
        let base = ViTConfig::vit_base(kind.num_classes().min(10)).with_channels(kind.channels());
        let original = analysis::cost_of_config(&base);
        rows.push(Table2Row {
            dataset: kind.paper_name().to_string(),
            devices: None,
            gflops: original.gflops(),
        });
        for devices in [2usize, 3, 5, 10] {
            let planner = SplitPlanner::new(PlannerConfig::default());
            let plan = planner.plan(&base, &DeviceSpec::raspberry_pi_cluster(devices), 1)?;
            let max_flops = plan.max_sub_model_flops();
            rows.push(Table2Row {
                dataset: kind.paper_name().to_string(),
                devices: Some(devices),
                gflops: max_flops as f64 / 1e9,
            });
        }
    }
    Ok(rows)
}

/// Samples per batched wire frame used for the amortized column of
/// [`comm_overhead`] (one frame per device per round of this many samples).
pub const COMM_BATCH_SAMPLES: usize = 8;

/// One row of the communication-overhead analysis of §V-D.
#[derive(Debug, Clone, PartialEq)]
pub struct CommRow {
    /// Number of devices.
    pub devices: usize,
    /// Feature payload per sub-model in bytes.
    pub payload_bytes: u64,
    /// Encoded wire-v2 frame bytes for a single-sample round (payload plus
    /// versioned header, sample index and checksum).
    pub frame_bytes: u64,
    /// Transfer time of that payload at the paper's 2 Mbps cap, milliseconds.
    pub transfer_ms: f64,
    /// Per-sample transfer time when [`COMM_BATCH_SAMPLES`] samples share one
    /// batched frame, milliseconds.
    pub batched_ms_per_sample: f64,
    /// Reduction factor versus shipping the raw 224×224×3 image.
    pub reduction_vs_raw_image: f64,
}

/// Regenerates the communication-overhead numbers of §V-D.
///
/// # Errors
///
/// Propagates planner failures.
pub fn comm_overhead() -> Result<Vec<CommRow>> {
    let base = ViTConfig::vit_base(10);
    let raw = analysis::raw_image_bytes(&base) as f64;
    let network = NetworkConfig::paper_default();
    let mut rows = Vec::new();
    for devices in PAPER_DEVICE_COUNTS {
        let planner = SplitPlanner::new(PlannerConfig::default());
        let plan = planner.plan(&base, &DeviceSpec::raspberry_pi_cluster(devices), 1)?;
        let widest = plan
            .sub_models
            .iter()
            .max_by_key(|s| analysis::feature_payload_bytes(&s.pruned));
        let payload = widest.map_or(0, |s| analysis::feature_payload_bytes(&s.pruned));
        let feature_dim = widest.map_or(0, |s| s.pruned.feature_dim());
        let frame = edge_wire::batch_frame_len(1, feature_dim) as u64;
        let batched_frame = edge_wire::batch_frame_len(COMM_BATCH_SAMPLES, feature_dim) as u64;
        rows.push(CommRow {
            devices,
            payload_bytes: payload,
            frame_bytes: frame,
            transfer_ms: network.transfer_seconds(payload) * 1e3,
            batched_ms_per_sample: network
                .amortized_transfer_seconds(batched_frame, COMM_BATCH_SAMPLES)
                * 1e3,
            reduction_vs_raw_image: raw / payload.max(1) as f64,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Table III and Fig. 7: comparison against Split-CNN and Split-SNN
// ---------------------------------------------------------------------------

/// One row of the method comparison (Table III / Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Method name ("Split-CNN", "Split-SNN", "ED-ViT").
    pub method: String,
    /// Number of devices.
    pub devices: usize,
    /// Mean accuracy across trials.
    pub accuracy_mean: f32,
    /// Standard deviation of the accuracy across trials.
    pub accuracy_std: f32,
    /// Paper-scale per-sample latency in seconds.
    pub latency_seconds: f64,
    /// Paper-scale total memory in MB.
    pub total_memory_mb: f64,
}

fn baseline_datasets(
    options: &ExperimentOptions,
    seed: u64,
) -> Result<(edvit_datasets::Dataset, edvit_datasets::Dataset)> {
    let mut cfg = if options.fast {
        SyntheticConfig {
            class_limit: Some(10),
            samples_per_class: 6,
            ..SyntheticConfig::tiny(DatasetKind::Cifar10Like)
        }
    } else {
        SyntheticConfig::experiment(DatasetKind::Cifar10Like)
    };
    cfg.class_limit = Some(10);
    let dataset = SyntheticGenerator::new(seed).generate(&cfg)?;
    Ok(dataset.split(0.75, seed ^ 0xBB)?)
}

/// Runs the three-way comparison of Table III on the CIFAR-10-like dataset
/// for the given device counts.
///
/// # Errors
///
/// Propagates pipeline and baseline failures.
pub fn table3(device_counts: &[usize], options: &ExperimentOptions) -> Result<Vec<ComparisonRow>> {
    let mut rows = Vec::new();
    for &devices in device_counts {
        // ED-ViT.
        let ed_points = split_curve(
            DatasetKind::Cifar10Like,
            ViTVariant::Base,
            &[devices],
            options,
        )?;
        let ed = &ed_points[0];
        rows.push(ComparisonRow {
            method: "ED-ViT".to_string(),
            devices,
            accuracy_mean: ed.accuracy_mean,
            accuracy_std: ed.accuracy_std,
            latency_seconds: ed.latency_seconds,
            total_memory_mb: ed.total_memory_mb,
        });
        // Baselines.
        for kind in [BaselineKind::SplitCnn, BaselineKind::SplitSnn] {
            let mut accs = Vec::with_capacity(options.trials);
            let mut latency = 0.0;
            let mut memory = 0.0;
            for trial in 0..options.trials.max(1) {
                let (train, test) = baseline_datasets(options, trial as u64 + 11)?;
                let runner = SplitBaselineRunner::new(SplitBaselineConfig {
                    n_devices: devices,
                    train: TrainConfig {
                        epochs: if options.fast { 3 } else { 8 },
                        batch_size: 16,
                        learning_rate: 3e-3,
                        lr_decay: 0.92,
                        seed: trial as u64,
                    },
                    fusion_steps: if options.fast { 60 } else { 200 },
                    other_fraction: 0.3,
                    seed: trial as u64 + 5,
                });
                let result = runner.run(&train, &test, kind)?;
                accs.push(result.accuracy);
                latency = result.latency_seconds;
                memory = result.total_memory_mb;
            }
            let (mean, std) = stats::mean_std(&accs);
            rows.push(ComparisonRow {
                method: kind.to_string(),
                devices,
                accuracy_mean: mean,
                accuracy_std: std,
                latency_seconds: latency,
                total_memory_mb: memory,
            });
        }
    }
    Ok(rows)
}

/// Fig. 7: the same comparison at 10 edge devices.
///
/// # Errors
///
/// Propagates pipeline and baseline failures.
pub fn fig7(options: &ExperimentOptions) -> Result<Vec<ComparisonRow>> {
    table3(&[10], options)
}

// ---------------------------------------------------------------------------
// Table IV: retraining ablation
// ---------------------------------------------------------------------------

/// One row of the retraining ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Ablation variant ("ED-ViT", "(w/o) retrain", "(w/) entire retrain").
    pub method: String,
    /// Number of devices.
    pub devices: usize,
    /// Fused test accuracy.
    pub accuracy: f32,
}

/// Regenerates Table IV: ED-ViT vs. softmax averaging vs. joint retraining,
/// on the CIFAR-10-like dataset with ViT-Base.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn table4(device_counts: &[usize], options: &ExperimentOptions) -> Result<Vec<Table4Row>> {
    let mut rows = Vec::new();
    for &devices in device_counts {
        let mut config = pipeline_config(
            DatasetKind::Cifar10Like,
            ViTVariant::Base,
            devices,
            options,
            7,
        );
        config.joint_retrain_epochs = if options.fast { 1 } else { 3 };
        let deployment = EdVitPipeline::new(config).run()?;
        rows.push(Table4Row {
            method: "ED-ViT".to_string(),
            devices,
            accuracy: deployment.metrics.fused_accuracy,
        });
        rows.push(Table4Row {
            method: "(w/o) retrain".to_string(),
            devices,
            accuracy: deployment.metrics.averaged_accuracy,
        });
        rows.push(Table4Row {
            method: "(w/) entire retrain".to_string(),
            devices,
            accuracy: deployment
                .metrics
                .joint_retrain_accuracy
                .unwrap_or(deployment.metrics.fused_accuracy),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Streaming / failure-injection scenario (beyond the paper: the ROADMAP's
// long-running serving runtime)
// ---------------------------------------------------------------------------

/// One streaming scenario's outcome: barrier vs pipelined throughput, and —
/// when a death is injected — the failover accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRow {
    /// Scenario name ("barrier", "pipelined", "pipelined + device death").
    pub scenario: String,
    /// Devices at the start of the stream.
    pub devices: usize,
    /// Samples per round.
    pub round_size: usize,
    /// Samples streamed (each fused exactly once).
    pub samples: usize,
    /// Steady-state throughput on the simulated clock.
    pub steady_state_samples_per_second: f64,
    /// Virtual end-to-end seconds of the whole stream.
    pub simulated_total_seconds: f64,
    /// Devices lost mid-stream.
    pub devices_lost: usize,
    /// Repartitions performed.
    pub repartitions: usize,
    /// Virtual seconds from death to recovered service (0 when healthy).
    pub recovery_seconds: f64,
    /// Samples recomputed because they were in flight at a death.
    pub samples_replayed: usize,
}

/// Runs the streaming scenario on a 4-device cluster: a barrier stream, a
/// pipelined stream, and a pipelined stream in which one device is killed
/// mid-stream and the survivors take over. Each stream fuses every sample
/// exactly once; the pipelined steady-state throughput exceeds the barrier
/// throughput by construction of the two-stage pipeline.
///
/// # Errors
///
/// Propagates pipeline/scheduler failures.
pub fn streaming_comparison(options: &ExperimentOptions) -> Result<Vec<StreamRow>> {
    use crate::streaming::run_streaming;
    use edvit_sched::{ScheduleMode, StreamConfig};

    let devices = 4usize;
    let (samples_wanted, round_size) = if options.fast { (8, 2) } else { (32, 4) };
    let mut rows = Vec::new();
    let scenarios: [(&str, ScheduleMode, bool); 3] = [
        ("barrier", ScheduleMode::Barrier, false),
        ("pipelined", ScheduleMode::Pipelined, false),
        ("pipelined + device death", ScheduleMode::Pipelined, true),
    ];
    // Train once; each scenario streams through a clone of the deployment
    // (a run moves the sub-models onto its device threads).
    let config = pipeline_config(
        DatasetKind::Cifar10Like,
        ViTVariant::Base,
        devices,
        options,
        11,
    );
    let device_specs = config.devices.clone();
    let trained = EdVitPipeline::new(config).run()?;
    let test = trained.test_set.clone();
    let n = test.len().min(samples_wanted);
    let inputs: Vec<_> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<std::result::Result<_, _>>()
        .map_err(EdVitError::from)?;
    for (name, mode, inject_death) in scenarios {
        let deployment = trained.clone();
        let mut stream_config = StreamConfig {
            round_size,
            mode,
            ..StreamConfig::default()
        };
        if inject_death {
            // Kill the device hosting sub-model 0 just after the stream warms
            // up, so the failover path (detection → re-plan → replay) runs.
            let victim = deployment
                .plan
                .assignment
                .device_for(0)
                .expect("sub-model 0 must have an assigned device to kill");
            stream_config = stream_config.with_failure(victim, 1);
        }
        let report = run_streaming(deployment, &inputs, device_specs.clone(), stream_config)?;
        rows.push(StreamRow {
            scenario: name.to_string(),
            devices,
            round_size,
            samples: report.outputs.len(),
            steady_state_samples_per_second: report.steady_state_samples_per_second,
            simulated_total_seconds: report.simulated_total_seconds,
            devices_lost: report.devices_lost.len(),
            repartitions: report.repartitions,
            recovery_seconds: report.recovery_seconds,
            samples_replayed: report.samples_replayed,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Serving front-door scenario (beyond the paper: multi-tenant continuous
// batching over the streaming runtime)
// ---------------------------------------------------------------------------

/// One serving scenario's outcome: admission accounting, latency
/// percentiles and batching behaviour under a seeded open-loop arrival
/// process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRow {
    /// Scenario name ("barrier per request", "continuous", ...).
    pub scenario: String,
    /// Tenants offering load.
    pub tenants: usize,
    /// Open-loop offered load, arrivals per virtual second.
    pub offered_rate_per_second: f64,
    /// Requests that arrived.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed (queue overflow + expired deadline).
    pub shed: u64,
    /// Rounds the batcher formed.
    pub rounds_formed: usize,
    /// Rounds dispatched below capacity (continuous batching never waits).
    pub partial_rounds: usize,
    /// Median round-trip latency in virtual seconds.
    pub p50_latency_seconds: f64,
    /// 99th-percentile round-trip latency in virtual seconds.
    pub p99_latency_seconds: f64,
    /// Completions per virtual second.
    pub served_samples_per_second: f64,
    /// Adaptive pipeline-depth transitions during the drill.
    pub depth_transitions: usize,
    /// Virtual seconds spent detecting a crash and re-planning.
    pub recovery_seconds: f64,
    /// Devices lost mid-drill.
    pub devices_lost: usize,
}

/// Runs the serving scenario on a 4-device cluster: a barrier-per-request
/// baseline, a continuous-batching run at the same offered load, an
/// overloaded run against tight per-tenant queue bounds, and a continuous
/// run with a mid-drill device crash. Every run is a seeded open-loop drill
/// on the virtual clock, so the rows are bit-deterministic.
///
/// # Errors
///
/// Propagates pipeline/serving failures.
pub fn serving_comparison(options: &ExperimentOptions) -> Result<Vec<ServingRow>> {
    use crate::serve::run_server;
    use edvit_serve::{ArrivalSpec, DepthController, ServeConfig, ServeScheduler, TenantSpec};

    let devices = 4usize;
    let requests = if options.fast { 24 } else { 96 };
    let config = pipeline_config(
        DatasetKind::Cifar10Like,
        ViTVariant::Base,
        devices,
        options,
        13,
    );
    let device_specs = config.devices.clone();
    let trained = EdVitPipeline::new(config).run()?;
    let test = trained.test_set.clone();
    let n = test.len().min(8);
    let inputs: Vec<_> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<std::result::Result<_, _>>()
        .map_err(EdVitError::from)?;

    // Fusion-MLP cost of roughly one sub-model's per-sample FLOPs: the
    // pipelined round interval is max(device, fusion) where the barrier
    // baseline pays device + fusion per request — the gap continuous
    // batching exploits.
    const SERVING_FUSION_FLOPS: u64 = 1_250_000_000;
    let open_tenants = || {
        vec![
            TenantSpec::new("interactive", 10_000),
            TenantSpec::new("batch", 10_000),
        ]
    };
    let base_config = |tenants: Vec<TenantSpec>, arrivals: ArrivalSpec| {
        let mut c = ServeConfig::new(tenants, arrivals);
        c.stream.fusion_flops = SERVING_FUSION_FLOPS;
        c
    };
    let capacity = ServeScheduler::new(
        trained.plan.clone(),
        device_specs.clone(),
        base_config(open_tenants(), ArrivalSpec::new(1.0, 1, 0)),
    )?
    .nominal_capacity_per_second()?;

    // Kill the device hosting sub-model 0 early in the crash scenario.
    let victim =
        trained
            .plan
            .assignment
            .device_for(0)
            .ok_or_else(|| EdVitError::InvalidConfig {
                message: "sub-model 0 must have an assigned device to kill".to_string(),
            })?;

    let sustainable = ArrivalSpec::new(0.8 * capacity, requests, 11);
    let mut pinned = base_config(open_tenants(), sustainable);
    pinned.depth = DepthController {
        min_depth: 2,
        max_depth: 2,
        backlog_rounds: usize::MAX,
    };
    let mut overloaded = base_config(
        vec![
            TenantSpec::new("interactive", 2),
            TenantSpec::new("batch", 4),
        ],
        ArrivalSpec::new(6.0 * capacity, requests, 23),
    );
    overloaded.depth = DepthController::default();
    let mut crashed = base_config(
        open_tenants(),
        ArrivalSpec::new(0.6 * capacity, requests, 17),
    );
    crashed.stream = crashed.stream.with_failure(victim, 1);

    let scenarios: Vec<(&str, ServeConfig)> = vec![
        (
            "barrier per request",
            base_config(open_tenants(), sustainable).barrier_per_request(),
        ),
        ("continuous", pinned),
        ("continuous + overload", overloaded),
        ("continuous + device death", crashed),
    ];

    let mut rows = Vec::with_capacity(scenarios.len());
    for (name, serve_config) in scenarios {
        let tenants = serve_config.tenants.len();
        let report = run_server(trained.clone(), &inputs, device_specs.clone(), serve_config)?;
        rows.push(ServingRow {
            scenario: name.to_string(),
            tenants,
            offered_rate_per_second: report.offered_rate_per_second,
            admitted: report.admitted,
            completed: report.completed,
            shed: report.shed,
            rounds_formed: report.rounds_formed,
            partial_rounds: report.partial_rounds,
            p50_latency_seconds: report.p50_latency_seconds,
            p99_latency_seconds: report.p99_latency_seconds,
            served_samples_per_second: report.served_samples_per_second,
            depth_transitions: report.depth_changes.len(),
            recovery_seconds: report.recovery_seconds,
            devices_lost: report.devices_lost.len(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Wire-codec comparison (beyond the paper: the ROADMAP's payload shrinking)
// ---------------------------------------------------------------------------

/// One wire codec's outcome on the seeded demo deployment: bytes saved on the
/// wire versus the `f32` baseline, measured encode cost, and the prediction
/// delta (which must be zero for the f16 family on this pipeline).
#[derive(Debug, Clone, PartialEq)]
pub struct CodecRow {
    /// Codec name (`f32`, `f16`, `f16+rle`).
    pub codec: PayloadCodec,
    /// Encoded bytes on the wire across the whole stream (data + control
    /// frames), from [`edvit_sched::StreamReport::bytes_on_wire`].
    pub bytes_on_wire: u64,
    /// Encoded bytes of the data frames alone — the portion the codec can
    /// shrink (control frames always ship codec 0).
    pub data_frame_bytes: u64,
    /// Fraction of the `f32` data-frame bytes this codec saved (0 for the
    /// baseline row).
    pub data_savings_vs_f32: f64,
    /// Measured wall-clock nanoseconds per feature value to encode a
    /// representative batch under this codec (informational, like every
    /// wall-clock figure in the reports).
    pub encode_ns_per_value: f64,
    /// Samples whose top-1 prediction differs from the `f32` run.
    pub predictions_changed: usize,
    /// Steady-state throughput of the stream on the simulated clock.
    pub steady_state_samples_per_second: f64,
}

/// Streams the seeded demo deployment once per [`PayloadCodec`] and compares
/// the codecs: wire bytes, encode cost and prediction drift versus the `f32`
/// baseline. The pipeline is trained once; every codec streams a clone of the
/// same deployment over the same samples, so the only difference is the wire
/// encoding.
///
/// # Errors
///
/// Propagates pipeline and scheduler failures.
pub fn codec_comparison(options: &ExperimentOptions) -> Result<Vec<CodecRow>> {
    use crate::streaming::run_streaming;
    use edvit_sched::StreamConfig;

    let devices = 2usize;
    let (samples_wanted, round_size) = if options.fast { (8, 2) } else { (32, 4) };
    let config = pipeline_config(
        DatasetKind::Cifar10Like,
        ViTVariant::Base,
        devices,
        options,
        3,
    );
    let device_specs = config.devices.clone();
    let trained = EdVitPipeline::new(config).run()?;
    let test = trained.test_set.clone();
    let n = test.len().min(samples_wanted);
    let inputs: Vec<_> = (0..n)
        .map(|i| test.images().row(i))
        .collect::<std::result::Result<_, _>>()
        .map_err(EdVitError::from)?;

    // Encode-cost probe: one round of *real* feature vectors from sub-model
    // 0, so the per-value cost — entropy-dependent for the rle codec — is
    // measured on the data the wire actually carries, not on raw images.
    let mut probe_model = trained.sub_models[0].model.clone();
    let mut probe: Option<edge_wire::FeatureBatchMessage> = None;
    for (i, sample) in inputs.iter().take(round_size).enumerate() {
        let batched = if sample.rank() == 3 {
            let mut dims = vec![1];
            dims.extend_from_slice(sample.dims());
            sample.reshape(&dims)?
        } else {
            sample.clone()
        };
        let feature = probe_model.forward_features(&batched)?.row(0)?;
        probe
            .get_or_insert_with(|| edge_wire::FeatureBatchMessage::new(0, feature.numel()))
            .push_tensor(i, &feature)?;
    }
    let probe = probe.expect("at least one streamed sample");

    let mut rows = Vec::with_capacity(PayloadCodec::ALL.len());
    let mut f32_predictions: Vec<usize> = Vec::new();
    let mut f32_data_bytes = 0u64;
    for codec in PayloadCodec::ALL {
        let deployment = trained.clone();
        let stream_config = StreamConfig {
            round_size,
            ..StreamConfig::default()
        }
        .with_options(&edvit_edge::NetOptions::default().with_codec(codec));
        let report = run_streaming(deployment, &inputs, device_specs.clone(), stream_config)?;
        let predictions = report.predictions()?;
        let control_bytes = report.control_frames as u64 * edge_wire::CONTROL_FRAME_LEN as u64;
        let data_frame_bytes = report.bytes_on_wire - control_bytes;
        if codec == PayloadCodec::F32 {
            f32_predictions = predictions.clone();
            f32_data_bytes = data_frame_bytes;
        }
        let predictions_changed = predictions
            .iter()
            .zip(&f32_predictions)
            .filter(|(a, b)| a != b)
            .count();
        // Encode cost: quantify the codec's CPU price on the probe batch.
        let values = probe.features.len().max(1);
        let reps = 64usize;
        let started = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(probe.encode_with(codec));
        }
        let encode_ns_per_value = started.elapsed().as_nanos() as f64 / (reps * values) as f64;
        rows.push(CodecRow {
            codec,
            bytes_on_wire: report.bytes_on_wire,
            data_frame_bytes,
            data_savings_vs_f32: if f32_data_bytes > 0 {
                1.0 - data_frame_bytes as f64 / f32_data_bytes as f64
            } else {
                0.0
            },
            encode_ns_per_value,
            predictions_changed,
            steady_state_samples_per_second: report.steady_state_samples_per_second,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_shape() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].model, "ViT-Small");
        assert!(rows[0].params_millions < rows[1].params_millions);
        assert!(rows[1].params_millions < rows[2].params_millions);
        assert!(rows[0].latency_ms < rows[1].latency_ms);
        assert!(rows[1].latency_ms < rows[2].latency_ms);
        // Table I values: 9 628 ms / 36 940 ms / 118 828 ms within ~15%.
        assert!((rows[1].latency_ms - 36_940.0).abs() / 36_940.0 < 0.15);
        assert!((rows[1].memory_mb - 327.0).abs() < 25.0);
    }

    #[test]
    fn table2_flops_decrease_with_devices() {
        let rows = table2().unwrap();
        assert_eq!(rows.len(), 10);
        let cifar: Vec<&Table2Row> = rows.iter().filter(|r| r.dataset == "CIFAR-10").collect();
        assert!(cifar[0].devices.is_none());
        assert!((cifar[0].gflops - 16.86).abs() < 1.0);
        for pair in cifar.windows(2) {
            assert!(pair[1].gflops < pair[0].gflops);
        }
        // 2-device sub-models land near the paper's 4.25 GFLOPs.
        assert!((cifar[1].gflops - 4.25).abs() < 0.8, "{}", cifar[1].gflops);
    }

    #[test]
    fn comm_overhead_matches_section_vd() {
        let rows = comm_overhead().unwrap();
        assert_eq!(rows.len(), PAPER_DEVICE_COUNTS.len());
        // Payloads shrink with more devices, from 1536 B (2 devices) down to
        // 512 B (10 devices); transfer stays in the milliseconds.
        let two = rows.iter().find(|r| r.devices == 2).unwrap();
        assert_eq!(two.payload_bytes, 1536);
        let ten = rows.iter().find(|r| r.devices == 10).unwrap();
        assert_eq!(ten.payload_bytes, 512);
        assert!((ten.reduction_vs_raw_image - 294.0).abs() < 1.0);
        assert!(rows.iter().all(|r| r.transfer_ms < 10.0));
        // The v2 frame adds a fixed 32 bytes of framing around the payload,
        // and batching amortizes both the framing and the per-message
        // overhead below the single-sample transfer time.
        for row in &rows {
            assert_eq!(row.frame_bytes, row.payload_bytes + 32);
            assert!(
                row.batched_ms_per_sample < row.transfer_ms,
                "batched {} !< single {}",
                row.batched_ms_per_sample,
                row.transfer_ms
            );
        }
    }

    #[test]
    fn fast_split_curve_has_expected_shape() {
        let options = ExperimentOptions::fast();
        let points = split_curve(
            DatasetKind::Cifar10Like,
            ViTVariant::Base,
            &[2, 5],
            &options,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[0].latency_seconds > points[1].latency_seconds);
        assert!(points
            .iter()
            .all(|p| p.total_memory_mb <= 180.0 && p.total_memory_mb > 0.0));
        assert!(points
            .iter()
            .all(|p| p.original_latency_seconds > p.latency_seconds));
        assert!(points.iter().all(|p| p.accuracy_mean >= 0.0));
    }

    #[test]
    fn streaming_comparison_pipelines_and_fails_over() {
        let rows = streaming_comparison(&ExperimentOptions::fast()).unwrap();
        assert_eq!(rows.len(), 3);
        let barrier = &rows[0];
        let pipelined = &rows[1];
        let chaos = &rows[2];
        assert_eq!(barrier.scenario, "barrier");
        assert!(
            pipelined.steady_state_samples_per_second > barrier.steady_state_samples_per_second
        );
        assert!(pipelined.simulated_total_seconds < barrier.simulated_total_seconds);
        assert_eq!(pipelined.devices_lost, 0);
        assert_eq!(chaos.devices_lost, 1);
        assert_eq!(chaos.repartitions, 1);
        assert!(chaos.recovery_seconds > 0.0);
        // Every scenario fused the full stream exactly once.
        assert!(rows.iter().all(|r| r.samples == barrier.samples));
    }

    #[test]
    fn serving_comparison_batches_sheds_and_recovers() {
        let rows = serving_comparison(&ExperimentOptions::fast()).unwrap();
        assert_eq!(rows.len(), 4);
        let barrier = &rows[0];
        let continuous = &rows[1];
        let overload = &rows[2];
        let crash = &rows[3];
        assert_eq!(barrier.scenario, "barrier per request");
        // Same seeded arrivals: continuous batching wins the tail.
        assert_eq!(barrier.admitted, continuous.admitted);
        assert!(continuous.p99_latency_seconds < barrier.p99_latency_seconds);
        assert!(continuous.served_samples_per_second > barrier.served_samples_per_second);
        assert!(barrier.rounds_formed > continuous.rounds_formed);
        // Overload sheds against the tight bounds but loses nothing.
        assert!(overload.shed > 0);
        // The crash shows up as recovery time, not as lost requests.
        assert_eq!(crash.devices_lost, 1);
        assert!(crash.recovery_seconds > 0.0);
        // Exactly-one-disposition accounting on every row.
        assert!(rows.iter().all(|r| r.admitted == r.completed + r.shed));
        assert!(rows
            .iter()
            .all(|r| r.p99_latency_seconds >= r.p50_latency_seconds));
    }

    #[test]
    fn codec_comparison_halves_data_bytes_without_changing_predictions() {
        let rows = codec_comparison(&ExperimentOptions::fast()).unwrap();
        assert_eq!(rows.len(), 3);
        let f32_row = &rows[0];
        let f16_row = &rows[1];
        let rle_row = &rows[2];
        assert_eq!(f32_row.codec, PayloadCodec::F32);
        assert_eq!(f16_row.codec, PayloadCodec::F16);
        assert_eq!(rle_row.codec, PayloadCodec::F16Rle);
        assert_eq!(f32_row.predictions_changed, 0);
        // f16 must not flip a single top-1 prediction on the seeded demo
        // pipeline, and rle is lossless on top of f16.
        assert_eq!(f16_row.predictions_changed, 0);
        assert_eq!(rle_row.predictions_changed, 0);
        // f16 halves the value bytes exactly; on the tiny demo's small
        // feature dims the fixed framing (headers + sample indices) keeps the
        // whole-frame saving below the asymptotic 50%.
        assert!(
            f16_row.data_savings_vs_f32 > 0.33,
            "f16 saved only {:.1}% of the data-frame bytes",
            f16_row.data_savings_vs_f32 * 100.0
        );
        assert!(f16_row.bytes_on_wire < f32_row.bytes_on_wire);
        assert!(rle_row.bytes_on_wire < f32_row.bytes_on_wire);
        assert!(rows.iter().all(|r| r.encode_ns_per_value >= 0.0));
        assert!(rows.iter().all(|r| r.steady_state_samples_per_second > 0.0));
    }

    #[test]
    fn options_constructors() {
        assert!(ExperimentOptions::fast().fast);
        assert_eq!(ExperimentOptions::full().trials, 5);
    }

    #[test]
    fn table4_fast_has_three_methods() {
        let rows = table4(&[2], &ExperimentOptions::fast()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.method == "ED-ViT"));
        assert!(rows.iter().any(|r| r.method.contains("entire retrain")));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
    }
}
