//! The end-to-end ED-ViT pipeline (Fig. 1): model training → splitting →
//! pruning → assignment → fusion → evaluation.

use std::time::Instant;

use edvit_datasets::{Dataset, DatasetKind, SyntheticConfig, SyntheticGenerator};
use edvit_edge::{wire as edge_wire, LatencyModel, NetworkConfig};
use edvit_fusion::{average_softmax_fusion, FusionConfig, FusionMlp};
use edvit_nn::{Adam, CrossEntropyLoss, Layer, Optimizer};
use edvit_parallel::ParallelPool;
use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit_pruning::{ImportanceMethod, PrunedSubModel, PrunerConfig, StructuredPruner};
use edvit_tensor::{init::TensorRng, stats, Tensor};
use edvit_vit::{
    analysis,
    training::{evaluate_classifier, train_classifier, TrainConfig},
    PrunedViTConfig, ScaleProfile, ViTConfig, ViTVariant, VisionTransformer,
};

use crate::{EdVitError, Result};

/// Full configuration of one ED-ViT experiment trial.
#[derive(Debug, Clone)]
pub struct EdVitConfig {
    /// Which dataset family to generate.
    pub dataset_kind: DatasetKind,
    /// Synthetic dataset generation parameters.
    pub synthetic: SyntheticConfig,
    /// Paper-scale model whose costs drive latency/memory numbers.
    pub paper_model: ViTConfig,
    /// How the paper-scale model is shrunk for actual CPU training.
    pub scale_profile: ScaleProfile,
    /// Edge devices available for sub-models.
    pub devices: Vec<DeviceSpec>,
    /// Splitting planner settings (memory budget, samples per round).
    pub planner: PlannerConfig,
    /// Structured pruner settings (importance criterion, retraining).
    pub pruner: PrunerConfig,
    /// Training settings for the original (unsplit) model.
    pub original_training: TrainConfig,
    /// Number of optimizer steps used to train the fusion MLP.
    pub fusion_steps: usize,
    /// Optional joint retraining epochs of sub-models + fusion MLP (the
    /// "(w/) entire retrain" row of Table IV); 0 disables it.
    pub joint_retrain_epochs: usize,
    /// Network model between devices.
    pub network: NetworkConfig,
    /// Fraction of samples used for training (stratified split).
    pub train_fraction: f32,
    /// Trial seed; the paper averages over five trials with different seeds.
    pub seed: u64,
}

impl EdVitConfig {
    /// A full-featured experiment configuration for the given dataset, paper
    /// model variant and device count.
    pub fn experiment(kind: DatasetKind, variant: ViTVariant, num_devices: usize) -> Self {
        let num_classes = kind.num_classes().min(10);
        let mut synthetic = SyntheticConfig::experiment(kind);
        synthetic.class_limit = Some(num_classes);
        let paper_model =
            ViTConfig::from_variant(variant, num_classes).with_channels(kind.channels());
        let memory_budget = match variant {
            ViTVariant::Small => 50_000_000,
            ViTVariant::Large => 600_000_000,
            _ => 180_000_000,
        };
        EdVitConfig {
            dataset_kind: kind,
            synthetic,
            paper_model,
            scale_profile: ScaleProfile::default(),
            devices: DeviceSpec::raspberry_pi_cluster(num_devices),
            planner: PlannerConfig {
                memory_budget_bytes: memory_budget,
                ..PlannerConfig::default()
            },
            pruner: PrunerConfig {
                method: ImportanceMethod::Magnitude,
                other_fraction: 0.3,
                retrain: Some(TrainConfig {
                    epochs: 5,
                    batch_size: 16,
                    learning_rate: 2e-3,
                    lr_decay: 0.92,
                    seed: 0,
                }),
                seed: 0,
            },
            original_training: TrainConfig {
                epochs: 8,
                batch_size: 16,
                learning_rate: 2e-3,
                lr_decay: 0.92,
                seed: 0,
            },
            fusion_steps: 200,
            joint_retrain_epochs: 0,
            network: NetworkConfig::paper_default(),
            train_fraction: 0.75,
            seed: 0,
        }
    }

    /// A configuration small enough for doctests and unit tests: a tiny ViT,
    /// a tiny dataset and very short training.
    pub fn tiny_demo(num_devices: usize) -> Self {
        let mut config = Self::experiment(DatasetKind::Cifar10Like, ViTVariant::Base, num_devices);
        config.synthetic = SyntheticConfig {
            class_limit: Some(4),
            samples_per_class: 8,
            ..SyntheticConfig::tiny(DatasetKind::Cifar10Like)
        };
        config.paper_model = ViTConfig::vit_base(4);
        config.scale_profile = ScaleProfile {
            image_size: 16,
            patch_size: 8,
            max_embed_dim: 32,
            max_depth: 2,
        };
        config.original_training.epochs = 2;
        config.pruner.retrain = Some(TrainConfig {
            epochs: 1,
            batch_size: 8,
            learning_rate: 2e-3,
            lr_decay: 0.9,
            seed: 0,
        });
        config.fusion_steps = 40;
        config
    }

    /// Sets the trial seed (also reseeds the sub-configurations so two trials
    /// differ in every random choice).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.original_training.seed = seed ^ 0x0816;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`EdVitError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<()> {
        if self.devices.is_empty() {
            return Err(EdVitError::InvalidConfig {
                message: "at least one edge device is required".to_string(),
            });
        }
        if self.synthetic.effective_classes() < self.devices.len() {
            return Err(EdVitError::InvalidConfig {
                message: format!(
                    "{} devices but only {} classes to distribute",
                    self.devices.len(),
                    self.synthetic.effective_classes()
                ),
            });
        }
        if !(0.0..1.0).contains(&self.train_fraction) || self.train_fraction == 0.0 {
            return Err(EdVitError::InvalidConfig {
                message: format!("train fraction {} must be in (0, 1)", self.train_fraction),
            });
        }
        self.paper_model.validate()?;
        Ok(())
    }
}

/// Accuracy, latency, memory and communication metrics of one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalMetrics {
    /// Test accuracy of the original (unsplit, trainable-scale) model.
    pub original_accuracy: f32,
    /// Test accuracy of the fused ED-ViT prediction (the headline number).
    pub fused_accuracy: f32,
    /// Test accuracy when sub-model softmax outputs are averaged instead of
    /// fused by the MLP (the "(w/o) retrain" ablation row of Table IV).
    pub averaged_accuracy: f32,
    /// Test accuracy after joint retraining of sub-models and fusion MLP
    /// (the "(w/) entire retrain" row); `None` when joint retraining is off.
    pub joint_retrain_accuracy: Option<f32>,
    /// Paper-scale total memory of all sub-models in MB.
    pub total_memory_mb: f64,
    /// Measured memory of the trainable-scale sub-models in MB.
    pub measured_memory_mb: f64,
    /// Paper-scale end-to-end latency per sample in seconds.
    pub latency_seconds: f64,
    /// Paper-scale latency of the original unsplit model on one device.
    pub original_latency_seconds: f64,
    /// Paper-scale per-sub-model FLOPs (Table II rows).
    pub per_submodel_flops: Vec<u64>,
    /// Feature payload per sub-model in bytes (§V-D).
    pub feature_payload_bytes: Vec<u64>,
    /// Encoded wire-v2 frame bytes per sub-model for a single-sample round
    /// (payload plus versioned header, sample index and checksum).
    pub frame_bytes: Vec<u64>,
    /// Worst-case per-sample communication time in seconds (§V-D), for a
    /// single-sample wire frame.
    pub communication_seconds: f64,
    /// Paper-scale throughput: samples fused per second at the estimated
    /// end-to-end latency.
    pub throughput_samples_per_second: f64,
}

/// Wall-clock timings of each pipeline stage, plus the thread count that
/// produced them — the measured (not simulated) side of a run, so kernel
/// speedups are visible directly from the demo examples.
#[derive(Debug, Clone)]
pub struct PipelineTimings {
    /// Threads available to the data-parallel kernels (the global pool size).
    pub threads: usize,
    /// `(stage name, seconds)` in execution order.
    pub stages: Vec<(&'static str, f64)>,
    /// End-to-end wall-clock seconds of [`EdVitPipeline::run`].
    pub total_seconds: f64,
}

impl PipelineTimings {
    /// Seconds spent in `stage`, or `None` if it never ran.
    pub fn stage_seconds(&self, stage: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|(_, s)| *s)
    }
}

/// A complete ED-ViT deployment: the plan, the actual sub-models, the trained
/// fusion MLP and the evaluation metrics.
#[derive(Debug, Clone)]
pub struct EdVitDeployment {
    /// The split/prune/assign plan at paper scale.
    pub plan: SplitPlan,
    /// The weight-level pruned, retrained sub-models (trainable scale).
    pub sub_models: Vec<PrunedSubModel>,
    /// The trained fusion MLP.
    pub fusion: FusionMlp,
    /// The held-out test split used for the reported accuracies.
    pub test_set: Dataset,
    /// Evaluation metrics.
    pub metrics: EvalMetrics,
    /// Measured per-stage wall time and the thread count used.
    pub timings: PipelineTimings,
}

/// The ED-ViT pipeline runner.
#[derive(Debug, Clone)]
pub struct EdVitPipeline {
    config: EdVitConfig,
}

impl EdVitPipeline {
    /// Creates a pipeline from a configuration.
    pub fn new(config: EdVitConfig) -> Self {
        EdVitPipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &EdVitConfig {
        &self.config
    }

    /// Runs the full pipeline: dataset generation, original-model training,
    /// splitting, pruning, assignment, fusion training and evaluation.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage; an infeasible memory budget
    /// surfaces as [`EdVitError::Partition`].
    pub fn run(&self) -> Result<EdVitDeployment> {
        self.config.validate()?;
        let cfg = &self.config;
        let run_started = Instant::now();
        let mut stages: Vec<(&'static str, f64)> = Vec::new();
        let mut stage_started = Instant::now();
        let mut record = |stages: &mut Vec<(&'static str, f64)>, name: &'static str| {
            stages.push((name, stage_started.elapsed().as_secs_f64()));
            stage_started = Instant::now();
        };

        // ---- Data ---------------------------------------------------------
        let dataset = SyntheticGenerator::new(cfg.seed).generate(&cfg.synthetic)?;
        let (train, test) = dataset.split(cfg.train_fraction, cfg.seed ^ 0x5917)?;
        record(&mut stages, "data");

        // ---- Original model (trainable scale) ------------------------------
        let mut paper_model = cfg.paper_model.clone();
        paper_model.num_classes = dataset.num_classes();
        paper_model.channels = dataset.channels();
        let mut trainable_config = paper_model.scaled_down(&cfg.scale_profile);
        trainable_config.image_size = train.image_size();
        trainable_config.channels = train.channels();
        trainable_config.num_classes = train.num_classes();
        trainable_config.validate()?;
        let mut rng = TensorRng::new(cfg.seed ^ 0xED17);
        let mut original = VisionTransformer::new(&trainable_config, &mut rng)?;
        train_classifier(
            &mut original,
            train.images(),
            train.labels(),
            &cfg.original_training,
        )?;
        let original_accuracy =
            evaluate_classifier(&mut original, test.images(), test.labels(), 32)?;
        record(&mut stages, "train_original");

        // ---- Splitting + assignment (paper scale) ---------------------------
        let planner = SplitPlanner::new(cfg.planner.clone());
        let plan = planner.plan(&paper_model, &cfg.devices, cfg.seed)?;
        record(&mut stages, "split_plan");

        // ---- Per-sub-model pruning + retraining (trainable scale) ----------
        let pruner = StructuredPruner::new(PrunerConfig {
            seed: cfg.seed,
            ..cfg.pruner.clone()
        });
        let mut sub_models = Vec::with_capacity(plan.sub_models.len());
        for sub_plan in &plan.sub_models {
            let trainable_plan = PrunedViTConfig::new(
                trainable_config.clone(),
                sub_plan
                    .pruned
                    .pruned_heads()
                    .min(trainable_config.heads.saturating_sub(1)),
            )?;
            let sub =
                pruner.prune_sub_model(&original, &train, &sub_plan.classes, &trainable_plan)?;
            sub_models.push(sub);
        }
        record(&mut stages, "prune_retrain");

        // ---- Fusion MLP training -------------------------------------------
        let train_features = extract_features(&mut sub_models, train.images())?;
        let test_features = extract_features(&mut sub_models, test.images())?;
        let fusion_config = FusionConfig::new(train_features.dims()[1], train.num_classes());
        let mut fusion = FusionMlp::new(&fusion_config, &mut TensorRng::new(cfg.seed ^ 0xF05))?;
        train_fusion(
            &mut fusion,
            &train_features,
            train.labels(),
            cfg.fusion_steps,
        )?;
        let fused_predictions = fusion.predict(&test_features)?;
        let fused_accuracy = stats::accuracy(&fused_predictions, test.labels());
        record(&mut stages, "fusion_train");

        // ---- "(w/o) retrain" ablation: softmax averaging --------------------
        let averaged_accuracy = averaged_softmax_accuracy(&mut sub_models, &test)?;
        record(&mut stages, "evaluate");

        // ---- "(w/) entire retrain" ablation ---------------------------------
        let joint_retrain_accuracy = if cfg.joint_retrain_epochs > 0 {
            Some(joint_retrain(
                &mut sub_models,
                &mut fusion,
                &train,
                &test,
                cfg.joint_retrain_epochs,
            )?)
        } else {
            None
        };
        if cfg.joint_retrain_epochs > 0 {
            record(&mut stages, "joint_retrain");
        }

        // ---- Paper-scale latency / memory / communication -------------------
        let paper_fusion_dim: usize = plan.sub_models.iter().map(|s| s.pruned.feature_dim()).sum();
        let paper_fusion = FusionConfig::new(paper_fusion_dim, paper_model.num_classes);
        let latency_model = LatencyModel::new(cfg.network).with_fusion_flops(paper_fusion.flops());
        let latency = latency_model.estimate(&plan, &cfg.devices)?;
        let original_cost = analysis::cost_of_config(&paper_model);
        let original_latency_seconds =
            latency_model.original_model_latency(original_cost.flops, &cfg.devices[0]);
        let feature_payload_bytes: Vec<u64> = plan
            .sub_models
            .iter()
            .map(|s| analysis::feature_payload_bytes(&s.pruned))
            .collect();
        let frame_bytes: Vec<u64> = plan
            .sub_models
            .iter()
            .map(|s| edge_wire::batch_frame_len(1, s.pruned.feature_dim()) as u64)
            .collect();
        let communication_seconds = frame_bytes
            .iter()
            .map(|&b| cfg.network.transfer_seconds(b))
            .fold(0.0, f64::max);
        let throughput_samples_per_second = if latency.total_seconds > 0.0 {
            1.0 / latency.total_seconds
        } else {
            f64::INFINITY
        };
        let measured_memory_mb = sub_models
            .iter()
            .map(|s| s.memory_bytes() as f64 / 1e6)
            .sum::<f64>()
            + fusion.memory_bytes() as f64 / 1e6;

        let metrics = EvalMetrics {
            original_accuracy,
            fused_accuracy,
            averaged_accuracy,
            joint_retrain_accuracy,
            total_memory_mb: plan.total_memory_mb(),
            measured_memory_mb,
            latency_seconds: latency.total_seconds,
            original_latency_seconds,
            per_submodel_flops: plan.sub_models.iter().map(|s| s.cost.flops).collect(),
            feature_payload_bytes,
            frame_bytes,
            communication_seconds,
            throughput_samples_per_second,
        };

        let timings = PipelineTimings {
            threads: ParallelPool::global().threads(),
            stages,
            total_seconds: run_started.elapsed().as_secs_f64(),
        };

        Ok(EdVitDeployment {
            plan,
            sub_models,
            fusion,
            test_set: test,
            metrics,
            timings,
        })
    }
}

/// Concatenated pooled features of every sub-model for a batch of images,
/// extracted in small mini-batches to bound peak memory. Sub-models are
/// independent "devices", so they run across the thread pool.
fn extract_features(sub_models: &mut [PrunedSubModel], images: &Tensor) -> Result<Tensor> {
    let per_model = run_per_sub_model(sub_models, |sub| {
        let n = images.dims()[0];
        let mut chunks = Vec::new();
        let indices: Vec<usize> = (0..n).collect();
        for batch in indices.chunks(32) {
            let x = images.gather_rows(batch)?;
            chunks.push(sub.model.forward_features(&x)?);
        }
        let refs: Vec<&Tensor> = chunks.iter().collect();
        Ok(Tensor::concat_first_axis(&refs)?)
    })?;
    let refs: Vec<&Tensor> = per_model.iter().collect();
    Ok(Tensor::concat_last_axis(&refs)?)
}

/// Runs `f` once per sub-model (in parallel when the pool allows it),
/// returning the results in sub-model order.
fn run_per_sub_model<T, F>(sub_models: &mut [PrunedSubModel], f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut PrunedSubModel) -> Result<T> + Sync,
{
    let pool = ParallelPool::global();
    if sub_models.len() <= 1 || pool.is_sequential() {
        return sub_models.iter_mut().map(f).collect();
    }
    let mut slots: Vec<(&mut PrunedSubModel, Option<Result<T>>)> =
        sub_models.iter_mut().map(|sub| (sub, None)).collect();
    pool.scope_chunks(&mut slots, 1, |_, slot| {
        let (sub, out) = &mut slot[0];
        *out = Some(f(sub));
    });
    slots
        .into_iter()
        .map(|(_, out)| out.expect("per-sub-model slot filled"))
        .collect()
}

fn train_fusion(
    fusion: &mut FusionMlp,
    features: &Tensor,
    labels: &[usize],
    steps: usize,
) -> Result<()> {
    let mut optimizer = Adam::new(5e-3);
    let mut loss_fn = CrossEntropyLoss::new();
    for _ in 0..steps {
        fusion.zero_grad();
        let logits = fusion.forward(features)?;
        loss_fn.forward(&logits, labels)?;
        let grad = loss_fn.backward()?;
        fusion.backward(&grad)?;
        optimizer.step(&mut fusion.parameters_mut())?;
    }
    Ok(())
}

/// Accuracy of the softmax-averaging fallback (no fusion MLP).
fn averaged_softmax_accuracy(sub_models: &mut [PrunedSubModel], test: &Dataset) -> Result<f32> {
    let per_model = run_per_sub_model(sub_models, |sub| {
        let logits = sub.model.forward_images(test.images())?;
        Ok((logits.softmax_last_axis()?, sub.mapping.subset.clone()))
    })?;
    let (probs, mappings): (Vec<Tensor>, Vec<Vec<usize>>) = per_model.into_iter().unzip();
    let predictions = average_softmax_fusion(&probs, &mappings, test.num_classes())?;
    Ok(stats::accuracy(&predictions, test.labels()))
}

/// Joint retraining of sub-model backbones and the fusion MLP ("entire
/// retrain" ablation). Returns the post-retraining fused test accuracy.
fn joint_retrain(
    sub_models: &mut [PrunedSubModel],
    fusion: &mut FusionMlp,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
) -> Result<f32> {
    let mut fusion_optimizer = Adam::new(2e-3);
    let mut backbone_optimizers: Vec<Adam> = sub_models.iter().map(|_| Adam::new(5e-4)).collect();
    let mut loss_fn = CrossEntropyLoss::new();
    let feature_dims: Vec<usize> = sub_models.iter().map(|s| s.model.embed_dim()).collect();

    for epoch in 0..epochs {
        for (images, labels) in train.shuffled_batches(16, epoch as u64 + 77)? {
            // Forward: per-sub-model features, concatenated.
            let mut features = Vec::with_capacity(sub_models.len());
            for sub in sub_models.iter_mut() {
                features.push(sub.model.forward_features(&images)?);
            }
            let refs: Vec<&Tensor> = features.iter().collect();
            let concat = Tensor::concat_last_axis(&refs)?;
            fusion.zero_grad();
            let logits = fusion.forward(&concat)?;
            loss_fn.forward(&logits, &labels)?;
            let grad_logits = loss_fn.backward()?;
            let grad_concat = fusion.backward(&grad_logits)?;
            fusion_optimizer.step(&mut fusion.parameters_mut())?;
            // Split the concatenated gradient back per sub-model and
            // backpropagate into each backbone.
            let mut offset = 0usize;
            for (sub, optimizer) in sub_models.iter_mut().zip(backbone_optimizers.iter_mut()) {
                let dim = sub.model.embed_dim();
                let cols: Vec<usize> = (offset..offset + dim).collect();
                let grad_slice = grad_concat.select_last_axis(&cols)?;
                sub.model.zero_grad();
                sub.model.backward_from_features(&grad_slice)?;
                optimizer.step(&mut sub.model.parameters_mut())?;
                offset += dim;
            }
            debug_assert_eq!(offset, feature_dims.iter().sum::<usize>());
        }
    }
    // Evaluate the jointly-retrained stack.
    let test_features = extract_features(sub_models, test.images())?;
    let predictions = fusion.predict(&test_features)?;
    Ok(stats::accuracy(&predictions, test.labels()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_runs_end_to_end() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        assert_eq!(deployment.sub_models.len(), 2);
        assert_eq!(deployment.plan.sub_models.len(), 2);
        let m = &deployment.metrics;
        assert!(m.fused_accuracy >= 0.0 && m.fused_accuracy <= 1.0);
        assert!(m.averaged_accuracy >= 0.0);
        assert!(m.total_memory_mb > 0.0 && m.total_memory_mb <= 180.0);
        assert!(m.latency_seconds > 0.0);
        assert!(m.latency_seconds < m.original_latency_seconds);
        assert_eq!(m.per_submodel_flops.len(), 2);
        assert_eq!(m.feature_payload_bytes.len(), 2);
        assert_eq!(m.frame_bytes.len(), 2);
        // Every frame carries its payload plus v2 header + sample index.
        for (frame, payload) in m.frame_bytes.iter().zip(&m.feature_payload_bytes) {
            assert_eq!(
                *frame,
                payload + (edge_wire::V2_HEADER_LEN + edge_wire::BATCH_FIXED_LEN + 4) as u64
            );
        }
        assert!(m.communication_seconds > 0.0 && m.communication_seconds < 0.1);
        assert!(m.throughput_samples_per_second > 0.0);
        assert!((m.throughput_samples_per_second - 1.0 / m.latency_seconds).abs() < 1e-9);
        assert!(m.joint_retrain_accuracy.is_none());
        assert!(deployment.metrics.measured_memory_mb > 0.0);
        assert_eq!(deployment.test_set.num_classes(), 4);
    }

    #[test]
    fn joint_retrain_path_runs() {
        let mut config = EdVitConfig::tiny_demo(2);
        config.joint_retrain_epochs = 1;
        config.fusion_steps = 20;
        let deployment = EdVitPipeline::new(config).run().unwrap();
        let joint = deployment.metrics.joint_retrain_accuracy.unwrap();
        assert!((0.0..=1.0).contains(&joint));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut config = EdVitConfig::tiny_demo(1);
        config.devices.clear();
        assert!(EdVitPipeline::new(config).run().is_err());
        let mut config = EdVitConfig::tiny_demo(2);
        config.train_fraction = 0.0;
        assert!(config.validate().is_err());
        let mut config = EdVitConfig::tiny_demo(2);
        config.synthetic.class_limit = Some(1);
        assert!(config.validate().is_err());
    }

    #[test]
    fn with_seed_changes_training_seed() {
        let a = EdVitConfig::tiny_demo(2).with_seed(1);
        let b = EdVitConfig::tiny_demo(2).with_seed(2);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.original_training.seed, b.original_training.seed);
    }

    #[test]
    fn experiment_configs_pick_paper_budgets() {
        let small = EdVitConfig::experiment(DatasetKind::Cifar10Like, ViTVariant::Small, 3);
        assert_eq!(small.planner.memory_budget_bytes, 50_000_000);
        let base = EdVitConfig::experiment(DatasetKind::GtzanLike, ViTVariant::Base, 3);
        assert_eq!(base.planner.memory_budget_bytes, 180_000_000);
        assert_eq!(base.paper_model.channels, 1);
        let large = EdVitConfig::experiment(DatasetKind::Caltech256Like, ViTVariant::Large, 3);
        assert_eq!(large.planner.memory_budget_bytes, 600_000_000);
        assert!(large.validate().is_ok());
    }
}
