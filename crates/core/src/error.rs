use std::fmt;

use edvit_datasets::DatasetError;
use edvit_edge::EdgeError;
use edvit_nn::NnError;
use edvit_partition::PartitionError;
use edvit_pruning::PruningError;
use edvit_sched::SchedError;
use edvit_serve::ServeError;
use edvit_tensor::TensorError;
use edvit_vit::ViTError;

/// Error type of the end-to-end ED-ViT pipeline; wraps every substrate error.
#[derive(Debug, Clone, PartialEq)]
pub enum EdVitError {
    /// Tensor-level failure.
    Tensor(TensorError),
    /// Layer-level failure.
    Nn(NnError),
    /// Model-level failure.
    Vit(ViTError),
    /// Dataset generation/manipulation failure.
    Dataset(DatasetError),
    /// Pruning failure.
    Pruning(PruningError),
    /// Partitioning/assignment failure.
    Partition(PartitionError),
    /// Edge-simulation failure.
    Edge(EdgeError),
    /// Streaming-scheduler failure (pipelined rounds, failover).
    Sched(SchedError),
    /// Serving front-door failure (admission, batching, load drills).
    Serve(ServeError),
    /// Pipeline-level configuration problem.
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for EdVitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdVitError::Tensor(e) => write!(f, "tensor error: {e}"),
            EdVitError::Nn(e) => write!(f, "layer error: {e}"),
            EdVitError::Vit(e) => write!(f, "model error: {e}"),
            EdVitError::Dataset(e) => write!(f, "dataset error: {e}"),
            EdVitError::Pruning(e) => write!(f, "pruning error: {e}"),
            EdVitError::Partition(e) => write!(f, "partitioning error: {e}"),
            EdVitError::Edge(e) => write!(f, "edge simulation error: {e}"),
            EdVitError::Sched(e) => write!(f, "streaming scheduler error: {e}"),
            EdVitError::Serve(e) => write!(f, "serving error: {e}"),
            EdVitError::InvalidConfig { message } => {
                write!(f, "invalid pipeline configuration: {message}")
            }
        }
    }
}

impl std::error::Error for EdVitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdVitError::Tensor(e) => Some(e),
            EdVitError::Nn(e) => Some(e),
            EdVitError::Vit(e) => Some(e),
            EdVitError::Dataset(e) => Some(e),
            EdVitError::Pruning(e) => Some(e),
            EdVitError::Partition(e) => Some(e),
            EdVitError::Edge(e) => Some(e),
            EdVitError::Sched(e) => Some(e),
            EdVitError::Serve(e) => Some(e),
            EdVitError::InvalidConfig { .. } => None,
        }
    }
}

macro_rules! impl_from {
    ($source:ty, $variant:ident) => {
        impl From<$source> for EdVitError {
            fn from(e: $source) -> Self {
                EdVitError::$variant(e)
            }
        }
    };
}

impl_from!(TensorError, Tensor);
impl_from!(NnError, Nn);
impl_from!(ViTError, Vit);
impl_from!(DatasetError, Dataset);
impl_from!(PruningError, Pruning);
impl_from!(PartitionError, Partition);
impl_from!(EdgeError, Edge);
impl_from!(SchedError, Sched);
impl_from!(ServeError, Serve);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EdVitError = TensorError::EmptyInput { op: "x" }.into();
        assert!(matches!(e, EdVitError::Tensor(_)));
        assert!(e.to_string().contains("tensor"));
        let e: EdVitError = NnError::MissingForwardCache { layer: "l" }.into();
        assert!(matches!(e, EdVitError::Nn(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: EdVitError = ViTError::InvalidConfig {
            message: "m".into(),
        }
        .into();
        assert!(matches!(e, EdVitError::Vit(_)));
        assert!(e.to_string().contains("m"));
        let e: EdVitError = DatasetError::Empty { what: "w" }.into();
        assert!(matches!(e, EdVitError::Dataset(_)));
        assert!(e.to_string().contains("w"));
        let e: EdVitError = PruningError::InvalidRequest {
            message: "p".into(),
        }
        .into();
        assert!(matches!(e, EdVitError::Pruning(_)));
        assert!(e.to_string().contains("p"));
        let e: EdVitError = PartitionError::Infeasible { reason: "r".into() }.into();
        assert!(e.to_string().contains("r"));
        let e: EdVitError = EdgeError::Runtime {
            message: "t".into(),
        }
        .into();
        assert!(matches!(e, EdVitError::Edge(_)));
        assert!(e.to_string().contains("t"));
        let e: EdVitError = SchedError::AllDevicesLost { lost: vec![3] }.into();
        assert!(matches!(e, EdVitError::Sched(_)));
        assert!(e.to_string().contains("[3]"));
        let e: EdVitError = ServeError::AllDevicesLost { lost: vec![1] }.into();
        assert!(matches!(e, EdVitError::Serve(_)));
        assert!(e.to_string().contains("[1]"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EdVitError::InvalidConfig {
            message: "cfg".into(),
        };
        assert!(e.to_string().contains("cfg"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
