//! Bridging a trained [`crate::pipeline::EdVitDeployment`] onto the
//! multi-tenant serving front-door of `edvit-serve`: concurrent requests
//! arrive on their own clock, coalesce into continuously-batched cluster
//! rounds, and every tenant gets its own p50/p99 SLO row — instead of the
//! single pre-collected batch of [`crate::distributed`] or the fixed sample
//! stream of [`crate::streaming`].

use edvit_partition::DeviceSpec;
use edvit_serve::{ServeConfig, ServeReport, ServeScheduler};
use edvit_tensor::Tensor;

use crate::distributed::into_executors;
use crate::pipeline::EdVitDeployment;
use crate::{EdVitError, Result};

/// Runs a seeded open-loop serving drill against the deployment: generates
/// the configured arrival process, admits requests through per-tenant
/// bounded queues, forms continuously-batched rounds, executes them on the
/// streaming scheduler, and reports per-tenant latency percentiles plus the
/// fused output for every request that was not shed.
///
/// The deployment is consumed (sub-models move onto their device threads);
/// `samples` is the pool the arrival generator draws request payloads from.
///
/// # Errors
///
/// Returns an error when the sample pool is empty, the serving configuration
/// is inconsistent (no tenants, zero arrival rate, round size 0), or every
/// device crashes mid-drill.
pub fn run_server(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    devices: Vec<DeviceSpec>,
    config: ServeConfig,
) -> Result<ServeReport> {
    if samples.is_empty() {
        return Err(EdVitError::InvalidConfig {
            message: "no samples to draw serving requests from".to_string(),
        });
    }
    let plan = deployment.plan.clone();
    let (executors, fusion) = into_executors(deployment);
    let scheduler = ServeScheduler::new(plan, devices, config)?;
    Ok(scheduler.run(samples, executors, fusion)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{EdVitConfig, EdVitPipeline};
    use edvit_serve::{ArrivalSpec, TenantSpec};

    fn deployment_and_samples(
        devices: usize,
        samples: usize,
    ) -> (EdVitDeployment, Vec<Tensor>, Vec<DeviceSpec>) {
        let config = EdVitConfig::tiny_demo(devices);
        let device_specs = config.devices.clone();
        let deployment = EdVitPipeline::new(config).run().unwrap();
        let test = deployment.test_set.clone();
        let n = test.len().min(samples);
        let inputs: Vec<Tensor> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
        (deployment, inputs, device_specs)
    }

    #[test]
    fn served_deployment_fuses_every_admitted_request_once() {
        let (deployment, samples, devices) = deployment_and_samples(2, 6);
        let tenants = vec![
            TenantSpec::new("cam-north", 64),
            TenantSpec::new("cam-south", 64),
        ];
        let config = ServeConfig::new(tenants, ArrivalSpec::new(0.05, 10, 7));
        let report = run_server(deployment, &samples, devices, config).unwrap();
        assert_eq!(report.admitted, 10);
        assert_eq!(report.completed, 10);
        assert_eq!(report.shed, 0);
        assert!(report.no_lost_requests());
        assert_eq!(report.tenants.len(), 2);
        assert!(report.p99_latency_seconds >= report.p50_latency_seconds);
        // Every fused output lives in the ViT's logit space.
        let stream = report.stream.as_ref().unwrap();
        assert!(report
            .outputs
            .values()
            .all(|t| t.numel() == stream.outputs[0].numel()));
    }

    #[test]
    fn empty_sample_pool_is_rejected() {
        let (deployment, _, devices) = deployment_and_samples(2, 4);
        let config = ServeConfig::new(vec![TenantSpec::new("t", 8)], ArrivalSpec::new(1.0, 4, 1));
        assert!(matches!(
            run_server(deployment, &[], devices, config),
            Err(EdVitError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn overloaded_tenant_sheds_but_loses_nothing() {
        let (deployment, samples, devices) = deployment_and_samples(2, 6);
        let tenants = vec![TenantSpec::new("burst", 2)];
        // Arrivals far faster than the cluster's virtual service rate: the
        // bounded queue sheds the excess, and the books still balance.
        let config = ServeConfig::new(tenants, ArrivalSpec::new(50.0, 24, 3));
        let report = run_server(deployment, &samples, devices, config).unwrap();
        assert_eq!(report.admitted, 24);
        assert!(report.shed > 0);
        assert!(report.no_lost_requests());
        assert!(report.tenants[0].max_queue_depth <= 2);
    }
}
