//! Bridging a trained [`crate::pipeline::EdVitDeployment`] onto the threaded
//! cluster runtime of `edvit-edge`, so that distributed inference actually
//! executes across worker threads with serialized feature messages — the
//! software analogue of the paper's Raspberry-Pi prototype (Fig. 3).

use edvit_edge::{
    ClusterRuntime, FusionFn, NetworkConfig, PayloadCodec, RuntimeReport, SubModelFn,
};
use edvit_tensor::Tensor;

use crate::pipeline::EdVitDeployment;
use crate::{EdVitError, Result};

/// Converts a deployment into per-device executors plus a fusion executor.
///
/// The deployment is consumed: each sub-model moves onto "its" device thread
/// (exactly as weights are copied onto a physical Pi), and the fusion MLP
/// moves to the aggregation thread.
pub fn into_executors(deployment: EdVitDeployment) -> (Vec<SubModelFn>, FusionFn) {
    let EdVitDeployment {
        sub_models, fusion, ..
    } = deployment;
    let executors: Vec<SubModelFn> = sub_models
        .into_iter()
        .map(|sub| {
            let mut model = sub.model;
            let executor: SubModelFn = Box::new(move |sample: &Tensor| {
                // Accept [c, h, w] samples by adding a batch axis.
                let batched = if sample.rank() == 3 {
                    let mut dims = vec![1];
                    dims.extend_from_slice(sample.dims());
                    sample.reshape(&dims).map_err(|e| e.to_string())?
                } else {
                    sample.clone()
                };
                let features = model
                    .forward_features(&batched)
                    .map_err(|e| e.to_string())?;
                // Return the single sample's feature vector.
                features.row(0).map_err(|e| e.to_string())
            });
            executor
        })
        .collect();
    let mut fusion_model = fusion;
    let fusion_fn: FusionFn = Box::new(move |concat: &Tensor| {
        let batched = concat
            .reshape(&[1, concat.numel()])
            .map_err(|e| e.to_string())?;
        let logits = fusion_model
            .predict_logits(&batched)
            .map_err(|e| e.to_string())?;
        logits.row(0).map_err(|e| e.to_string())
    });
    (executors, fusion_fn)
}

/// Runs a batch of image samples through the deployment on the threaded
/// cluster runtime and returns the runtime report (fused logits per sample,
/// batched wire-v2 frame counts, bytes on wire and measured throughput).
///
/// # Errors
///
/// Returns an error when the runtime fails or the inputs are empty.
pub fn run_distributed(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    network: NetworkConfig,
) -> Result<RuntimeReport> {
    run_distributed_with_codec(deployment, samples, network, PayloadCodec::F32)
}

/// Like [`run_distributed`], but ships the feature batches under the given
/// wire codec — f16 halves the value bytes on the wire (and on this demo
/// pipeline does not change any top-1 prediction; see
/// `crate::experiments::codec_comparison`).
///
/// # Errors
///
/// Returns an error when the runtime fails or the inputs are empty.
pub fn run_distributed_with_codec(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    network: NetworkConfig,
    codec: PayloadCodec,
) -> Result<RuntimeReport> {
    if samples.is_empty() {
        return Err(EdVitError::InvalidConfig {
            message: "no samples to run through the cluster".to_string(),
        });
    }
    let (executors, fusion) = into_executors(deployment);
    let runtime = ClusterRuntime::new(network).with_codec(codec);
    Ok(runtime.run(samples, executors, fusion)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{EdVitConfig, EdVitPipeline};
    use edvit_tensor::stats;

    #[test]
    fn distributed_inference_matches_label_space() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        let test = deployment.test_set.clone();
        let n = test.len().min(6);
        let samples: Vec<Tensor> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
        let report = run_distributed(deployment, &samples, NetworkConfig::paper_default()).unwrap();
        assert_eq!(report.outputs.len(), n);
        // Wire v2 batches: one frame per device per round, not one per sample.
        assert_eq!(report.frames, 2);
        assert!(report.bytes_on_wire > report.payload_bytes);
        assert_eq!(report.per_device_wire_bytes.len(), 2);
        assert!(report.samples_per_second > 0.0);
        let predictions = report.predictions().unwrap();
        assert!(predictions.iter().all(|&p| p < test.num_classes()));
        // Sanity: the distributed path should not be wildly worse than chance.
        let labels: Vec<usize> = test.labels()[..n].to_vec();
        let _acc = stats::accuracy(&predictions, &labels);
    }

    #[test]
    fn empty_sample_list_is_rejected() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        assert!(run_distributed(deployment, &[], NetworkConfig::paper_default()).is_err());
    }
}
