//! Bridging a trained [`crate::pipeline::EdVitDeployment`] onto the threaded
//! cluster runtime of `edvit-edge`, so that distributed inference actually
//! executes across worker threads with serialized feature messages — the
//! software analogue of the paper's Raspberry-Pi prototype (Fig. 3).

use edvit_edge::{
    record_batch_events, ClusterRuntime, FusionFn, NetOptions, NetworkConfig, PayloadCodec,
    RuntimeReport, SubModelFn, TransportKind,
};
use edvit_metrics::MetricsSink;
use edvit_net::run_batch_over_tcp;
use edvit_tensor::Tensor;

use crate::pipeline::EdVitDeployment;
use crate::{EdVitError, Result};

/// Everything a distributed run needs beyond the deployment and samples:
/// the network model and the shared [`NetOptions`] (wire codec + transport
/// backend). Construct with a struct literal over [`RunOptions::default`]:
///
/// ```
/// use edvit::distributed::RunOptions;
/// use edvit_edge::{NetOptions, PayloadCodec, TransportKind};
///
/// let options = RunOptions {
///     net: NetOptions::default()
///         .with_codec(PayloadCodec::F16)
///         .with_transport(TransportKind::Tcp),
///     ..RunOptions::default()
/// };
/// assert_eq!(options.net.codec, PayloadCodec::F16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Network model pricing the simulated communication time.
    pub network: NetworkConfig,
    /// Wire codec and transport backend, shared with every other
    /// `with_options` surface.
    pub net: NetOptions,
    /// Observability sink the run journals its batch accounting into.
    /// Disabled (a no-op) by default; sim and TCP transports emit the same
    /// event stream for the same workload.
    pub sink: MetricsSink,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            network: NetworkConfig::paper_default(),
            net: NetOptions::default(),
            sink: MetricsSink::disabled(),
        }
    }
}

/// Converts a deployment into per-device executors plus a fusion executor.
///
/// The deployment is consumed: each sub-model moves onto "its" device thread
/// (exactly as weights are copied onto a physical Pi), and the fusion MLP
/// moves to the aggregation thread.
pub fn into_executors(deployment: EdVitDeployment) -> (Vec<SubModelFn>, FusionFn) {
    let EdVitDeployment {
        sub_models, fusion, ..
    } = deployment;
    let executors: Vec<SubModelFn> = sub_models
        .into_iter()
        .map(|sub| {
            let mut model = sub.model;
            let executor: SubModelFn = Box::new(move |sample: &Tensor| {
                // Accept [c, h, w] samples by adding a batch axis.
                let batched = if sample.rank() == 3 {
                    let mut dims = vec![1];
                    dims.extend_from_slice(sample.dims());
                    sample.reshape(&dims).map_err(|e| e.to_string())?
                } else {
                    sample.clone()
                };
                let features = model
                    .forward_features(&batched)
                    .map_err(|e| e.to_string())?;
                // Return the single sample's feature vector.
                features.row(0).map_err(|e| e.to_string())
            });
            executor
        })
        .collect();
    let mut fusion_model = fusion;
    let fusion_fn: FusionFn = Box::new(move |concat: &Tensor| {
        let batched = concat
            .reshape(&[1, concat.numel()])
            .map_err(|e| e.to_string())?;
        let logits = fusion_model
            .predict_logits(&batched)
            .map_err(|e| e.to_string())?;
        logits.row(0).map_err(|e| e.to_string())
    });
    (executors, fusion_fn)
}

/// Runs a batch of image samples through the deployment and returns the
/// runtime report (fused logits per sample, batched wire-v2 frame counts,
/// bytes on wire and measured throughput). The one distributed-inference
/// entry point: [`RunOptions`] picks the wire codec and whether the frames
/// travel over the in-process channel runtime
/// ([`TransportKind::Sim`]) or real loopback TCP sockets
/// ([`TransportKind::Tcp`]) — fused outputs are bitwise identical either
/// way.
///
/// # Errors
///
/// Returns an error when the runtime fails or the inputs are empty.
pub fn run_distributed(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    options: &RunOptions,
) -> Result<RuntimeReport> {
    if samples.is_empty() {
        return Err(EdVitError::InvalidConfig {
            message: "no samples to run through the cluster".to_string(),
        });
    }
    let (executors, fusion) = into_executors(deployment);
    match options.net.transport {
        TransportKind::Sim => {
            let runtime = ClusterRuntime::new(options.network)
                .with_options(&options.net)
                .with_sink(options.sink.clone());
            Ok(runtime.run(samples, executors, fusion)?)
        }
        TransportKind::Tcp => {
            let report = run_batch_over_tcp(
                samples,
                executors,
                fusion,
                options.net.codec,
                &options.network,
            )?;
            // The TCP path journals post-hoc from the report so both
            // transports emit the same event stream for the same workload.
            record_batch_events(
                &options.sink,
                report.per_device_wire_bytes.len(),
                report.outputs.len(),
                &report.per_device_wire_bytes,
                report.frames,
                report.simulated_communication_seconds,
            );
            Ok(report)
        }
    }
}

/// Deprecated shim over [`run_distributed`] with the pre-`RunOptions`
/// signature (f32 codec, sim transport).
///
/// # Errors
///
/// Returns an error when the runtime fails or the inputs are empty.
#[deprecated(
    since = "0.8.0",
    note = "use run_distributed(deployment, samples, &RunOptions)"
)]
pub fn run_distributed_with_network(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    network: NetworkConfig,
) -> Result<RuntimeReport> {
    run_distributed(
        deployment,
        samples,
        &RunOptions {
            network,
            ..RunOptions::default()
        },
    )
}

/// Deprecated shim over [`run_distributed`]: ships the feature batches under
/// the given wire codec on the sim transport.
///
/// # Errors
///
/// Returns an error when the runtime fails or the inputs are empty.
#[deprecated(
    since = "0.8.0",
    note = "use run_distributed(deployment, samples, &RunOptions)"
)]
pub fn run_distributed_with_codec(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    network: NetworkConfig,
    codec: PayloadCodec,
) -> Result<RuntimeReport> {
    run_distributed(
        deployment,
        samples,
        &RunOptions {
            network,
            net: NetOptions::default().with_codec(codec),
            ..RunOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{EdVitConfig, EdVitPipeline};
    use edvit_tensor::stats;

    #[test]
    fn distributed_inference_matches_label_space() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        let test = deployment.test_set.clone();
        let n = test.len().min(6);
        let samples: Vec<Tensor> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
        let report = run_distributed(deployment, &samples, &RunOptions::default()).unwrap();
        assert_eq!(report.outputs.len(), n);
        // Wire v2 batches: one frame per device per round, not one per sample.
        assert_eq!(report.frames, 2);
        assert!(report.bytes_on_wire > report.payload_bytes);
        assert_eq!(report.per_device_wire_bytes.len(), 2);
        assert!(report.samples_per_second > 0.0);
        let predictions = report.predictions().unwrap();
        assert!(predictions.iter().all(|&p| p < test.num_classes()));
        // Sanity: the distributed path should not be wildly worse than chance.
        let labels: Vec<usize> = test.labels()[..n].to_vec();
        let _acc = stats::accuracy(&predictions, &labels);
    }

    #[test]
    fn empty_sample_list_is_rejected() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        assert!(run_distributed(deployment, &[], &RunOptions::default()).is_err());
    }

    #[test]
    fn tcp_transport_produces_identical_logits() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        let test = deployment.test_set.clone();
        let n = test.len().min(4);
        let samples: Vec<Tensor> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
        let sim = run_distributed(deployment.clone(), &samples, &RunOptions::default()).unwrap();
        let tcp = run_distributed(
            deployment,
            &samples,
            &RunOptions {
                net: NetOptions::default().with_transport(TransportKind::Tcp),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sim.outputs.len(), tcp.outputs.len());
        for (a, b) in sim.outputs.iter().zip(&tcp.outputs) {
            assert_eq!(
                a.data(),
                b.data(),
                "sim and tcp logits must be bitwise equal"
            );
        }
        assert_eq!(sim.frames, tcp.frames);
        assert_eq!(sim.payload_bytes, tcp.payload_bytes);
        assert_eq!(sim.per_device_wire_bytes, tcp.per_device_wire_bytes);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_unified_entry_point() {
        let deployment = EdVitPipeline::new(EdVitConfig::tiny_demo(2)).run().unwrap();
        let test = deployment.test_set.clone();
        let samples: Vec<Tensor> = (0..2).map(|i| test.images().row(i).unwrap()).collect();
        let canonical =
            run_distributed(deployment.clone(), &samples, &RunOptions::default()).unwrap();
        let shimmed = run_distributed_with_network(
            deployment.clone(),
            &samples,
            NetworkConfig::paper_default(),
        )
        .unwrap();
        for (a, b) in canonical.outputs.iter().zip(&shimmed.outputs) {
            assert_eq!(a.data(), b.data());
        }
        let coded = run_distributed_with_codec(
            deployment,
            &samples,
            NetworkConfig::paper_default(),
            PayloadCodec::F16,
        )
        .unwrap();
        assert_eq!(coded.codec, PayloadCodec::F16);
    }
}
