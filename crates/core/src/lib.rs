//! # edvit — Efficient Partitioning of Vision Transformers for Distributed Edge Inference
//!
//! A faithful, self-contained Rust reproduction of the ED-ViT framework
//! (ICDCS 2025): splitting a Vision Transformer into class-specific
//! sub-models, pruning each with KL-divergence-guided structured pruning,
//! assigning the sub-models to edge devices under memory and energy budgets,
//! and fusing their features with a small MLP on an aggregation device.
//!
//! This crate is the facade: it re-exports the substrate crates and provides
//! the end-to-end [`pipeline`] (Fig. 1 of the paper) plus the [`experiments`]
//! harness that regenerates every table and figure of the evaluation section.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`tensor`](edvit_tensor) | dense f32 tensors, kernels, KL divergence |
//! | [`nn`](edvit_nn) | layers with hand-derived backprop, Adam, losses |
//! | [`vit`](edvit_vit) | Vision Transformer model + analytic cost model |
//! | [`datasets`](edvit_datasets) | synthetic stand-ins for the five datasets |
//! | [`pruning`](edvit_pruning) | three-stage class-wise structured pruning |
//! | [`partition`](edvit_partition) | class assignment, greedy device assignment, planner |
//! | [`edge`](edvit_edge) | Raspberry-Pi cluster / network / latency simulation |
//! | [`sched`](edvit_sched) | streaming scheduler: pipelined rounds, failover |
//! | [`fusion`](edvit_fusion) | tower-MLP feature fusion |
//! | [`baselines`](edvit_baselines) | Split-CNN and Split-SNN comparators |
//! | [`chaos`](edvit_chaos) | declarative seeded fault-injection plans |
//! | [`serving`](edvit_serve) | multi-tenant continuous-batching request front-door |
//! | [`metrics`](edvit_metrics) | metrics registry + event-sourced run journal |
//!
//! ## Quickstart
//!
//! ```
//! use edvit::pipeline::{EdVitConfig, EdVitPipeline};
//!
//! # fn main() -> Result<(), edvit::EdVitError> {
//! let config = EdVitConfig::tiny_demo(2); // 2 edge devices, CPU-sized
//! let deployment = EdVitPipeline::new(config).run()?;
//! assert!(deployment.metrics.fused_accuracy >= 0.0);
//! assert!(deployment.metrics.total_memory_mb > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributed;
mod error;
pub mod experiments;
pub mod pipeline;
pub mod serve;
pub mod streaming;

pub use error::EdVitError;

pub use edvit_baselines as baselines;
pub use edvit_chaos as chaos;
pub use edvit_datasets as datasets;
pub use edvit_edge as edge;
pub use edvit_fusion as fusion;
pub use edvit_metrics as metrics;
pub use edvit_net as net;
pub use edvit_nn as nn;
pub use edvit_partition as partition;
pub use edvit_pruning as pruning;
pub use edvit_sched as sched;
pub use edvit_serve as serving;
pub use edvit_tensor as tensor;
pub use edvit_vit as vit;

/// Convenience result alias for the end-to-end pipeline.
pub type Result<T> = std::result::Result<T, EdVitError>;
