//! Bridging a trained [`crate::pipeline::EdVitDeployment`] onto the streaming
//! fault-tolerant scheduler of `edvit-sched`: long-running inference with
//! pipelined rounds, heartbeat health tracking and live repartitioning,
//! instead of the one-shot batch of [`crate::distributed`].

use edvit_partition::DeviceSpec;
use edvit_sched::{StreamConfig, StreamReport, StreamScheduler};
use edvit_tensor::Tensor;

use crate::distributed::into_executors;
use crate::pipeline::EdVitDeployment;
use crate::{EdVitError, Result};

/// Runs a stream of image samples through the deployment on the streaming
/// scheduler. The deployment is consumed (sub-models move onto their device
/// threads); its split plan and the `devices` it was planned for drive the
/// scheduler's assignment, virtual timing and — if a scripted failure in
/// `config` kills a device — the mid-stream repartition.
///
/// # Errors
///
/// Returns an error when the inputs are empty, the configuration is
/// inconsistent, or the stream loses every device.
pub fn run_streaming(
    deployment: EdVitDeployment,
    samples: &[Tensor],
    devices: Vec<DeviceSpec>,
    config: StreamConfig,
) -> Result<StreamReport> {
    if samples.is_empty() {
        return Err(EdVitError::InvalidConfig {
            message: "no samples to stream through the cluster".to_string(),
        });
    }
    let plan = deployment.plan.clone();
    let (executors, fusion) = into_executors(deployment);
    let scheduler = StreamScheduler::new(plan, devices, config)?;
    Ok(scheduler.run(samples, executors, fusion)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{EdVitConfig, EdVitPipeline};
    use edvit_sched::ScheduleMode;

    fn deployment_and_samples(
        devices: usize,
        samples: usize,
    ) -> (EdVitDeployment, Vec<Tensor>, Vec<DeviceSpec>) {
        let config = EdVitConfig::tiny_demo(devices);
        let device_specs = config.devices.clone();
        let deployment = EdVitPipeline::new(config).run().unwrap();
        let test = deployment.test_set.clone();
        let n = test.len().min(samples);
        let inputs: Vec<Tensor> = (0..n).map(|i| test.images().row(i).unwrap()).collect();
        (deployment, inputs, device_specs)
    }

    #[test]
    fn streaming_deployment_fuses_every_sample_once() {
        let (deployment, samples, devices) = deployment_and_samples(2, 8);
        let config = StreamConfig {
            round_size: 2,
            ..StreamConfig::default()
        };
        let report = run_streaming(deployment, &samples, devices, config).unwrap();
        assert_eq!(report.outputs.len(), samples.len());
        assert_eq!(report.mode, ScheduleMode::Pipelined);
        assert_eq!(report.rounds, samples.len().div_ceil(2));
        assert!(report.heartbeats_seen > 0);
        assert!(report.steady_state_samples_per_second > 0.0);
        assert!(report.simulated_total_seconds > 0.0);
        assert!(report.devices_lost.is_empty());
        let predictions = report.predictions().unwrap();
        assert_eq!(predictions.len(), samples.len());
    }

    #[test]
    fn streaming_survives_a_scripted_death() {
        let (deployment, samples, devices) = deployment_and_samples(2, 8);
        let config = StreamConfig {
            round_size: 2,
            ..StreamConfig::default()
        }
        .with_failure(1, 1);
        let report = run_streaming(deployment, &samples, devices, config).unwrap();
        assert_eq!(report.outputs.len(), samples.len());
        assert_eq!(report.devices_lost, vec![1]);
        assert_eq!(report.repartitions, 1);
        assert!(report.recovery_seconds > 0.0);
    }

    #[test]
    fn empty_sample_list_is_rejected() {
        let (deployment, _, devices) = deployment_and_samples(2, 4);
        assert!(run_streaming(deployment, &[], devices, StreamConfig::default()).is_err());
    }
}
