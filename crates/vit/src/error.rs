use std::fmt;

use edvit_nn::NnError;
use edvit_tensor::TensorError;

/// Error type for Vision Transformer construction, inference and pruning.
#[derive(Debug, Clone, PartialEq)]
pub enum ViTError {
    /// A lower-level layer operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The model configuration is internally inconsistent.
    InvalidConfig {
        /// Human-readable description of the problem.
        message: String,
    },
    /// Input images do not match the configured geometry.
    InputMismatch {
        /// Expected `[channels, size, size]` geometry description.
        expected: String,
        /// Shape that was actually provided.
        actual: Vec<usize>,
    },
    /// A pruning request is inconsistent with the model structure.
    InvalidPruning {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for ViTError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViTError::Nn(e) => write!(f, "layer error: {e}"),
            ViTError::Tensor(e) => write!(f, "tensor error: {e}"),
            ViTError::InvalidConfig { message } => {
                write!(f, "invalid ViT configuration: {message}")
            }
            ViTError::InputMismatch { expected, actual } => {
                write!(
                    f,
                    "input shape {actual:?} does not match expected {expected}"
                )
            }
            ViTError::InvalidPruning { message } => write!(f, "invalid pruning request: {message}"),
        }
    }
}

impl std::error::Error for ViTError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ViTError::Nn(e) => Some(e),
            ViTError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ViTError {
    fn from(e: NnError) -> Self {
        ViTError::Nn(e)
    }
}

impl From<TensorError> for ViTError {
    fn from(e: TensorError) -> Self {
        ViTError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ViTError::InvalidConfig {
            message: "embed dim must divide heads".into(),
        };
        assert!(e.to_string().contains("embed dim"));
        let e: ViTError = TensorError::EmptyInput { op: "x" }.into();
        assert!(matches!(e, ViTError::Tensor(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: ViTError = NnError::MissingForwardCache { layer: "Linear" }.into();
        assert!(matches!(e, ViTError::Nn(_)));
        assert!(e.to_string().contains("Linear"));
        let e = ViTError::InputMismatch {
            expected: "3x224x224".into(),
            actual: vec![1, 3, 32, 32],
        };
        assert!(e.to_string().contains("224"));
        let e = ViTError::InvalidPruning {
            message: "oops".into(),
        };
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<T: Send + Sync + std::error::Error + 'static>() {}
        assert_bounds::<ViTError>();
    }
}
