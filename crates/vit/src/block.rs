use edvit_nn::{
    Layer, LayerNorm, Linear, Mlp, MlpActivation, MultiHeadSelfAttention, NnError, Parameter,
};
use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Result, ViTError};

/// One pre-norm Vision Transformer encoder block:
///
/// ```text
/// x  ── LN₁ ── MHSA ──(+)── LN₂ ── FFN ──(+)──▶ out
///  \__________________/ \__________________/
///       residual              residual
/// ```
///
/// The three prunable component groups of Fig. 2 map onto this structure:
/// residual channels (the width `d` seen by both LayerNorms and the residual
/// sums), MHSA head dimensions, and the FFN hidden width.
#[derive(Debug, Clone)]
pub struct ViTBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    ffn: Mlp,
    embed_dim: usize,
}

impl ViTBlock {
    /// Creates a block with `embed_dim` residual width, `heads` attention
    /// heads of width `head_dim`, and an FFN hidden width of `ffn_hidden`.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] for zero-sized dimensions.
    pub fn new(
        embed_dim: usize,
        heads: usize,
        head_dim: usize,
        ffn_hidden: usize,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        if embed_dim == 0 || ffn_hidden == 0 {
            return Err(ViTError::InvalidConfig {
                message: format!("block dims must be positive: d={embed_dim}, ffn={ffn_hidden}"),
            });
        }
        let attn = MultiHeadSelfAttention::new(embed_dim, heads, head_dim, rng)?;
        let ffn = Mlp::with_activation(
            &[embed_dim, ffn_hidden, embed_dim],
            MlpActivation::Gelu,
            rng,
        )?;
        Ok(ViTBlock {
            ln1: LayerNorm::new(embed_dim),
            attn,
            ln2: LayerNorm::new(embed_dim),
            ffn,
            embed_dim,
        })
    }

    /// Builds a block from existing sub-layers (used for pruning).
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] when the sub-layers disagree on the
    /// residual width.
    pub fn from_parts(
        ln1: LayerNorm,
        attn: MultiHeadSelfAttention,
        ln2: LayerNorm,
        ffn: Mlp,
    ) -> Result<Self> {
        let embed_dim = ln1.dim();
        if attn.embed_dim() != embed_dim
            || ln2.dim() != embed_dim
            || ffn.in_features() != embed_dim
            || ffn.out_features() != embed_dim
        {
            return Err(ViTError::InvalidConfig {
                message: format!(
                    "block sub-layers disagree on width: ln1={}, attn={}, ln2={}, ffn_in={}, ffn_out={}",
                    embed_dim,
                    attn.embed_dim(),
                    ln2.dim(),
                    ffn.in_features(),
                    ffn.out_features()
                ),
            });
        }
        Ok(ViTBlock {
            ln1,
            attn,
            ln2,
            ffn,
            embed_dim,
        })
    }

    /// Residual (embedding) width of the block.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// The attention sub-layer (read-only), exposed for pruning.
    pub fn attn(&self) -> &MultiHeadSelfAttention {
        &self.attn
    }

    /// The feed-forward sub-layer (read-only), exposed for pruning.
    pub fn ffn(&self) -> &Mlp {
        &self.ffn
    }

    /// The first layer norm (read-only), exposed for pruning.
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// The second layer norm (read-only), exposed for pruning.
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// FFN hidden width.
    pub fn ffn_hidden(&self) -> usize {
        self.ffn.layer_sizes()[1]
    }

    /// Stage-1 pruning: restrict the residual channels to `keep`.
    ///
    /// # Errors
    ///
    /// Returns an error when indices are out of range.
    pub fn prune_embed_channels(&self, keep: &[usize]) -> Result<ViTBlock> {
        let ln1 = self.ln1.select_features(keep)?;
        let ln2 = self.ln2.select_features(keep)?;
        let attn = self.attn.prune_embed_channels(keep)?;
        let fc1 = self.ffn.linears()[0].select_inputs(keep)?;
        let fc2 = self.ffn.linears()[1].select_outputs(keep)?;
        let ffn = Mlp::from_linears(vec![fc1, fc2], MlpActivation::Gelu)?;
        ViTBlock::from_parts(ln1, attn, ln2, ffn)
    }

    /// Stage-2 pruning: restrict each attention head's inner width to the
    /// per-head kept indices.
    ///
    /// # Errors
    ///
    /// Returns an error when the keep lists are inconsistent.
    pub fn prune_head_dims(&self, keep_per_head: &[Vec<usize>]) -> Result<ViTBlock> {
        let attn = self.attn.prune_head_dims(keep_per_head)?;
        let ln1 = self.ln1.clone();
        let ln2 = self.ln2.clone();
        let fc1 = self.ffn.linears()[0].clone();
        let fc2 = self.ffn.linears()[1].clone();
        let ffn = Mlp::from_linears(vec![fc1, fc2], MlpActivation::Gelu)?;
        ViTBlock::from_parts(ln1, attn, ln2, ffn)
    }

    /// Stage-3 pruning: restrict the FFN hidden units to `keep`.
    ///
    /// # Errors
    ///
    /// Returns an error when indices are out of range.
    pub fn prune_ffn_hidden(&self, keep: &[usize]) -> Result<ViTBlock> {
        let fc1 = self.ffn.linears()[0].select_outputs(keep)?;
        let fc2 = self.ffn.linears()[1].select_inputs(keep)?;
        let ffn = Mlp::from_linears(vec![fc1, fc2], MlpActivation::Gelu)?;
        ViTBlock::from_parts(
            self.ln1.clone(),
            self.attn
                .prune_embed_channels(&(0..self.embed_dim).collect::<Vec<_>>())?,
            self.ln2.clone(),
            ffn,
        )
    }
}

impl Layer for ViTBlock {
    fn forward(&mut self, input: &Tensor) -> edvit_nn::Result<Tensor> {
        // Attention branch with residual.
        let normed = self.ln1.forward(input)?;
        let attn_out = self.attn.forward(&normed)?;
        let h = input.add(&attn_out).map_err(NnError::from)?;
        // FFN branch with residual.
        let normed2 = self.ln2.forward(&h)?;
        let ffn_out = self.ffn.forward(&normed2)?;
        let out = h.add(&ffn_out).map_err(NnError::from)?;
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> edvit_nn::Result<Tensor> {
        // out = h + ffn(ln2(h))   =>   dh = dout + ln2ᵀ(ffnᵀ(dout))
        let g_ffn = self.ffn.backward(grad_output)?;
        let g_ln2 = self.ln2.backward(&g_ffn)?;
        let grad_h = grad_output.add(&g_ln2).map_err(NnError::from)?;
        // h = x + attn(ln1(x))    =>   dx = dh + ln1ᵀ(attnᵀ(dh))
        let g_attn = self.attn.backward(&grad_h)?;
        let g_ln1 = self.ln1.backward(&g_attn)?;
        let grad_x = grad_h.add(&g_ln1).map_err(NnError::from)?;
        Ok(grad_x)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        let mut params = self.ln1.parameters_mut();
        params.extend(self.attn.parameters_mut());
        params.extend(self.ln2.parameters_mut());
        params.extend(self.ffn.parameters_mut());
        params
    }

    fn parameters(&self) -> Vec<&Parameter> {
        let mut params = self.ln1.parameters();
        params.extend(self.attn.parameters());
        params.extend(self.ln2.parameters());
        params.extend(self.ffn.parameters());
        params
    }
}

/// Helper used by model-level pruning to rebuild a block's FFN from pruned
/// linear layers while keeping the rest of the block.
pub(crate) fn rebuild_ffn(fc1: Linear, fc2: Linear) -> Result<Mlp> {
    Ok(Mlp::from_linears(vec![fc1, fc2], MlpActivation::Gelu)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> ViTBlock {
        let mut rng = TensorRng::new(0);
        ViTBlock::new(16, 4, 4, 32, &mut rng).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let b = block();
        assert_eq!(b.embed_dim(), 16);
        assert_eq!(b.ffn_hidden(), 32);
        assert_eq!(b.attn().heads(), 4);
        assert_eq!(b.ln1().dim(), 16);
        assert_eq!(b.ln2().dim(), 16);
        assert_eq!(b.ffn().layer_sizes(), &[16, 32, 16]);
        let mut rng = TensorRng::new(0);
        assert!(ViTBlock::new(0, 4, 4, 32, &mut rng).is_err());
        assert!(ViTBlock::new(16, 4, 4, 0, &mut rng).is_err());
    }

    #[test]
    fn forward_preserves_shape_2d_and_3d() {
        let mut b = block();
        let mut rng = TensorRng::new(1);
        let x = rng.randn(&[5, 16], 0.0, 1.0);
        assert_eq!(b.forward(&x).unwrap().dims(), &[5, 16]);
        let x3 = rng.randn(&[2, 5, 16], 0.0, 1.0);
        assert_eq!(b.forward(&x3).unwrap().dims(), &[2, 5, 16]);
        let g = b.backward(&Tensor::ones(&[2, 5, 16])).unwrap();
        assert_eq!(g.dims(), &[2, 5, 16]);
    }

    #[test]
    fn residual_identity_at_zero_weights() {
        // With all projections zeroed the block must be the identity.
        let mut b = block();
        for p in b.parameters_mut() {
            if p.name().contains("weight") || p.name().contains("bias") || p.name().contains("pos")
            {
                let dims = p.value().dims().to_vec();
                p.set_value(Tensor::zeros(&dims));
            }
        }
        let mut rng = TensorRng::new(2);
        let x = rng.randn(&[3, 16], 0.0, 1.0);
        let y = b.forward(&x).unwrap();
        for (a, bv) in x.data().iter().zip(y.data()) {
            assert!((a - bv).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_check_against_finite_difference() {
        // Hand-rolled check (the shared helper lives in edvit-nn's test-only
        // module which is not visible here).
        let mut b = ViTBlock::new(8, 2, 4, 8, &mut TensorRng::new(3)).unwrap();
        let mut rng = TensorRng::new(4);
        let x = rng.randn(&[3, 8], 0.0, 1.0);
        let w = TensorRng::new(5).rand_uniform(&[3, 8], -1.0, 1.0);
        b.zero_grad();
        let _out = b.forward(&x).unwrap();
        let grad_in = b.backward(&w).unwrap();
        let eps = 1e-2f32;
        for i in [0usize, 5, 11, 17, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = b.forward(&xp).unwrap().mul(&w).unwrap().sum();
            let lm = b.forward(&xm).unwrap().mul(&w).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grad_in.data()[i] - fd).abs() < 5e-2 * (1.0 + fd.abs()),
                "grad mismatch at {i}: {} vs {}",
                grad_in.data()[i],
                fd
            );
        }
    }

    #[test]
    fn prune_embed_channels_keeps_structure() {
        let b = block();
        let keep: Vec<usize> = (0..8).collect();
        let pruned = b.prune_embed_channels(&keep).unwrap();
        assert_eq!(pruned.embed_dim(), 8);
        assert_eq!(pruned.ffn().layer_sizes(), &[8, 32, 8]);
        let mut pruned = pruned;
        let mut rng = TensorRng::new(6);
        let x = rng.randn(&[4, 8], 0.0, 1.0);
        assert_eq!(pruned.forward(&x).unwrap().dims(), &[4, 8]);
    }

    #[test]
    fn prune_head_dims_and_ffn_hidden() {
        let b = block();
        let keep_heads: Vec<Vec<usize>> = (0..4).map(|_| vec![0, 2]).collect();
        let pruned = b.prune_head_dims(&keep_heads).unwrap();
        assert_eq!(pruned.attn().head_dim(), 2);
        assert_eq!(pruned.embed_dim(), 16);
        let keep_ffn: Vec<usize> = (0..16).collect();
        let pruned2 = b.prune_ffn_hidden(&keep_ffn).unwrap();
        assert_eq!(pruned2.ffn_hidden(), 16);
        let mut pruned2 = pruned2;
        let mut rng = TensorRng::new(7);
        let x = rng.randn(&[3, 16], 0.0, 1.0);
        assert_eq!(pruned2.forward(&x).unwrap().dims(), &[3, 16]);
    }

    #[test]
    fn from_parts_validates_widths() {
        let mut rng = TensorRng::new(8);
        let ln1 = LayerNorm::new(8);
        let ln2 = LayerNorm::new(8);
        let attn = MultiHeadSelfAttention::new(8, 2, 4, &mut rng).unwrap();
        let bad_ffn = Mlp::new(&[10, 20, 10], &mut rng).unwrap();
        assert!(ViTBlock::from_parts(ln1, attn, ln2, bad_ffn).is_err());
    }

    #[test]
    fn parameter_count_formula() {
        let b = block();
        // ln1 + ln2: 2*2*16; attn: 4*(16*16+16); ffn: 16*32+32 + 32*16+16
        let expected = 2 * 2 * 16 + 4 * (16 * 16 + 16) + (16 * 32 + 32) + (32 * 16 + 16);
        assert_eq!(b.parameter_count(), expected);
    }
}
