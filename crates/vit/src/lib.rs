//! # edvit-vit
//!
//! Vision Transformer models, configurations and the analytic cost model used
//! throughout the ED-ViT reproduction.
//!
//! The crate provides:
//!
//! * [`ViTConfig`] — architecture hyper-parameters with the paper's presets
//!   ([`ViTConfig::vit_small`], [`ViTConfig::vit_base`], [`ViTConfig::vit_large`])
//!   plus scaled-down trainable variants for CPU experiments;
//! * [`VisionTransformer`] — a trainable ViT (patch embedding → transformer
//!   blocks → mean-pooled head) built on `edvit-nn` layers;
//! * [`PrunedViTConfig`] and [`analysis`] — the closed-form FLOPs / parameter
//!   / memory model of Section III of the paper, used by the partitioning and
//!   edge-simulation crates without running any actual inference;
//! * [`training`] — a small supervised training loop (Adam, cross-entropy)
//!   mirroring the paper's fine-tuning setup.
//!
//! # Example
//!
//! ```
//! use edvit_vit::{ViTConfig, VisionTransformer};
//! use edvit_tensor::init::TensorRng;
//!
//! # fn main() -> Result<(), edvit_vit::ViTError> {
//! let config = ViTConfig::tiny_test(); // small enough to run in a doctest
//! let mut rng = TensorRng::new(0);
//! let mut model = VisionTransformer::new(&config, &mut rng)?;
//! let images = rng.randn(&[2, config.channels, config.image_size, config.image_size], 0.0, 1.0);
//! let logits = model.forward_images(&images)?;
//! assert_eq!(logits.dims(), &[2, config.num_classes]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod block;
mod config;
mod error;
mod model;
mod patch;
pub mod training;

pub use block::ViTBlock;
pub use config::{PrunedViTConfig, ScaleProfile, ViTConfig, ViTVariant};
pub use error::ViTError;
pub use model::VisionTransformer;
pub use patch::PatchEmbed;

/// Convenience result alias for fallible ViT operations.
pub type Result<T> = std::result::Result<T, ViTError>;
