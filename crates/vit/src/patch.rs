use edvit_nn::{Layer, Linear, NnError, Parameter};
use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Result, ViTConfig, ViTError};

/// Patch embedding: splits an image into non-overlapping square patches,
/// projects each flattened patch to the embedding width and adds a learned
/// positional embedding.
///
/// Input: `[batch, channels, H, W]`; output: `[batch, patches, embed_dim]`.
///
/// # Example
///
/// ```
/// use edvit_vit::{PatchEmbed, ViTConfig};
/// use edvit_nn::Layer;
/// use edvit_tensor::init::TensorRng;
///
/// # fn main() -> Result<(), edvit_vit::ViTError> {
/// let config = ViTConfig::tiny_test();
/// let mut rng = TensorRng::new(0);
/// let mut embed = PatchEmbed::new(&config, &mut rng)?;
/// let x = rng.randn(&[1, 3, 16, 16], 0.0, 1.0);
/// let tokens = embed.forward(&x)?;
/// assert_eq!(tokens.dims(), &[1, 4, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatchEmbed {
    projection: Linear,
    pos_embed: Parameter,
    channels: usize,
    image_size: usize,
    patch_size: usize,
    embed_dim: usize,
    cache_batch: Option<usize>,
}

impl PatchEmbed {
    /// Creates a patch embedding for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: &ViTConfig, rng: &mut TensorRng) -> Result<Self> {
        config.validate()?;
        let projection = Linear::new(config.patch_dim(), config.embed_dim, rng);
        let pos_embed = rng.trunc_normal(&[config.num_patches(), config.embed_dim], 0.02);
        Ok(PatchEmbed {
            projection,
            pos_embed: Parameter::new("patch_embed.pos", pos_embed),
            channels: config.channels,
            image_size: config.image_size,
            patch_size: config.patch_size,
            embed_dim: config.embed_dim,
            cache_batch: None,
        })
    }

    /// Builds a patch embedding from existing weights (used for pruning).
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] when weights and geometry disagree.
    pub fn from_parts(
        projection: Linear,
        pos_embed: Tensor,
        channels: usize,
        image_size: usize,
        patch_size: usize,
    ) -> Result<Self> {
        let patch_dim = channels * patch_size * patch_size;
        if projection.in_features() != patch_dim {
            return Err(ViTError::InvalidConfig {
                message: format!(
                    "projection expects {} inputs but patches have {} values",
                    projection.in_features(),
                    patch_dim
                ),
            });
        }
        let per_side = image_size / patch_size;
        let patches = per_side * per_side;
        if pos_embed.dims() != [patches, projection.out_features()] {
            return Err(ViTError::InvalidConfig {
                message: format!(
                    "positional embedding {:?} does not match {} patches x {} dims",
                    pos_embed.dims(),
                    patches,
                    projection.out_features()
                ),
            });
        }
        let embed_dim = projection.out_features();
        Ok(PatchEmbed {
            projection,
            pos_embed: Parameter::new("patch_embed.pos", pos_embed),
            channels,
            image_size,
            patch_size,
            embed_dim,
            cache_batch: None,
        })
    }

    /// Number of patches per image.
    pub fn num_patches(&self) -> usize {
        let per_side = self.image_size / self.patch_size;
        per_side * per_side
    }

    /// Embedding width produced per token.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// The linear projection (read-only), exposed for pruning.
    pub fn projection(&self) -> &Linear {
        &self.projection
    }

    /// The learned positional embedding (read-only), exposed for pruning.
    pub fn pos_embed(&self) -> &Parameter {
        &self.pos_embed
    }

    /// Returns a copy whose output (embedding) channels are restricted to
    /// `keep` — the residual-channel pruning stage.
    ///
    /// # Errors
    ///
    /// Returns an error if an index is out of range.
    pub fn prune_embed_channels(&self, keep: &[usize]) -> Result<PatchEmbed> {
        let projection = self
            .projection
            .select_outputs(keep)
            .map_err(ViTError::from)?;
        let pos = self.pos_embed.value().select_last_axis(keep)?;
        PatchEmbed::from_parts(
            projection,
            pos,
            self.channels,
            self.image_size,
            self.patch_size,
        )
    }

    /// Converts `[batch, channels, H, W]` images to flattened patches
    /// `[batch, patches, channels * patch²]`.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InputMismatch`] when the geometry does not match.
    pub fn images_to_patches(&self, images: &Tensor) -> Result<Tensor> {
        if images.rank() != 4
            || images.dims()[1] != self.channels
            || images.dims()[2] != self.image_size
            || images.dims()[3] != self.image_size
        {
            return Err(ViTError::InputMismatch {
                expected: format!(
                    "[batch, {}, {}, {}]",
                    self.channels, self.image_size, self.image_size
                ),
                actual: images.dims().to_vec(),
            });
        }
        let batch = images.dims()[0];
        let per_side = self.image_size / self.patch_size;
        let p = per_side * per_side;
        let dp = self.channels * self.patch_size * self.patch_size;
        let mut out = vec![0.0f32; batch * p * dp];
        let data = images.data();
        let (c, hw, ps) = (self.channels, self.image_size, self.patch_size);
        for b in 0..batch {
            for py in 0..per_side {
                for px in 0..per_side {
                    let patch_index = py * per_side + px;
                    let base = b * p * dp + patch_index * dp;
                    for ci in 0..c {
                        for y in 0..ps {
                            for x in 0..ps {
                                let iy = py * ps + y;
                                let ix = px * ps + x;
                                out[base + ci * ps * ps + y * ps + x] =
                                    data[b * c * hw * hw + ci * hw * hw + iy * hw + ix];
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, &[batch, p, dp])?)
    }

    /// Inverse of [`PatchEmbed::images_to_patches`], used to propagate input
    /// gradients back to image space.
    fn patches_to_images(&self, patches: &Tensor) -> Result<Tensor> {
        let batch = patches.dims()[0];
        let per_side = self.image_size / self.patch_size;
        let p = per_side * per_side;
        let dp = self.channels * self.patch_size * self.patch_size;
        let mut out = vec![0.0f32; batch * self.channels * self.image_size * self.image_size];
        let data = patches.data();
        let (c, hw, ps) = (self.channels, self.image_size, self.patch_size);
        for b in 0..batch {
            for py in 0..per_side {
                for px in 0..per_side {
                    let patch_index = py * per_side + px;
                    let base = b * p * dp + patch_index * dp;
                    for ci in 0..c {
                        for y in 0..ps {
                            for x in 0..ps {
                                let iy = py * ps + y;
                                let ix = px * ps + x;
                                out[b * c * hw * hw + ci * hw * hw + iy * hw + ix] =
                                    data[base + ci * ps * ps + y * ps + x];
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(
            out,
            &[batch, self.channels, self.image_size, self.image_size],
        )?)
    }
}

impl Layer for PatchEmbed {
    fn forward(&mut self, input: &Tensor) -> edvit_nn::Result<Tensor> {
        let patches = self
            .images_to_patches(input)
            .map_err(|e| NnError::InvalidConfig {
                message: e.to_string(),
            })?;
        let batch = patches.dims()[0];
        let projected = self.projection.forward(&patches)?;
        // Add the positional embedding to every sample in the batch.
        let p = self.num_patches();
        let d = self.embed_dim;
        let mut out = projected.clone();
        for b in 0..batch {
            for i in 0..p {
                for j in 0..d {
                    let idx = b * p * d + i * d + j;
                    out.data_mut()[idx] += self.pos_embed.value().data()[i * d + j];
                }
            }
        }
        self.cache_batch = Some(batch);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> edvit_nn::Result<Tensor> {
        let batch = self.cache_batch.ok_or(NnError::MissingForwardCache {
            layer: "PatchEmbed",
        })?;
        let p = self.num_patches();
        let d = self.embed_dim;
        // Positional-embedding gradient: sum over the batch.
        let mut pos_grad = vec![0.0f32; p * d];
        for b in 0..batch {
            for i in 0..p {
                for j in 0..d {
                    pos_grad[i * d + j] += grad_output.data()[b * p * d + i * d + j];
                }
            }
        }
        self.pos_embed
            .accumulate_grad(&Tensor::from_vec(pos_grad, &[p, d])?)?;
        let grad_patches = self.projection.backward(grad_output)?;
        self.patches_to_images(&grad_patches)
            .map_err(|e| NnError::InvalidConfig {
                message: e.to_string(),
            })
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        let mut params = self.projection.parameters_mut();
        params.push(&mut self.pos_embed);
        params
    }

    fn parameters(&self) -> Vec<&Parameter> {
        let mut params = self.projection.parameters();
        params.push(&self.pos_embed);
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (ViTConfig, PatchEmbed) {
        let config = ViTConfig::tiny_test();
        let mut rng = TensorRng::new(0);
        let embed = PatchEmbed::new(&config, &mut rng).unwrap();
        (config, embed)
    }

    #[test]
    fn patch_extraction_geometry() {
        let (config, embed) = tiny();
        assert_eq!(embed.num_patches(), config.num_patches());
        assert_eq!(embed.embed_dim(), config.embed_dim);
        let mut rng = TensorRng::new(1);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        let patches = embed.images_to_patches(&x).unwrap();
        assert_eq!(patches.dims(), &[2, 4, 3 * 8 * 8]);
        // First value of patch 0 equals the image's top-left pixel.
        assert_eq!(
            patches.get(&[0, 0, 0]).unwrap(),
            x.get(&[0, 0, 0, 0]).unwrap()
        );
        // Patch 1 starts at column `patch_size` of the image.
        assert_eq!(
            patches.get(&[0, 1, 0]).unwrap(),
            x.get(&[0, 0, 0, 8]).unwrap()
        );
        // Patch 2 starts at row `patch_size`.
        assert_eq!(
            patches.get(&[0, 2, 0]).unwrap(),
            x.get(&[0, 0, 8, 0]).unwrap()
        );
    }

    #[test]
    fn patches_round_trip_back_to_images() {
        let (_, embed) = tiny();
        let mut rng = TensorRng::new(2);
        let x = rng.randn(&[1, 3, 16, 16], 0.0, 1.0);
        let patches = embed.images_to_patches(&x).unwrap();
        let back = embed.patches_to_images(&patches).unwrap();
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn forward_backward_shapes() {
        let (config, mut embed) = tiny();
        let mut rng = TensorRng::new(3);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        let tokens = embed.forward(&x).unwrap();
        assert_eq!(tokens.dims(), &[2, config.num_patches(), config.embed_dim]);
        let g = embed
            .backward(&Tensor::ones(&[2, config.num_patches(), config.embed_dim]))
            .unwrap();
        assert_eq!(g.dims(), &[2, 3, 16, 16]);
        // Positional-embedding gradient accumulated (batch of 2, all-ones grad).
        let pos_grad_sum: f32 = embed.pos_embed().grad().sum();
        assert!((pos_grad_sum - (2 * config.num_patches() * config.embed_dim) as f32).abs() < 1e-3);
    }

    #[test]
    fn rejects_wrong_geometry() {
        let (_, mut embed) = tiny();
        assert!(embed.forward(&Tensor::zeros(&[1, 3, 32, 32])).is_err());
        assert!(embed.forward(&Tensor::zeros(&[1, 1, 16, 16])).is_err());
        assert!(PatchEmbed::new(
            &ViTConfig {
                image_size: 15,
                ..ViTConfig::tiny_test()
            },
            &mut TensorRng::new(0)
        )
        .is_err());
        let mut fresh = tiny().1;
        assert!(fresh.backward(&Tensor::zeros(&[1, 4, 32])).is_err());
    }

    #[test]
    fn prune_embed_channels_shrinks_projection_and_pos() {
        let (_, embed) = tiny();
        let keep: Vec<usize> = (0..16).collect();
        let pruned = embed.prune_embed_channels(&keep).unwrap();
        assert_eq!(pruned.embed_dim(), 16);
        assert_eq!(pruned.pos_embed().value().dims(), &[4, 16]);
        let mut pruned = pruned;
        let mut rng = TensorRng::new(4);
        let x = rng.randn(&[1, 3, 16, 16], 0.0, 1.0);
        assert_eq!(pruned.forward(&x).unwrap().dims(), &[1, 4, 16]);
        assert!(embed.prune_embed_channels(&[999]).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let (_, embed) = tiny();
        let bad_pos = Tensor::zeros(&[3, 32]);
        assert!(PatchEmbed::from_parts(
            Linear::from_weights(Tensor::zeros(&[192, 32]), Tensor::zeros(&[32])).unwrap(),
            bad_pos,
            3,
            16,
            8
        )
        .is_err());
        assert!(PatchEmbed::from_parts(
            Linear::from_weights(Tensor::zeros(&[100, 32]), Tensor::zeros(&[32])).unwrap(),
            Tensor::zeros(&[4, 32]),
            3,
            16,
            8
        )
        .is_err());
        let _ = embed;
    }
}
