use serde::{Deserialize, Serialize};

use crate::{Result, ViTError};

/// The standard Vision Transformer variants evaluated in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViTVariant {
    /// ViT-Small: depth 12, width 384, 6 heads, 22.1 M parameters.
    Small,
    /// ViT-Base: depth 12, width 768, 12 heads, 86.6 M parameters.
    Base,
    /// ViT-Large: depth 24, width 1024, 16 heads, 304.4 M parameters.
    Large,
    /// A deliberately small configuration used for CPU-scale training in
    /// tests, examples and accuracy experiments.
    TinyTest,
}

impl std::fmt::Display for ViTVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViTVariant::Small => write!(f, "ViT-Small"),
            ViTVariant::Base => write!(f, "ViT-Base"),
            ViTVariant::Large => write!(f, "ViT-Large"),
            ViTVariant::TinyTest => write!(f, "ViT-Tiny(test)"),
        }
    }
}

/// How a paper-scale configuration is mapped to a configuration that can be
/// trained on a laptop CPU for the accuracy experiments (see DESIGN.md §3,
/// "Two model scales").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleProfile {
    /// Image resolution used at trainable scale.
    pub image_size: usize,
    /// Patch size used at trainable scale.
    pub patch_size: usize,
    /// Upper bound on the embedding width.
    pub max_embed_dim: usize,
    /// Upper bound on the transformer depth.
    pub max_depth: usize,
}

impl Default for ScaleProfile {
    fn default() -> Self {
        ScaleProfile {
            image_size: 32,
            patch_size: 8,
            max_embed_dim: 64,
            max_depth: 4,
        }
    }
}

/// Architecture hyper-parameters of a Vision Transformer.
///
/// # Example
///
/// ```
/// use edvit_vit::ViTConfig;
///
/// let base = ViTConfig::vit_base(10);
/// assert_eq!(base.embed_dim, 768);
/// assert_eq!(base.num_patches(), 196);
/// assert_eq!(base.head_dim(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ViTConfig {
    /// Which named variant this configuration corresponds to.
    pub variant: ViTVariant,
    /// Number of transformer blocks.
    pub depth: usize,
    /// Embedding width `d`.
    pub embed_dim: usize,
    /// Number of attention heads `h`.
    pub heads: usize,
    /// FFN hidden width as a multiple of `embed_dim` (4 for standard ViT).
    pub mlp_ratio: usize,
    /// Square patch size in pixels.
    pub patch_size: usize,
    /// Square input image resolution in pixels.
    pub image_size: usize,
    /// Number of input channels (3 for RGB vision tasks, 1 for audio
    /// spectrograms as in the paper's GTZAN / Speech Commands setup).
    pub channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ViTConfig {
    /// ViT-Small at 224×224 with 16×16 patches (Table I, row 1).
    pub fn vit_small(num_classes: usize) -> Self {
        ViTConfig {
            variant: ViTVariant::Small,
            depth: 12,
            embed_dim: 384,
            heads: 6,
            mlp_ratio: 4,
            patch_size: 16,
            image_size: 224,
            channels: 3,
            num_classes,
        }
    }

    /// ViT-Base at 224×224 with 16×16 patches (Table I, row 2).
    pub fn vit_base(num_classes: usize) -> Self {
        ViTConfig {
            variant: ViTVariant::Base,
            depth: 12,
            embed_dim: 768,
            heads: 12,
            mlp_ratio: 4,
            patch_size: 16,
            image_size: 224,
            channels: 3,
            num_classes,
        }
    }

    /// ViT-Large at 224×224 with 16×16 patches (Table I, row 3).
    pub fn vit_large(num_classes: usize) -> Self {
        ViTConfig {
            variant: ViTVariant::Large,
            depth: 24,
            embed_dim: 1024,
            heads: 16,
            mlp_ratio: 4,
            patch_size: 16,
            image_size: 224,
            channels: 3,
            num_classes,
        }
    }

    /// A variant for single-channel audio spectrogram inputs (224×224×1),
    /// matching the paper's audio-recognition setup.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// A tiny configuration that trains in milliseconds; used by tests,
    /// doctests and the quickstart example.
    pub fn tiny_test() -> Self {
        ViTConfig {
            variant: ViTVariant::TinyTest,
            depth: 2,
            embed_dim: 32,
            heads: 4,
            mlp_ratio: 2,
            patch_size: 8,
            image_size: 16,
            channels: 3,
            num_classes: 4,
        }
    }

    /// Builds the named paper variant.
    pub fn from_variant(variant: ViTVariant, num_classes: usize) -> Self {
        match variant {
            ViTVariant::Small => Self::vit_small(num_classes),
            ViTVariant::Base => Self::vit_base(num_classes),
            ViTVariant::Large => Self::vit_large(num_classes),
            ViTVariant::TinyTest => {
                let mut c = Self::tiny_test();
                c.num_classes = num_classes;
                c
            }
        }
    }

    /// Validates internal consistency (dimensions divide, nothing is zero).
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] describing the first problem found.
    pub fn validate(&self) -> Result<()> {
        if self.depth == 0
            || self.embed_dim == 0
            || self.heads == 0
            || self.mlp_ratio == 0
            || self.patch_size == 0
            || self.image_size == 0
            || self.channels == 0
            || self.num_classes == 0
        {
            return Err(ViTError::InvalidConfig {
                message: format!("configuration contains a zero-sized field: {self:?}"),
            });
        }
        if !self.embed_dim.is_multiple_of(self.heads) {
            return Err(ViTError::InvalidConfig {
                message: format!(
                    "embed_dim {} must be divisible by heads {}",
                    self.embed_dim, self.heads
                ),
            });
        }
        if !self.image_size.is_multiple_of(self.patch_size) {
            return Err(ViTError::InvalidConfig {
                message: format!(
                    "image_size {} must be divisible by patch_size {}",
                    self.image_size, self.patch_size
                ),
            });
        }
        Ok(())
    }

    /// Number of patches `p = (image / patch)^2`.
    pub fn num_patches(&self) -> usize {
        let per_side = self.image_size / self.patch_size;
        per_side * per_side
    }

    /// Flattened patch dimensionality `d_p = channels * patch^2`.
    pub fn patch_dim(&self) -> usize {
        self.channels * self.patch_size * self.patch_size
    }

    /// Per-head projection width `d_q = d_k = d_v = d / h`.
    pub fn head_dim(&self) -> usize {
        self.embed_dim / self.heads
    }

    /// FFN hidden width `c = mlp_ratio * d`.
    pub fn ffn_hidden(&self) -> usize {
        self.mlp_ratio * self.embed_dim
    }

    /// Maps this (possibly paper-scale) configuration onto a configuration
    /// that is actually trainable on CPU, preserving the head count, depth
    /// ordering between variants, class count and channel count.
    pub fn scaled_down(&self, profile: &ScaleProfile) -> ViTConfig {
        let depth = self.depth.clamp(1, profile.max_depth);
        // Preserve the head count but cap the embedding width, keeping it a
        // multiple of the head count.
        let heads = self.heads.min(profile.max_embed_dim);
        let embed_dim = (profile.max_embed_dim / heads).max(1) * heads;
        ViTConfig {
            variant: self.variant,
            depth,
            embed_dim,
            heads,
            mlp_ratio: self.mlp_ratio.min(2),
            patch_size: profile.patch_size,
            image_size: profile.image_size,
            channels: self.channels,
            num_classes: self.num_classes,
        }
    }
}

/// A structured-pruning plan for one sub-model, expressed as in the paper:
/// the number of "pruned heads" `hp` determines the retention factor
/// `s = (h - hp) / h`, which uniformly scales the residual width, the per-head
/// projection width and the FFN hidden width (Fig. 2 / Section IV-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedViTConfig {
    base: ViTConfig,
    pruned_heads: usize,
}

impl PrunedViTConfig {
    /// Creates a pruning plan that removes `pruned_heads` of the `h` heads'
    /// worth of width. `pruned_heads == 0` represents the unpruned model.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidPruning`] when `pruned_heads >= heads`
    /// (at least one head's worth of capacity must survive).
    pub fn new(base: ViTConfig, pruned_heads: usize) -> Result<Self> {
        base.validate()?;
        if pruned_heads >= base.heads {
            return Err(ViTError::InvalidPruning {
                message: format!(
                    "cannot prune {pruned_heads} of {} heads; at least one must remain",
                    base.heads
                ),
            });
        }
        Ok(PrunedViTConfig { base, pruned_heads })
    }

    /// The unpruned base configuration.
    pub fn base(&self) -> &ViTConfig {
        &self.base
    }

    /// Number of pruned heads `hp`.
    pub fn pruned_heads(&self) -> usize {
        self.pruned_heads
    }

    /// Retention factor `s = (h - hp) / h` from Section IV-C.
    pub fn retention(&self) -> f64 {
        (self.base.heads - self.pruned_heads) as f64 / self.base.heads as f64
    }

    /// Retained residual (embedding) width `s × d`, rounded to a multiple of
    /// the head count so heads stay rectangular.
    pub fn embed_dim(&self) -> usize {
        let kept_heads = self.base.heads - self.pruned_heads;
        kept_heads * self.base.head_dim()
    }

    /// Retained per-head projection width `s × d_q`.
    pub fn head_dim(&self) -> usize {
        let kept = (self.retention() * self.base.head_dim() as f64).round() as usize;
        kept.max(1)
    }

    /// Retained FFN hidden width `s × c`.
    pub fn ffn_hidden(&self) -> usize {
        let kept = (self.retention() * self.base.ffn_hidden() as f64).round() as usize;
        kept.max(1)
    }

    /// Number of heads, unchanged by pruning (the paper shrinks head width
    /// rather than deleting heads).
    pub fn heads(&self) -> usize {
        self.base.heads
    }

    /// Dimension of the pooled feature a sub-model transmits to the fusion
    /// device (`s × d`); multiplied by 4 bytes this gives the paper's
    /// communication payload (1536 B for ViT-Base at `s = 1/2`).
    pub fn feature_dim(&self) -> usize {
        self.embed_dim()
    }

    /// Returns a new plan with one more head's worth of width pruned —
    /// the adjustment step of Algorithm 1 (line 18) in reverse direction.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidPruning`] when no more width can be pruned.
    pub fn prune_one_more_head(&self) -> Result<PrunedViTConfig> {
        PrunedViTConfig::new(self.base.clone(), self.pruned_heads + 1)
    }

    /// Returns a new plan with one fewer pruned head (i.e. a bigger model),
    /// the adjustment used by Algorithm 1 when re-balancing.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidPruning`] when the plan is already unpruned.
    pub fn restore_one_head(&self) -> Result<PrunedViTConfig> {
        if self.pruned_heads == 0 {
            return Err(ViTError::InvalidPruning {
                message: "model is already unpruned".to_string(),
            });
        }
        PrunedViTConfig::new(self.base.clone(), self.pruned_heads - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        let s = ViTConfig::vit_small(10);
        assert_eq!((s.depth, s.embed_dim, s.heads), (12, 384, 6));
        let b = ViTConfig::vit_base(10);
        assert_eq!((b.depth, b.embed_dim, b.heads), (12, 768, 12));
        let l = ViTConfig::vit_large(10);
        assert_eq!((l.depth, l.embed_dim, l.heads), (24, 1024, 16));
        for c in [&s, &b, &l] {
            assert_eq!(c.num_patches(), 196);
            assert_eq!(c.patch_size, 16);
            assert_eq!(c.image_size, 224);
            c.validate().unwrap();
        }
    }

    #[test]
    fn derived_dimensions() {
        let b = ViTConfig::vit_base(10);
        assert_eq!(b.head_dim(), 64);
        assert_eq!(b.ffn_hidden(), 3072);
        assert_eq!(b.patch_dim(), 768);
        let audio = ViTConfig::vit_base(10).with_channels(1);
        assert_eq!(audio.patch_dim(), 256);
    }

    #[test]
    fn from_variant_round_trips() {
        for v in [
            ViTVariant::Small,
            ViTVariant::Base,
            ViTVariant::Large,
            ViTVariant::TinyTest,
        ] {
            let c = ViTConfig::from_variant(v, 7);
            assert_eq!(c.variant, v);
            assert_eq!(c.num_classes, 7);
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn validation_catches_problems() {
        let mut c = ViTConfig::vit_base(10);
        c.embed_dim = 770; // not divisible by 12 heads
        assert!(c.validate().is_err());
        let mut c = ViTConfig::vit_base(10);
        c.image_size = 225;
        assert!(c.validate().is_err());
        let mut c = ViTConfig::vit_base(10);
        c.num_classes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaled_down_is_trainable_and_consistent() {
        let profile = ScaleProfile::default();
        for base in [
            ViTConfig::vit_small(10),
            ViTConfig::vit_base(257),
            ViTConfig::vit_large(35).with_channels(1),
        ] {
            let small = base.scaled_down(&profile);
            small.validate().unwrap();
            assert!(small.embed_dim <= profile.max_embed_dim);
            assert!(small.depth <= profile.max_depth);
            assert_eq!(small.num_classes, base.num_classes);
            assert_eq!(small.channels, base.channels);
            assert_eq!(small.heads, base.heads.min(profile.max_embed_dim));
        }
    }

    #[test]
    fn pruned_config_retention_math() {
        let base = ViTConfig::vit_base(10);
        let p = PrunedViTConfig::new(base.clone(), 6).unwrap();
        assert!((p.retention() - 0.5).abs() < 1e-9);
        assert_eq!(p.embed_dim(), 384);
        assert_eq!(p.head_dim(), 32);
        assert_eq!(p.ffn_hidden(), 1536);
        assert_eq!(p.heads(), 12);
        // Communication payload: 384 floats * 4 bytes = 1536 bytes (paper §V-D).
        assert_eq!(p.feature_dim() * 4, 1536);
        let unpruned = PrunedViTConfig::new(base.clone(), 0).unwrap();
        assert_eq!(unpruned.embed_dim(), 768);
        assert!(PrunedViTConfig::new(base, 12).is_err());
    }

    #[test]
    fn prune_and_restore_heads() {
        let base = ViTConfig::vit_base(10);
        let p = PrunedViTConfig::new(base, 6).unwrap();
        let more = p.prune_one_more_head().unwrap();
        assert_eq!(more.pruned_heads(), 7);
        let back = more.restore_one_head().unwrap();
        assert_eq!(back.pruned_heads(), 6);
        let unpruned = back
            .restore_one_head()
            .unwrap()
            .restore_one_head()
            .unwrap()
            .restore_one_head()
            .unwrap()
            .restore_one_head()
            .unwrap()
            .restore_one_head()
            .unwrap()
            .restore_one_head()
            .unwrap();
        assert_eq!(unpruned.pruned_heads(), 0);
        assert!(unpruned.restore_one_head().is_err());
        // Pruning down to the last head is allowed, past it is not.
        let mut p = PrunedViTConfig::new(ViTConfig::vit_small(10), 0).unwrap();
        for _ in 0..5 {
            p = p.prune_one_more_head().unwrap();
        }
        assert!(p.prune_one_more_head().is_err());
    }

    #[test]
    fn tiny_test_config_is_valid() {
        let c = ViTConfig::tiny_test();
        c.validate().unwrap();
        assert_eq!(c.num_patches(), 4);
        assert!(c.embed_dim <= 64);
    }
}
