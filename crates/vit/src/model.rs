use edvit_nn::{Layer, LayerNorm, Linear, NnError, Parameter};
use edvit_parallel::ParallelPool;
use edvit_tensor::{init::TensorRng, Tensor};

use crate::block::rebuild_ffn;
use crate::{PatchEmbed, Result, ViTBlock, ViTConfig, ViTError};

/// Total pooled elements (`batch·tokens·dim`) below which the mean-pool
/// loops run sequentially — tiny training batches would otherwise pay a pool
/// wake-up for a few kilobytes of additions.
const PAR_POOL_WORK: usize = 1 << 15;

/// A trainable Vision Transformer for image (or spectrogram) classification.
///
/// The architecture is the standard pre-norm ViT: patch embedding with learned
/// positional embeddings, a stack of [`ViTBlock`]s, a final layer norm, mean
/// pooling over tokens, and a linear classification head. Mean pooling (rather
/// than a class token) keeps the pooled feature exactly `s × d` wide after
/// pruning, matching the communication payload the paper reports in §V-D.
///
/// # Example
///
/// ```
/// use edvit_vit::{ViTConfig, VisionTransformer};
/// use edvit_tensor::init::TensorRng;
///
/// # fn main() -> Result<(), edvit_vit::ViTError> {
/// let config = ViTConfig::tiny_test();
/// let mut rng = TensorRng::new(7);
/// let mut model = VisionTransformer::new(&config, &mut rng)?;
/// let x = rng.randn(&[1, 3, 16, 16], 0.0, 1.0);
/// let logits = model.forward_images(&x)?;
/// assert_eq!(logits.dims(), &[1, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VisionTransformer {
    config: ViTConfig,
    patch_embed: PatchEmbed,
    blocks: Vec<ViTBlock>,
    final_ln: LayerNorm,
    head: Linear,
    cache_pool: Option<(usize, usize)>,
}

impl VisionTransformer {
    /// Creates a randomly-initialized Vision Transformer.
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: &ViTConfig, rng: &mut TensorRng) -> Result<Self> {
        config.validate()?;
        let patch_embed = PatchEmbed::new(config, rng)?;
        let mut blocks = Vec::with_capacity(config.depth);
        for _ in 0..config.depth {
            blocks.push(ViTBlock::new(
                config.embed_dim,
                config.heads,
                config.head_dim(),
                config.ffn_hidden(),
                rng,
            )?);
        }
        let final_ln = LayerNorm::new(config.embed_dim);
        let head = Linear::new(config.embed_dim, config.num_classes, rng);
        Ok(VisionTransformer {
            config: config.clone(),
            patch_embed,
            blocks,
            final_ln,
            head,
            cache_pool: None,
        })
    }

    /// Builds a model from existing components (used by structured pruning).
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidConfig`] when components disagree on widths.
    pub fn from_parts(
        config: ViTConfig,
        patch_embed: PatchEmbed,
        blocks: Vec<ViTBlock>,
        final_ln: LayerNorm,
        head: Linear,
    ) -> Result<Self> {
        let d = patch_embed.embed_dim();
        if blocks.iter().any(|b| b.embed_dim() != d)
            || final_ln.dim() != d
            || head.in_features() != d
        {
            return Err(ViTError::InvalidConfig {
                message: "model components disagree on embedding width".to_string(),
            });
        }
        if blocks.is_empty() {
            return Err(ViTError::InvalidConfig {
                message: "a Vision Transformer needs at least one block".to_string(),
            });
        }
        Ok(VisionTransformer {
            config,
            patch_embed,
            blocks,
            final_ln,
            head,
            cache_pool: None,
        })
    }

    /// The geometric configuration (image size, patches, channels, classes of
    /// the original task). Note that after pruning the *width* fields of this
    /// config describe the original model; use [`VisionTransformer::embed_dim`]
    /// for the current width.
    pub fn config(&self) -> &ViTConfig {
        &self.config
    }

    /// Current residual (embedding) width.
    pub fn embed_dim(&self) -> usize {
        self.final_ln.dim()
    }

    /// Number of output classes of the classification head.
    pub fn num_classes(&self) -> usize {
        self.head.out_features()
    }

    /// Number of transformer blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Read-only access to the blocks, exposed for pruning and inspection.
    pub fn blocks(&self) -> &[ViTBlock] {
        &self.blocks
    }

    /// Read-only access to the patch embedding.
    pub fn patch_embed(&self) -> &PatchEmbed {
        &self.patch_embed
    }

    /// Read-only access to the classification head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// Read-only access to the final layer norm.
    pub fn final_ln(&self) -> &LayerNorm {
        &self.final_ln
    }

    /// Runs the full model on a batch of images `[b, c, H, W]`, returning
    /// logits `[b, classes]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the image geometry does not match the config.
    pub fn forward_images(&mut self, images: &Tensor) -> Result<Tensor> {
        let features = self.forward_features(images)?;
        Ok(self.head.forward(&features)?)
    }

    /// Runs the backbone only, returning the pooled feature `[b, d]` that a
    /// sub-model would transmit to the fusion device.
    ///
    /// # Errors
    ///
    /// Returns an error when the image geometry does not match the config.
    pub fn forward_features(&mut self, images: &Tensor) -> Result<Tensor> {
        let mut tokens = self.patch_embed.forward(images)?;
        for block in &mut self.blocks {
            tokens = block.forward(&tokens)?;
        }
        let normed = self.final_ln.forward(&tokens)?;
        let (batch, p, d) = (normed.dims()[0], normed.dims()[1], normed.dims()[2]);
        // Mean pooling over the token axis, one output row per sample; the
        // per-sample loop runs across the pool for large eval batches.
        let mut pooled = vec![0.0f32; batch * d];
        let data = normed.data();
        let inv_p = 1.0 / p as f32;
        let pool_one = |base: usize, row: &mut [f32]| {
            let b = base / d;
            let sample = &data[b * p * d..(b + 1) * p * d];
            for token in sample.chunks_exact(d) {
                for (o, &t) in row.iter_mut().zip(token) {
                    *o += t;
                }
            }
            for o in row.iter_mut() {
                *o *= inv_p;
            }
        };
        if batch * p * d >= PAR_POOL_WORK {
            ParallelPool::global().scope_chunks(&mut pooled, d, pool_one);
        } else {
            for (b, row) in pooled.chunks_mut(d.max(1)).enumerate() {
                pool_one(b * d, row);
            }
        }
        self.cache_pool = Some((batch, p));
        Ok(Tensor::from_vec(pooled, &[batch, d])?)
    }

    /// Backpropagates a gradient with respect to the pooled features,
    /// accumulating gradients in the backbone (used for end-to-end retraining
    /// together with the fusion MLP).
    ///
    /// # Errors
    ///
    /// Returns an error when called before a forward pass.
    pub fn backward_from_features(&mut self, grad_features: &Tensor) -> Result<Tensor> {
        let (batch, p) = self
            .cache_pool
            .ok_or(ViTError::Nn(NnError::MissingForwardCache {
                layer: "VisionTransformer",
            }))?;
        let d = self.embed_dim();
        // Distribute the pooled gradient back over tokens (mean pooling),
        // one sample per chunk.
        let mut grad_tokens = vec![0.0f32; batch * p * d];
        let grad = grad_features.data();
        let inv_p = 1.0 / p as f32;
        let spread_one = |base: usize, sample: &mut [f32]| {
            let b = base / (p * d);
            let grow = &grad[b * d..(b + 1) * d];
            for token in sample.chunks_exact_mut(d) {
                for (o, &g) in token.iter_mut().zip(grow) {
                    *o = g * inv_p;
                }
            }
        };
        if batch * p * d >= PAR_POOL_WORK {
            ParallelPool::global().scope_chunks(&mut grad_tokens, p * d, spread_one);
        } else {
            for (b, sample) in grad_tokens.chunks_mut((p * d).max(1)).enumerate() {
                spread_one(b * p * d, sample);
            }
        }
        let mut g = Tensor::from_vec(grad_tokens, &[batch, p, d])?;
        g = self.final_ln.backward(&g)?;
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g)?;
        }
        Ok(self.patch_embed.backward(&g)?)
    }

    /// Predicts class indices for a batch of images.
    ///
    /// # Errors
    ///
    /// Returns an error when the image geometry does not match the config.
    pub fn predict(&mut self, images: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward_images(images)?;
        Ok(logits.argmax_last_axis()?)
    }

    /// Replaces the classification head with a freshly-initialized one of
    /// `num_outputs` outputs — used when a sub-model is retrained on its
    /// class subset (the subset classes plus one "other" output).
    pub fn replace_head(&mut self, num_outputs: usize, rng: &mut TensorRng) {
        self.head = Linear::new(self.embed_dim(), num_outputs, rng);
    }

    /// Total number of scalar parameters (measured, not analytic).
    pub fn parameter_count(&self) -> usize {
        Layer::parameter_count(self)
    }

    /// Memory footprint in bytes of the measured parameters (4 bytes each).
    pub fn memory_bytes(&self) -> u64 {
        self.parameter_count() as u64 * 4
    }

    // ------------------------------------------------------------------
    // Structured pruning (weight selection)
    // ------------------------------------------------------------------

    /// Stage-1 pruning: keep only the listed residual channels everywhere the
    /// residual width appears (patch embedding, every block, final norm and
    /// classification head).
    ///
    /// # Errors
    ///
    /// Returns [`ViTError::InvalidPruning`] for an empty keep list or
    /// out-of-range indices.
    pub fn prune_embed_channels(&self, keep: &[usize]) -> Result<VisionTransformer> {
        if keep.is_empty() {
            return Err(ViTError::InvalidPruning {
                message: "cannot prune away every residual channel".to_string(),
            });
        }
        let patch_embed = self.patch_embed.prune_embed_channels(keep)?;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            blocks.push(block.prune_embed_channels(keep)?);
        }
        let final_ln = self.final_ln.select_features(keep)?;
        let head = self.head.select_inputs(keep)?;
        VisionTransformer::from_parts(self.config.clone(), patch_embed, blocks, final_ln, head)
    }

    /// Stage-2 pruning: keep only the listed per-head inner dimensions inside
    /// every block's attention module.
    ///
    /// # Errors
    ///
    /// Returns an error when the keep lists are inconsistent.
    pub fn prune_head_dims(&self, keep_per_head: &[Vec<usize>]) -> Result<VisionTransformer> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            blocks.push(block.prune_head_dims(keep_per_head)?);
        }
        let patch_embed = self.clone_patch_embed()?;
        let final_ln = self.final_ln.clone();
        let head = self.head.clone();
        VisionTransformer::from_parts(self.config.clone(), patch_embed, blocks, final_ln, head)
    }

    /// Stage-3 pruning: keep only the listed FFN hidden units in every block.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    pub fn prune_ffn_hidden(&self, keep: &[usize]) -> Result<VisionTransformer> {
        if keep.is_empty() {
            return Err(ViTError::InvalidPruning {
                message: "cannot prune away every FFN hidden unit".to_string(),
            });
        }
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let fc1 = block.ffn().linears()[0].select_outputs(keep)?;
            let fc2 = block.ffn().linears()[1].select_inputs(keep)?;
            let attn = block
                .attn()
                .prune_embed_channels(&(0..block.embed_dim()).collect::<Vec<_>>())?;
            blocks.push(ViTBlock::from_parts(
                block.ln1().clone(),
                attn,
                block.ln2().clone(),
                rebuild_ffn(fc1, fc2)?,
            )?);
        }
        let patch_embed = self.clone_patch_embed()?;
        let final_ln = self.final_ln.clone();
        let head = self.head.clone();
        VisionTransformer::from_parts(self.config.clone(), patch_embed, blocks, final_ln, head)
    }

    fn clone_patch_embed(&self) -> Result<PatchEmbed> {
        PatchEmbed::from_parts(
            self.patch_embed.projection().clone(),
            self.patch_embed.pos_embed().value().clone(),
            self.config.channels,
            self.config.image_size,
            self.config.patch_size,
        )
    }
}

impl Layer for VisionTransformer {
    fn forward(&mut self, input: &Tensor) -> edvit_nn::Result<Tensor> {
        self.forward_images(input)
            .map_err(|e| NnError::InvalidConfig {
                message: e.to_string(),
            })
    }

    fn backward(&mut self, grad_output: &Tensor) -> edvit_nn::Result<Tensor> {
        let grad_features = self.head.backward(grad_output)?;
        self.backward_from_features(&grad_features)
            .map_err(|e| NnError::InvalidConfig {
                message: e.to_string(),
            })
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        let mut params = self.patch_embed.parameters_mut();
        for block in &mut self.blocks {
            params.extend(block.parameters_mut());
        }
        params.extend(self.final_ln.parameters_mut());
        params.extend(self.head.parameters_mut());
        params
    }

    fn parameters(&self) -> Vec<&Parameter> {
        let mut params = self.patch_embed.parameters();
        for block in &self.blocks {
            params.extend(block.parameters());
        }
        params.extend(self.final_ln.parameters());
        params.extend(self.head.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn tiny_model() -> VisionTransformer {
        let config = ViTConfig::tiny_test();
        VisionTransformer::new(&config, &mut TensorRng::new(0)).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let mut model = tiny_model();
        let mut rng = TensorRng::new(1);
        let x = rng.randn(&[3, 3, 16, 16], 0.0, 1.0);
        let logits = model.forward_images(&x).unwrap();
        assert_eq!(logits.dims(), &[3, 4]);
        let features = model.forward_features(&x).unwrap();
        assert_eq!(features.dims(), &[3, 32]);
        let preds = model.predict(&x).unwrap();
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&p| p < 4));
    }

    #[test]
    fn accessors() {
        let model = tiny_model();
        assert_eq!(model.embed_dim(), 32);
        assert_eq!(model.num_classes(), 4);
        assert_eq!(model.depth(), 2);
        assert_eq!(model.blocks().len(), 2);
        assert_eq!(model.config().variant, crate::ViTVariant::TinyTest);
        assert_eq!(model.memory_bytes(), model.parameter_count() as u64 * 4);
    }

    #[test]
    fn measured_params_match_analytic_model() {
        let config = ViTConfig::tiny_test();
        let model = VisionTransformer::new(&config, &mut TensorRng::new(0)).unwrap();
        let analytic = analysis::cost_of_config(&config);
        assert_eq!(model.parameter_count() as u64, analytic.params);
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut model = tiny_model();
        assert!(model
            .forward_images(&Tensor::zeros(&[1, 3, 32, 32]))
            .is_err());
        assert!(model
            .backward_from_features(&Tensor::zeros(&[1, 32]))
            .is_err());
    }

    #[test]
    fn layer_trait_backward_runs() {
        let mut model = tiny_model();
        let mut rng = TensorRng::new(2);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        let logits = Layer::forward(&mut model, &x).unwrap();
        let g = Layer::backward(&mut model, &Tensor::ones(logits.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // Every parameter received some gradient signal.
        let nonzero = model
            .parameters()
            .iter()
            .filter(|p| p.grad().norm_l1() > 0.0)
            .count();
        assert!(nonzero > model.parameters().len() / 2);
    }

    #[test]
    fn replace_head_changes_output_width() {
        let mut model = tiny_model();
        model.replace_head(3, &mut TensorRng::new(3));
        assert_eq!(model.num_classes(), 3);
        let mut rng = TensorRng::new(4);
        let x = rng.randn(&[1, 3, 16, 16], 0.0, 1.0);
        assert_eq!(model.forward_images(&x).unwrap().dims(), &[1, 3]);
    }

    #[test]
    fn prune_embed_channels_produces_working_smaller_model() {
        let model = tiny_model();
        let keep: Vec<usize> = (0..16).collect();
        let mut pruned = model.prune_embed_channels(&keep).unwrap();
        assert_eq!(pruned.embed_dim(), 16);
        assert!(pruned.parameter_count() < model.parameter_count());
        let mut rng = TensorRng::new(5);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        assert_eq!(pruned.forward_images(&x).unwrap().dims(), &[2, 4]);
        assert!(model.prune_embed_channels(&[]).is_err());
    }

    #[test]
    fn prune_head_dims_and_ffn_hidden_produce_working_models() {
        let model = tiny_model();
        let keep_heads: Vec<Vec<usize>> = (0..4).map(|_| vec![0, 3]).collect();
        let mut pruned = model.prune_head_dims(&keep_heads).unwrap();
        assert_eq!(pruned.blocks()[0].attn().head_dim(), 2);
        let mut rng = TensorRng::new(6);
        let x = rng.randn(&[1, 3, 16, 16], 0.0, 1.0);
        assert_eq!(pruned.forward_images(&x).unwrap().dims(), &[1, 4]);

        let keep_ffn: Vec<usize> = (0..32).collect();
        let mut pruned2 = model.prune_ffn_hidden(&keep_ffn).unwrap();
        assert_eq!(pruned2.blocks()[0].ffn_hidden(), 32);
        assert_eq!(pruned2.forward_images(&x).unwrap().dims(), &[1, 4]);
        assert!(model.prune_ffn_hidden(&[]).is_err());
    }

    #[test]
    fn three_stage_pruning_composes() {
        // Apply the full Fig. 2 sequence and verify the result still runs and
        // is strictly smaller.
        let model = tiny_model();
        let keep_channels: Vec<usize> = (0..16).collect();
        let stage1 = model.prune_embed_channels(&keep_channels).unwrap();
        let keep_heads: Vec<Vec<usize>> = (0..4).map(|_| vec![0, 1]).collect();
        let stage2 = stage1.prune_head_dims(&keep_heads).unwrap();
        let keep_ffn: Vec<usize> = (0..24).collect();
        let stage3 = stage2.prune_ffn_hidden(&keep_ffn).unwrap();
        assert!(stage3.parameter_count() < stage1.parameter_count());
        assert!(stage1.parameter_count() < model.parameter_count());
        let mut pruned = stage3;
        let mut rng = TensorRng::new(7);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        let logits = pruned.forward_images(&x).unwrap();
        assert_eq!(logits.dims(), &[2, 4]);
        assert!(logits.all_finite());
    }

    #[test]
    fn from_parts_validates() {
        let model = tiny_model();
        let bad_head = Linear::new(16, 4, &mut TensorRng::new(8));
        let pe = PatchEmbed::new(&ViTConfig::tiny_test(), &mut TensorRng::new(9)).unwrap();
        let blocks = vec![ViTBlock::new(32, 4, 8, 64, &mut TensorRng::new(10)).unwrap()];
        assert!(VisionTransformer::from_parts(
            ViTConfig::tiny_test(),
            pe,
            blocks,
            LayerNorm::new(32),
            bad_head
        )
        .is_err());
        let _ = model;
    }
}
