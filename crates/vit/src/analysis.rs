//! Closed-form FLOPs / parameter / memory model (Section III of the paper).
//!
//! The paper estimates energy and latency from multiply–accumulate (MAC)
//! counts: fully-connected layers contribute `FC_in × FC_out` MACs per token,
//! and multi-head self-attention contributes `3·p·d² + 2·p²·d` MACs for the
//! Q/K/V projections plus the two attention matrix products (we additionally
//! count the output projection `p·d²`, which the module structurally
//! contains). Parameters are counted exactly; memory is 4 bytes per `f32`
//! parameter.
//!
//! These formulas are what the partitioning and edge-simulation crates use —
//! no actual tensor computation is needed to regenerate Table I, Table II or
//! the latency/memory curves.

use serde::{Deserialize, Serialize};

use crate::{PrunedViTConfig, ViTConfig};

/// Bytes occupied by one `f32` parameter.
pub const BYTES_PER_PARAM: u64 = 4;

/// Aggregate cost of a model: parameters, MAC-FLOPs per inference sample and
/// memory footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCost {
    /// Number of scalar parameters.
    pub params: u64,
    /// Multiply–accumulate operations for a single input sample.
    pub flops: u64,
    /// Parameter memory in bytes (4 bytes per parameter).
    pub memory_bytes: u64,
}

impl ModelCost {
    /// Memory footprint in megabytes (decimal MB as in the paper's tables).
    pub fn memory_mb(&self) -> f64 {
        self.memory_bytes as f64 / 1.0e6
    }

    /// FLOPs expressed in units of 10⁹ (the "G" column of Table II).
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / 1.0e9
    }

    /// Parameters in millions (the "×10⁶" column of Table I).
    pub fn params_millions(&self) -> f64 {
        self.params as f64 / 1.0e6
    }
}

/// Internal width description shared by full and pruned configurations.
#[derive(Debug, Clone, Copy)]
struct Widths {
    embed_dim: u64,
    attn_inner: u64,
    ffn_hidden: u64,
    depth: u64,
    patches: u64,
    patch_dim: u64,
    classes: u64,
}

impl Widths {
    fn of_config(c: &ViTConfig) -> Widths {
        Widths {
            embed_dim: c.embed_dim as u64,
            attn_inner: c.embed_dim as u64,
            ffn_hidden: c.ffn_hidden() as u64,
            depth: c.depth as u64,
            patches: c.num_patches() as u64,
            patch_dim: c.patch_dim() as u64,
            classes: c.num_classes as u64,
        }
    }

    fn of_pruned(p: &PrunedViTConfig) -> Widths {
        let base = p.base();
        Widths {
            embed_dim: p.embed_dim() as u64,
            attn_inner: (p.heads() * p.head_dim()) as u64,
            ffn_hidden: p.ffn_hidden() as u64,
            depth: base.depth as u64,
            patches: base.num_patches() as u64,
            patch_dim: base.patch_dim() as u64,
            classes: base.num_classes as u64,
        }
    }

    fn params(&self) -> u64 {
        let d = self.embed_dim;
        let a = self.attn_inner;
        let c = self.ffn_hidden;
        let patch_embed = self.patch_dim * d + d;
        let pos_embed = self.patches * d;
        let per_block = {
            let ln1 = 2 * d;
            let qkv = 3 * (d * a + a);
            let out = a * d + d;
            let ln2 = 2 * d;
            let ffn = d * c + c + c * d + d;
            ln1 + qkv + out + ln2 + ffn
        };
        let final_ln = 2 * d;
        let head = d * self.classes + self.classes;
        patch_embed + pos_embed + self.depth * per_block + final_ln + head
    }

    fn flops(&self) -> u64 {
        let d = self.embed_dim;
        let a = self.attn_inner;
        let c = self.ffn_hidden;
        let p = self.patches;
        let patch_embed = p * self.patch_dim * d;
        let per_block = {
            // Q, K, V projections.
            let qkv = 3 * p * d * a;
            // Q Kᵀ and softmax(·) V.
            let attn = 2 * p * p * a;
            // Output projection back to the residual width.
            let out = p * a * d;
            // Two FFN matmuls.
            let ffn = 2 * p * d * c;
            qkv + attn + out + ffn
        };
        let head = d * self.classes;
        patch_embed + self.depth * per_block + head
    }
}

/// Cost of a full (unpruned) Vision Transformer configuration.
///
/// # Example
///
/// ```
/// use edvit_vit::{analysis, ViTConfig};
///
/// let cost = analysis::cost_of_config(&ViTConfig::vit_base(10));
/// // Table I: 86.6 M parameters, ~16.9 GFLOPs, ~330 MB.
/// assert!((cost.params_millions() - 86.6).abs() < 1.5);
/// assert!((cost.gflops() - 16.86).abs() < 1.0);
/// ```
pub fn cost_of_config(config: &ViTConfig) -> ModelCost {
    let w = Widths::of_config(config);
    let params = w.params();
    ModelCost {
        params,
        flops: w.flops(),
        memory_bytes: params * BYTES_PER_PARAM,
    }
}

/// Cost of a pruned sub-model described by a [`PrunedViTConfig`].
pub fn cost_of_pruned(pruned: &PrunedViTConfig) -> ModelCost {
    let w = Widths::of_pruned(pruned);
    let params = w.params();
    ModelCost {
        params,
        flops: w.flops(),
        memory_bytes: params * BYTES_PER_PARAM,
    }
}

/// Communication payload, in bytes, of the pooled feature a sub-model sends to
/// the fusion device (`s·d` f32 values, Section V-D).
pub fn feature_payload_bytes(pruned: &PrunedViTConfig) -> u64 {
    pruned.feature_dim() as u64 * BYTES_PER_PARAM
}

/// Raw input image size in bytes (`channels × H × W`, one byte per pixel as in
/// the paper's 150 528-byte figure for a 224×224×3 image).
pub fn raw_image_bytes(config: &ViTConfig) -> u64 {
    (config.channels * config.image_size * config.image_size) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ViTError;

    #[test]
    fn table_one_parameter_counts() {
        let small = cost_of_config(&ViTConfig::vit_small(1000));
        let base = cost_of_config(&ViTConfig::vit_base(1000));
        let large = cost_of_config(&ViTConfig::vit_large(1000));
        // Paper Table I: 22.1 M / 86.6 M / 304.4 M (±3% tolerance: our model
        // counts the classification head for 1000 classes and learned
        // positional embeddings explicitly).
        assert!(
            (small.params_millions() - 22.1).abs() < 1.0,
            "{}",
            small.params_millions()
        );
        assert!(
            (base.params_millions() - 86.6).abs() < 2.0,
            "{}",
            base.params_millions()
        );
        assert!(
            (large.params_millions() - 304.4).abs() < 6.0,
            "{}",
            large.params_millions()
        );
    }

    #[test]
    fn table_one_flops() {
        let small = cost_of_config(&ViTConfig::vit_small(1000));
        let base = cost_of_config(&ViTConfig::vit_base(1000));
        let large = cost_of_config(&ViTConfig::vit_large(1000));
        // Paper Table I: 4.25 / 16.86 / 59.69 GFLOPs (MACs). Our count also
        // includes the attention output projection (which the paper's closed
        // form omits), putting us ~4-8% above; allow that margin.
        assert!((small.gflops() - 4.25).abs() < 0.45, "{}", small.gflops());
        assert!((base.gflops() - 16.86).abs() < 1.0, "{}", base.gflops());
        assert!((large.gflops() - 59.69).abs() < 3.5, "{}", large.gflops());
    }

    #[test]
    fn table_one_memory() {
        let base = cost_of_config(&ViTConfig::vit_base(1000));
        // ~330 MB for ViT-Base.
        assert!(
            (base.memory_mb() - 330.0).abs() < 20.0,
            "{}",
            base.memory_mb()
        );
        let small = cost_of_config(&ViTConfig::vit_small(1000));
        assert!(
            (small.memory_mb() - 85.0).abs() < 10.0,
            "{}",
            small.memory_mb()
        );
    }

    #[test]
    fn pruning_halves_width_quarters_flops() {
        let base = ViTConfig::vit_base(10);
        let full = cost_of_config(&base);
        let half = cost_of_pruned(&PrunedViTConfig::new(base.clone(), 6).unwrap());
        let ratio = half.flops as f64 / full.flops as f64;
        // Dominant terms scale with s²; the p²·d attention term scales with s,
        // so the ratio sits slightly above 0.25.
        assert!(ratio > 0.2 && ratio < 0.32, "ratio {ratio}");
        // Table II: ViT-Base sub-model at 2 devices has ~4.25 GFLOPs.
        assert!((half.gflops() - 4.25).abs() < 0.6, "{}", half.gflops());
        // Unpruned plan matches the full model cost.
        let unpruned = cost_of_pruned(&PrunedViTConfig::new(base, 0).unwrap());
        assert_eq!(unpruned.flops, full.flops);
        assert_eq!(unpruned.params, full.params);
    }

    #[test]
    fn deeper_pruning_monotonically_shrinks() -> Result<(), ViTError> {
        let base = ViTConfig::vit_base(10);
        let mut last = u64::MAX;
        for hp in 0..12 {
            let cost = cost_of_pruned(&PrunedViTConfig::new(base.clone(), hp)?);
            assert!(cost.flops < last, "flops must strictly decrease");
            last = cost.flops;
        }
        Ok(())
    }

    #[test]
    fn communication_payload_matches_paper() {
        let base = ViTConfig::vit_base(10);
        let half = PrunedViTConfig::new(base.clone(), 6).unwrap();
        assert_eq!(feature_payload_bytes(&half), 1536);
        // At s = 1/6 the payload is 512 bytes (10-device setting).
        let tenth = PrunedViTConfig::new(base.clone(), 10).unwrap();
        assert_eq!(feature_payload_bytes(&tenth), 512);
        assert_eq!(raw_image_bytes(&base), 150_528);
    }

    #[test]
    fn memory_is_params_times_four() {
        let c = cost_of_config(&ViTConfig::tiny_test());
        assert_eq!(c.memory_bytes, c.params * 4);
        assert!(c.memory_mb() > 0.0);
        assert!(c.params_millions() < 1.0);
    }
}
