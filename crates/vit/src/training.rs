//! Supervised training and evaluation loops.
//!
//! The paper trains with Adam (learning rate 1e-4, decaying) and batch size
//! 256 on A100 GPUs; at our CPU scale the same loop runs with smaller batches
//! and the scaled-down configurations, which is sufficient for the accuracy
//! *trends* ED-ViT's experiments rely on.

use edvit_nn::{Adam, CrossEntropyLoss, Layer, LrSchedule, Optimizer};
use edvit_tensor::{init::TensorRng, stats, Tensor};

use crate::Result;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (the paper uses 1e-4; scaled-down models train
    /// well with 1e-3).
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay applied every epoch.
    pub lr_decay: f32,
    /// Seed controlling shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            learning_rate: 1e-3,
            lr_decay: 0.9,
            seed: 0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch.
    pub train_accuracy: f32,
}

/// Outcome of a full training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Statistics per epoch in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final-epoch training accuracy (0.0 when no epoch ran).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }

    /// Final-epoch mean loss (+∞ when no epoch ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::INFINITY, |e| e.mean_loss)
    }
}

/// Trains any [`Layer`] that maps inputs `[n, ...]` to logits `[n, classes]`
/// with Adam + cross-entropy.
///
/// `inputs` must have the batch axis first and `labels.len()` must equal the
/// number of input rows.
///
/// # Errors
///
/// Propagates layer and tensor errors (shape mismatches, invalid labels).
pub fn train_classifier<M: Layer + ?Sized>(
    model: &mut M,
    inputs: &Tensor,
    labels: &[usize],
    config: &TrainConfig,
) -> Result<TrainReport> {
    let n = inputs.dims()[0];
    let mut optimizer = Adam::new(config.learning_rate);
    let schedule = LrSchedule::new(config.learning_rate, config.lr_decay, 1);
    let mut loss_fn = CrossEntropyLoss::new();
    let mut rng = TensorRng::new(config.seed);
    let mut report = TrainReport { epochs: Vec::new() };
    model.set_training(true);

    for epoch in 0..config.epochs {
        schedule.apply(&mut optimizer, epoch as u64);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut losses = Vec::new();
        let mut correct = 0usize;
        let mut seen = 0usize;
        for batch_idx in order.chunks(config.batch_size.max(1)) {
            let batch_x = inputs.gather_rows(batch_idx)?;
            let batch_y: Vec<usize> = batch_idx.iter().map(|&i| labels[i]).collect();
            model.zero_grad();
            let logits = model.forward(&batch_x)?;
            let loss = loss_fn.forward(&logits, &batch_y)?;
            let grad = loss_fn.backward()?;
            model.backward(&grad)?;
            optimizer.step(&mut model.parameters_mut())?;
            losses.push(loss);
            let preds = logits.argmax_last_axis()?;
            correct += preds.iter().zip(&batch_y).filter(|(p, y)| p == y).count();
            seen += batch_y.len();
        }
        report.epochs.push(EpochStats {
            epoch,
            mean_loss: if losses.is_empty() {
                f32::INFINITY
            } else {
                losses.iter().sum::<f32>() / losses.len() as f32
            },
            train_accuracy: if seen == 0 {
                0.0
            } else {
                correct as f32 / seen as f32
            },
        });
    }
    model.set_training(false);
    Ok(report)
}

/// Evaluates classification accuracy of a model on a labelled set.
///
/// # Errors
///
/// Propagates layer and tensor errors.
pub fn evaluate_classifier<M: Layer + ?Sized>(
    model: &mut M,
    inputs: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32> {
    let n = inputs.dims()[0];
    model.set_training(false);
    let mut predictions = Vec::with_capacity(n);
    let indices: Vec<usize> = (0..n).collect();
    for batch_idx in indices.chunks(batch_size.max(1)) {
        let batch_x = inputs.gather_rows(batch_idx)?;
        let logits = model.forward(&batch_x)?;
        predictions.extend(logits.argmax_last_axis()?);
    }
    Ok(stats::accuracy(&predictions, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ViTConfig, VisionTransformer};
    use edvit_nn::{Mlp, MlpActivation};

    /// Builds a small linearly-separable 3-class problem.
    fn toy_problem(n_per_class: usize, dim: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for _ in 0..n_per_class {
                let mut row = rng.randn(&[dim], 0.0, 0.3).into_vec();
                row[class % dim] += 2.0;
                rows.extend(row);
                labels.push(class);
            }
        }
        (
            Tensor::from_vec(rows, &[3 * n_per_class, dim]).unwrap(),
            labels,
        )
    }

    #[test]
    fn mlp_learns_separable_problem() {
        let (x, y) = toy_problem(20, 8, 1);
        let mut model =
            Mlp::with_activation(&[8, 16, 3], MlpActivation::Gelu, &mut TensorRng::new(2)).unwrap();
        let config = TrainConfig {
            epochs: 30,
            batch_size: 16,
            learning_rate: 5e-3,
            lr_decay: 0.98,
            seed: 3,
        };
        let report = train_classifier(&mut model, &x, &y, &config).unwrap();
        assert!(
            report.final_accuracy() > 0.9,
            "accuracy {}",
            report.final_accuracy()
        );
        assert!(report.final_loss() < 0.5);
        assert_eq!(report.epochs.len(), 30);
        let eval = evaluate_classifier(&mut model, &x, &y, 16).unwrap();
        assert!(eval > 0.9);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (x, y) = toy_problem(15, 6, 4);
        let mut model = Mlp::new(&[6, 12, 3], &mut TensorRng::new(5)).unwrap();
        let config = TrainConfig {
            epochs: 15,
            batch_size: 8,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut model, &x, &y, &config).unwrap();
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.final_loss();
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn tiny_vit_trains_above_chance() {
        // Build a 4-class image problem where each class lights up a different
        // quadrant of the image.
        let config = ViTConfig::tiny_test();
        let mut rng = TensorRng::new(6);
        let n_per_class = 12;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for class in 0..config.num_classes {
            for _ in 0..n_per_class {
                let mut img = rng.randn(&[3 * 16 * 16], 0.0, 0.2).into_vec();
                let (qy, qx) = (class / 2, class % 2);
                for c in 0..3 {
                    for y in 0..8 {
                        for x in 0..8 {
                            img[c * 256 + (qy * 8 + y) * 16 + (qx * 8 + x)] += 1.5;
                        }
                    }
                }
                images.extend(img);
                labels.push(class);
            }
        }
        let n = config.num_classes * n_per_class;
        let x = Tensor::from_vec(images, &[n, 3, 16, 16]).unwrap();
        let mut model = VisionTransformer::new(&config, &mut TensorRng::new(7)).unwrap();
        let tc = TrainConfig {
            epochs: 8,
            batch_size: 16,
            learning_rate: 2e-3,
            lr_decay: 0.95,
            seed: 8,
        };
        let report = train_classifier(&mut model, &x, &labels, &tc).unwrap();
        // Chance is 25%; the quadrant signal is strong enough to beat it fast.
        assert!(
            report.final_accuracy() > 0.5,
            "ViT accuracy {} not above chance",
            report.final_accuracy()
        );
    }

    #[test]
    fn default_config_is_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0 && c.learning_rate > 0.0);
        let empty = TrainReport { epochs: vec![] };
        assert_eq!(empty.final_accuracy(), 0.0);
        assert!(empty.final_loss().is_infinite());
    }
}
