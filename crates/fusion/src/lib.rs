//! # edvit-fusion
//!
//! The result-fusion stage of ED-ViT (Section IV-E): the aggregation device
//! concatenates the feature vectors produced by the sub-models and feeds them
//! through a small tower-structured MLP
//! (`N·d·s → λ·N·d·s → num_classes`, λ = 0.5 by default) to produce the final
//! prediction. The MLP is trained once after all sub-models are trained.
//!
//! # Example
//!
//! ```
//! use edvit_fusion::{FusionConfig, FusionMlp};
//! use edvit_tensor::{init::TensorRng, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FusionConfig::new(16, 4);
//! let mut fusion = FusionMlp::new(&config, &mut TensorRng::new(0))?;
//! let features = TensorRng::new(1).randn(&[8, 16], 0.0, 1.0);
//! let logits = fusion.predict_logits(&features)?;
//! assert_eq!(logits.dims(), &[8, 4]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

use edvit_nn::{Layer, Mlp, MlpActivation, NnError, Parameter};
use edvit_tensor::{init::TensorRng, Tensor};

/// Configuration of the tower-structured fusion MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Total input width: the sum of the sub-models' feature dimensions
    /// (`N × d × s` for homogeneous pruning).
    pub input_dim: usize,
    /// Number of global classes the fused prediction covers.
    pub num_classes: usize,
    /// Shrinking hyper-parameter λ of the hidden layer (paper default 0.5).
    pub lambda: f32,
}

impl FusionConfig {
    /// Creates a configuration with the paper's default λ = 0.5.
    pub fn new(input_dim: usize, num_classes: usize) -> Self {
        FusionConfig {
            input_dim,
            num_classes,
            lambda: 0.5,
        }
    }

    /// Overrides the shrinking factor λ.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Width of the hidden layer, `⌈λ · input_dim⌉`, at least one unit.
    pub fn hidden_dim(&self) -> usize {
        ((self.input_dim as f32 * self.lambda).ceil() as usize).max(1)
    }

    /// Multiply–accumulate operations of one fusion forward pass; feeds the
    /// latency model's fusion term.
    pub fn flops(&self) -> u64 {
        (self.input_dim * self.hidden_dim() + self.hidden_dim() * self.num_classes) as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero sizes or a non-positive λ.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.input_dim == 0 || self.num_classes == 0 || self.lambda <= 0.0 {
            return Err(NnError::InvalidConfig {
                message: format!("invalid fusion configuration: {self:?}"),
            });
        }
        Ok(())
    }
}

/// The trained fusion model run on the aggregation device.
#[derive(Debug, Clone)]
pub struct FusionMlp {
    config: FusionConfig,
    mlp: Mlp,
}

impl FusionMlp {
    /// Creates an untrained fusion MLP.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: &FusionConfig, rng: &mut TensorRng) -> Result<Self, NnError> {
        config.validate()?;
        let mlp = Mlp::with_activation(
            &[config.input_dim, config.hidden_dim(), config.num_classes],
            MlpActivation::Gelu,
            rng,
        )?;
        Ok(FusionMlp {
            config: config.clone(),
            mlp,
        })
    }

    /// The configuration of this fusion model.
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// Number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.mlp.parameter_count()
    }

    /// Memory footprint of the fusion model in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.parameter_count() as u64 * 4
    }

    /// Runs the fusion MLP on a batch of concatenated features `[n, input]`,
    /// returning logits `[n, classes]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature width does not match the config.
    pub fn predict_logits(&mut self, features: &Tensor) -> Result<Tensor, NnError> {
        self.mlp.forward(features)
    }

    /// Argmax class prediction per sample.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature width does not match the config.
    pub fn predict(&mut self, features: &Tensor) -> Result<Vec<usize>, NnError> {
        let logits = self.predict_logits(features)?;
        logits.argmax_last_axis().map_err(NnError::from)
    }
}

impl Layer for FusionMlp {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.mlp.forward(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        self.mlp.backward(grad_output)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.mlp.parameters_mut()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.mlp.parameters()
    }
}

/// Softmax-averaging fallback used by the "w/o retrain" ablation (Table IV):
/// instead of a trained MLP, the per-sub-model class distributions are summed
/// in global class space and the argmax is taken.
///
/// `per_submodel_probs[j]` holds sub-model `j`'s probabilities `[n, |C_j|+1]`
/// (its classes plus an optional "other" column), and `global_classes[j]`
/// maps each local column (except the "other" one) to a global class index.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when shapes or mappings are
/// inconsistent.
pub fn average_softmax_fusion(
    per_submodel_probs: &[Tensor],
    global_classes: &[Vec<usize>],
    num_global_classes: usize,
) -> Result<Vec<usize>, NnError> {
    if per_submodel_probs.is_empty() || per_submodel_probs.len() != global_classes.len() {
        return Err(NnError::InvalidConfig {
            message: "probability tensors and class mappings must be equal-length and non-empty"
                .to_string(),
        });
    }
    let n = per_submodel_probs[0].dims()[0];
    let mut scores = vec![0.0f32; n * num_global_classes];
    for (probs, classes) in per_submodel_probs.iter().zip(global_classes) {
        if probs.rank() != 2 || probs.dims()[0] != n {
            return Err(NnError::InvalidConfig {
                message: format!("probability tensor has unexpected shape {:?}", probs.dims()),
            });
        }
        let cols = probs.dims()[1];
        if classes.len() > cols {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "{} class mappings but only {cols} probability columns",
                    classes.len()
                ),
            });
        }
        for (local, &global) in classes.iter().enumerate() {
            if global >= num_global_classes {
                return Err(NnError::InvalidConfig {
                    message: format!("global class {global} out of range"),
                });
            }
            for i in 0..n {
                scores[i * num_global_classes + global] += probs.data()[i * cols + local];
            }
        }
    }
    let mut predictions = Vec::with_capacity(n);
    for i in 0..n {
        let row = &scores[i * num_global_classes..(i + 1) * num_global_classes];
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        predictions.push(best);
    }
    Ok(predictions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_nn::{Adam, CrossEntropyLoss, Optimizer};

    #[test]
    fn config_dimensions_and_flops() {
        let c = FusionConfig::new(768, 10);
        assert_eq!(c.hidden_dim(), 384);
        assert_eq!(c.flops(), (768 * 384 + 384 * 10) as u64);
        let c = FusionConfig::new(10, 3).with_lambda(0.1);
        assert_eq!(c.hidden_dim(), 1);
        assert!(FusionConfig::new(0, 4).validate().is_err());
        assert!(FusionConfig::new(4, 0).validate().is_err());
        assert!(FusionConfig::new(4, 4).with_lambda(0.0).validate().is_err());
    }

    #[test]
    fn fusion_mlp_shapes_and_memory() {
        let config = FusionConfig::new(24, 5);
        let mut fusion = FusionMlp::new(&config, &mut TensorRng::new(0)).unwrap();
        assert_eq!(fusion.config().num_classes, 5);
        let features = TensorRng::new(1).randn(&[3, 24], 0.0, 1.0);
        assert_eq!(fusion.predict_logits(&features).unwrap().dims(), &[3, 5]);
        assert_eq!(fusion.predict(&features).unwrap().len(), 3);
        assert_eq!(fusion.memory_bytes(), fusion.parameter_count() as u64 * 4);
        assert!(fusion.predict_logits(&Tensor::zeros(&[3, 25])).is_err());
    }

    #[test]
    fn fusion_mlp_learns_a_simple_mapping() {
        // Features where the first 4 dims encode the class one-hot.
        let mut rng = TensorRng::new(2);
        let n = 64;
        let dim = 8;
        let mut features = rng.randn(&[n, dim], 0.0, 0.3);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 4;
            labels.push(class);
            let idx = i * dim + class;
            features.data_mut()[idx] += 2.0;
        }
        let config = FusionConfig::new(dim, 4);
        let mut fusion = FusionMlp::new(&config, &mut TensorRng::new(3)).unwrap();
        let mut optimizer = Adam::new(2e-2);
        let mut loss_fn = CrossEntropyLoss::new();
        for _ in 0..250 {
            fusion.zero_grad();
            let logits = fusion.forward(&features).unwrap();
            loss_fn.forward(&logits, &labels).unwrap();
            let grad = loss_fn.backward().unwrap();
            fusion.backward(&grad).unwrap();
            optimizer.step(&mut fusion.parameters_mut()).unwrap();
        }
        let preds = fusion.predict(&features).unwrap();
        let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f32 / n as f32;
        assert!(acc > 0.9, "fusion accuracy {acc}");
    }

    #[test]
    fn average_softmax_fusion_maps_local_to_global() {
        // Two sub-models over 4 global classes: {0,1} and {2,3}, each with an
        // extra "other" column that must be ignored.
        let probs_a =
            Tensor::from_vec(vec![0.8, 0.1, 0.1, /* sample 2 */ 0.1, 0.2, 0.7], &[2, 3]).unwrap();
        let probs_b =
            Tensor::from_vec(vec![0.1, 0.2, 0.7, /* sample 2 */ 0.6, 0.3, 0.1], &[2, 3]).unwrap();
        let preds =
            average_softmax_fusion(&[probs_a, probs_b], &[vec![0, 1], vec![2, 3]], 4).unwrap();
        // Sample 1: class 0 has 0.8, nothing beats it. Sample 2: class 2 has 0.6.
        assert_eq!(preds, vec![0, 2]);
    }

    #[test]
    fn average_softmax_fusion_validation() {
        let p = Tensor::zeros(&[2, 3]);
        assert!(average_softmax_fusion(&[], &[], 4).is_err());
        assert!(average_softmax_fusion(std::slice::from_ref(&p), &[vec![0], vec![1]], 4).is_err());
        assert!(average_softmax_fusion(std::slice::from_ref(&p), &[vec![0, 1, 2, 3]], 4).is_err());
        assert!(average_softmax_fusion(std::slice::from_ref(&p), &[vec![9]], 4).is_err());
        assert!(average_softmax_fusion(&[p], &[vec![0, 1]], 4).is_ok());
    }
}
