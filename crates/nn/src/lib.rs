//! # edvit-nn
//!
//! Neural-network building blocks with hand-derived backward passes, used to
//! construct the Vision Transformer (`edvit-vit`), the CNN/SNN baselines
//! (`edvit-baselines`) and the fusion MLP (`edvit-fusion`) of the ED-ViT
//! reproduction.
//!
//! The crate intentionally avoids a tape-based autograd: every layer caches
//! exactly what its backward pass needs and exposes
//! [`Layer::forward`] / [`Layer::backward`]. This keeps the memory profile
//! predictable (important when simulating memory-constrained edge devices) and
//! makes each gradient auditable against finite differences, which the test
//! suite does for every layer.
//!
//! # Example
//!
//! ```
//! use edvit_nn::{Layer, Linear, Sequential, Relu, CrossEntropyLoss, Sgd, Optimizer};
//! use edvit_tensor::{init::TensorRng, Tensor};
//!
//! # fn main() -> Result<(), edvit_nn::NnError> {
//! let mut rng = TensorRng::new(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut rng)) as Box<dyn Layer>,
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 3, &mut rng)),
//! ]);
//! let x = rng.randn(&[2, 4], 0.0, 1.0);
//! let logits = net.forward(&x)?;
//! let mut loss = CrossEntropyLoss::new();
//! let value = loss.forward(&logits, &[0, 2])?;
//! let grad = loss.backward()?;
//! net.backward(&grad)?;
//! Sgd::new(0.1).step(&mut net.parameters_mut())?;
//! assert!(value > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod activation;
mod attention;
mod conv;
mod dropout;
mod error;
mod layernorm;
mod linear;
mod loss;
mod mlp;
mod module;
mod optimizer;
mod param;
mod pool;

#[cfg(test)]
pub(crate) mod testing;

pub use activation::{Gelu, Relu};
pub use attention::MultiHeadSelfAttention;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use error::NnError;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use loss::{CrossEntropyLoss, MseLoss};
pub use mlp::{Mlp, MlpActivation};
pub use module::{Layer, Sequential};
pub use optimizer::{Adam, LrSchedule, Optimizer, Sgd};
pub use param::{total_parameters, Parameter};
pub use pool::{AvgPool2d, Flatten, MaxPool2d};

/// Convenience result alias for fallible layer operations.
pub type Result<T> = std::result::Result<T, NnError>;
