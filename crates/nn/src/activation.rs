use edvit_tensor::{ops, Tensor};

use crate::{Layer, NnError, Parameter, Result};

/// Rectified linear unit activation layer.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, Relu};
/// use edvit_tensor::Tensor;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2])?)?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cache_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.cache_input = Some(input.clone());
        Ok(input.relu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Relu" })?;
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        Ok(grad_output.mul(&mask)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }
}

/// Gaussian Error Linear Unit activation layer (tanh approximation), the
/// nonlinearity used in Vision Transformer feed-forward blocks.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache_input: Option<Tensor>,
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Gelu { cache_input: None }
    }
}

impl Layer for Gelu {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.cache_input = Some(input.clone());
        Ok(input.gelu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Gelu" })?;
        let dgelu = x.map(ops::gelu_grad_scalar);
        Ok(grad_output.mul(&dgelu)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;
    use edvit_tensor::Tensor;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0], &[4]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[1])).is_err());
        assert!(relu.parameters().is_empty());
    }

    #[test]
    fn gelu_forward_positive_passthrough() {
        let mut gelu = Gelu::new();
        let x = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        let y = gelu.forward(&x).unwrap();
        assert!((y.data()[0] - 5.0).abs() < 1e-2);
    }

    #[test]
    fn gelu_backward_requires_forward() {
        let mut gelu = Gelu::new();
        assert!(gelu.backward(&Tensor::ones(&[1])).is_err());
        assert!(gelu.parameters().is_empty());
    }

    #[test]
    fn relu_gradcheck() {
        finite_difference_check(Box::new(Relu::new()), &[3, 4], 2e-2, 11);
    }

    #[test]
    fn gelu_gradcheck() {
        finite_difference_check(Box::new(Gelu::new()), &[3, 4], 2e-2, 12);
    }
}
