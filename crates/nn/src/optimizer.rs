use edvit_tensor::Tensor;

use crate::{NnError, Parameter, Result};

/// A first-order optimizer updating parameters in place from their
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update step to every parameter, then leaves gradients
    /// untouched (call [`crate::Layer::zero_grad`] separately, mirroring the
    /// PyTorch training loop the paper uses).
    ///
    /// # Errors
    ///
    /// Returns an error when internal state and parameter shapes diverge,
    /// which indicates the parameter list changed between steps.
    fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by the decay schedule).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        if self.momentum == 0.0 {
            for p in params.iter_mut() {
                let grad = p.grad().clone();
                p.value_mut().add_scaled_assign(&grad, -self.lr)?;
            }
            return Ok(());
        }
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
        }
        if self.velocity.len() != params.len() {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "optimizer state has {} slots but {} parameters were passed",
                    self.velocity.len(),
                    params.len()
                ),
            });
        }
        for (i, p) in params.iter_mut().enumerate() {
            let grad = p.grad().clone();
            self.velocity[i] = self.velocity[i].scale(self.momentum).add(&grad)?;
            let v = self.velocity[i].clone();
            p.value_mut().add_scaled_assign(&v, -self.lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2014), the optimizer the paper trains with
/// (`lr = 1e-4`, decaying).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
        }
        if self.m.len() != params.len() {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "optimizer state has {} slots but {} parameters were passed",
                    self.m.len(),
                    params.len()
                ),
            });
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (i, p) in params.iter_mut().enumerate() {
            if self.m[i].dims() != p.value().dims() {
                return Err(NnError::InvalidConfig {
                    message: format!(
                        "parameter {} changed shape mid-training: state {:?} vs value {:?}",
                        p.name(),
                        self.m[i].dims(),
                        p.value().dims()
                    ),
                });
            }
            let grad = p.grad().clone();
            self.m[i] = self.m[i]
                .scale(self.beta1)
                .add(&grad.scale(1.0 - self.beta1))?;
            let grad_sq = grad.mul(&grad)?;
            self.v[i] = self.v[i]
                .scale(self.beta2)
                .add(&grad_sq.scale(1.0 - self.beta2))?;
            let m_hat = self.m[i].scale(1.0 / bias1);
            let v_hat = self.v[i].scale(1.0 / bias2);
            let eps = self.eps;
            let update = m_hat.zip(&v_hat, |m, v| m / (v.sqrt() + eps))?;
            p.value_mut().add_scaled_assign(&update, -self.lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Multiplicative learning-rate decay applied every `every` steps, mirroring
/// the "decaying learning rate initialized to 1e-4" schedule in the paper.
#[derive(Debug, Clone)]
pub struct LrSchedule {
    initial_lr: f32,
    decay: f32,
    every: u64,
}

impl LrSchedule {
    /// Creates a step-decay schedule.
    pub fn new(initial_lr: f32, decay: f32, every: u64) -> Self {
        LrSchedule {
            initial_lr,
            decay,
            every: every.max(1),
        }
    }

    /// Learning rate to use at global step `step`.
    pub fn lr_at(&self, step: u64) -> f32 {
        self.initial_lr * self.decay.powf((step / self.every) as f32)
    }

    /// Applies the schedule to an optimizer for the given step.
    pub fn apply<O: Optimizer + ?Sized>(&self, optimizer: &mut O, step: u64) {
        optimizer.set_learning_rate(self.lr_at(step));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: f32) -> Parameter {
        Parameter::new("x", Tensor::from_vec(vec![start], &[1]).unwrap())
    }

    /// Minimizes f(x) = x^2 whose gradient is 2x.
    fn run_optimizer<O: Optimizer>(mut opt: O, steps: usize, start: f32) -> f32 {
        let mut p = quadratic_param(start);
        for _ in 0..steps {
            p.zero_grad();
            let x = p.value().data()[0];
            p.accumulate_grad(&Tensor::from_vec(vec![2.0 * x], &[1]).unwrap())
                .unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        p.value().data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run_optimizer(Sgd::new(0.1), 100, 5.0);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = run_optimizer(Sgd::with_momentum(0.05, 0.9), 200, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run_optimizer(Adam::new(0.1), 300, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_counts_steps_and_rejects_changed_params() {
        let mut adam = Adam::new(0.01);
        let mut p = quadratic_param(1.0);
        adam.step(&mut [&mut p]).unwrap();
        assert_eq!(adam.steps_taken(), 1);
        let mut p2 = Parameter::new("y", Tensor::zeros(&[3]));
        // Same count but different shape -> explicit error.
        assert!(adam.step(&mut [&mut p2]).is_err());
        // Different count -> explicit error.
        let mut q = quadratic_param(0.0);
        assert!(adam.step(&mut [&mut p, &mut q]).is_err());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut sgd = Sgd::new(0.5);
        assert_eq!(sgd.learning_rate(), 0.5);
        sgd.set_learning_rate(0.25);
        assert_eq!(sgd.learning_rate(), 0.25);
        let mut adam = Adam::with_betas(0.3, 0.8, 0.99);
        assert_eq!(adam.learning_rate(), 0.3);
        adam.set_learning_rate(0.1);
        assert_eq!(adam.learning_rate(), 0.1);
    }

    #[test]
    fn lr_schedule_decays() {
        let sched = LrSchedule::new(1e-4, 0.5, 10);
        assert_eq!(sched.lr_at(0), 1e-4);
        assert!((sched.lr_at(10) - 5e-5).abs() < 1e-9);
        assert!((sched.lr_at(25) - 2.5e-5).abs() < 1e-9);
        let mut opt = Sgd::new(1.0);
        sched.apply(&mut opt, 20);
        assert!((opt.learning_rate() - 2.5e-5).abs() < 1e-9);
    }
}
