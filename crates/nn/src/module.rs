use edvit_tensor::Tensor;

use crate::{NnError, Parameter, Result};

/// A differentiable layer with cached-activation backpropagation.
///
/// The contract is the classic two-phase one:
///
/// 1. [`Layer::forward`] computes the output for an input batch and caches
///    whatever intermediate values the gradient needs;
/// 2. [`Layer::backward`] consumes the gradient of the loss with respect to
///    the layer output, accumulates parameter gradients, and returns the
///    gradient with respect to the layer input.
///
/// Layers are stateful between the two calls; calling `backward` without a
/// preceding `forward` returns [`NnError::MissingForwardCache`].
pub trait Layer: std::fmt::Debug + Send {
    /// Runs the layer on `input`, caching intermediates for `backward`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] when called before `forward`,
    /// or a tensor error when `grad_output` has the wrong shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Mutable references to every trainable parameter of the layer.
    fn parameters_mut(&mut self) -> Vec<&mut Parameter>;

    /// Immutable references to every trainable parameter of the layer.
    fn parameters(&self) -> Vec<&Parameter>;

    /// Switches between training and evaluation behaviour (dropout etc.).
    /// The default implementation does nothing.
    fn set_training(&mut self, _training: bool) {}

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        for p in self.parameters_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters in the layer.
    fn parameter_count(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

/// A sequential container running layers one after another.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, Linear, Relu, Sequential};
/// use edvit_tensor::init::TensorRng;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut rng = TensorRng::new(1);
/// let mut net = Sequential::new(vec![
///     Box::new(Linear::new(3, 5, &mut rng)) as Box<dyn Layer>,
///     Box::new(Relu::new()),
///     Box::new(Linear::new(5, 2, &mut rng)),
/// ]);
/// let y = net.forward(&rng.randn(&[4, 3], 0.0, 1.0))?;
/// assert_eq!(y.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container to be extended with [`Sequential::push`].
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the contained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig {
                message: "forward on empty Sequential".to_string(),
            });
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig {
                message: "backward on empty Sequential".to_string(),
            });
        }
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters_mut())
            .collect()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn set_training(&mut self, training: bool) {
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use edvit_tensor::init::TensorRng;

    #[test]
    fn empty_sequential_errors() {
        let mut s = Sequential::empty();
        assert!(s.is_empty());
        assert!(s.forward(&Tensor::zeros(&[1, 1])).is_err());
        assert!(s.backward(&Tensor::zeros(&[1, 1])).is_err());
    }

    #[test]
    fn sequential_chains_layers() {
        let mut rng = TensorRng::new(0);
        let mut s = Sequential::new(vec![
            Box::new(Linear::new(4, 6, &mut rng)) as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(Linear::new(6, 2, &mut rng)),
        ]);
        assert_eq!(s.len(), 3);
        let x = rng.randn(&[3, 4], 0.0, 1.0);
        let y = s.forward(&x).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        let gin = s.backward(&Tensor::ones(&[3, 2])).unwrap();
        assert_eq!(gin.dims(), &[3, 4]);
        // Two Linear layers -> 4 parameters (2 weights + 2 biases).
        assert_eq!(s.parameters().len(), 4);
        assert!(s.parameter_count() > 0);
        s.zero_grad();
        for p in s.parameters() {
            assert_eq!(p.grad().sum(), 0.0);
        }
    }

    #[test]
    fn push_extends_network() {
        let mut rng = TensorRng::new(1);
        let mut s = Sequential::empty();
        s.push(Box::new(Linear::new(2, 2, &mut rng)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.layers().len(), 1);
    }
}
