use std::fmt;

use edvit_tensor::TensorError;

/// Error type for neural-network layer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch, bad axis, ...).
    Tensor(TensorError),
    /// `backward` was called before `forward` populated the layer cache.
    MissingForwardCache {
        /// Name of the layer whose cache was missing.
        layer: &'static str,
    },
    /// The layer was constructed or called with an invalid configuration.
    InvalidConfig {
        /// Human-readable description of the problem.
        message: String,
    },
    /// Labels passed to a loss do not match the batch dimension.
    LabelMismatch {
        /// Number of rows in the logits batch.
        batch: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label index is outside the number of classes.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::MissingForwardCache { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            NnError::LabelMismatch { batch, labels } => {
                write!(f, "label count {labels} does not match batch size {batch}")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::MissingForwardCache { layer: "linear" };
        assert!(e.to_string().contains("linear"));
        let e = NnError::LabelMismatch {
            batch: 4,
            labels: 3,
        };
        assert!(e.to_string().contains("4"));
        let e = NnError::LabelOutOfRange {
            label: 9,
            classes: 5,
        };
        assert!(e.to_string().contains("9"));
        let e = NnError::InvalidConfig {
            message: "x".into(),
        };
        assert!(e.to_string().contains("x"));
    }

    #[test]
    fn from_tensor_error_preserves_source() {
        let te = TensorError::EmptyInput { op: "softmax" };
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
        assert!(std::error::Error::source(&ne).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<NnError>();
    }
}
