use edvit_tensor::Tensor;

use crate::{Layer, NnError, Parameter, Result};

/// 2-D max pooling over `[batch, channels, h, w]` inputs with a square window
/// and stride equal to the window size (the configuration VGG uses).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    size: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    /// Flat index (into the input sample) of each selected maximum.
    argmax: Vec<usize>,
    input_dims: Vec<usize>,
    out_h: usize,
    out_w: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `size`.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        MaxPool2d { size, cache: None }
    }

    /// Pooling window size.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig {
                message: format!("maxpool expects rank-4 input, got {:?}", input.dims()),
            });
        }
        let (b, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let oh = h / self.size;
        let ow = w / self.size;
        if oh == 0 || ow == 0 {
            return Err(NnError::InvalidConfig {
                message: format!("maxpool window {} too large for {h}x{w}", self.size),
            });
        }
        let mut out = vec![0.0f32; b * c * oh * ow];
        let mut argmax = vec![0usize; b * c * oh * ow];
        let data = input.data();
        for bi in 0..b {
            for ci in 0..c {
                let plane = bi * c * h * w + ci * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.size {
                            for kx in 0..self.size {
                                let iy = oy * self.size + ky;
                                let ix = ox * self.size + kx;
                                let idx = plane + iy * w + ix;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = bi * c * oh * ow + ci * oh * ow + oy * ow + ox;
                        out[out_idx] = best;
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        self.cache = Some(PoolCache {
            argmax,
            input_dims: input.dims().to_vec(),
            out_h: oh,
            out_w: ow,
        });
        Ok(Tensor::from_vec(out, &[b, c, oh, ow])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "MaxPool2d" })?;
        let numel: usize = cache.input_dims.iter().product();
        let mut grad = vec![0.0f32; numel];
        let expected = [
            cache.input_dims[0],
            cache.input_dims[1],
            cache.out_h,
            cache.out_w,
        ];
        if grad_output.dims() != expected {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "maxpool backward expected grad {:?}, got {:?}",
                    expected,
                    grad_output.dims()
                ),
            });
        }
        for (i, &g) in grad_output.data().iter().enumerate() {
            grad[cache.argmax[i]] += g;
        }
        Ok(Tensor::from_vec(grad, &cache.input_dims)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }
}

/// Global average pooling over the spatial dimensions:
/// `[batch, channels, h, w] -> [batch, channels]`.
#[derive(Debug, Clone, Default)]
pub struct AvgPool2d {
    cache_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        AvgPool2d { cache_dims: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(NnError::InvalidConfig {
                message: format!("avgpool expects rank-4 input, got {:?}", input.dims()),
            });
        }
        let (b, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let plane = &input.data()[bi * c * h * w + ci * h * w..][..h * w];
                out[bi * c + ci] = plane.iter().sum::<f32>() / (h * w) as f32;
            }
        }
        self.cache_dims = Some(input.dims().to_vec());
        Ok(Tensor::from_vec(out, &[b, c])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cache_dims
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "AvgPool2d" })?;
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if grad_output.dims() != [b, c] {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "avgpool backward expected grad [{b}, {c}], got {:?}",
                    grad_output.dims()
                ),
            });
        }
        let mut grad = vec![0.0f32; b * c * h * w];
        let scale = 1.0 / (h * w) as f32;
        for bi in 0..b {
            for ci in 0..c {
                let g = grad_output.data()[bi * c + ci] * scale;
                for v in &mut grad[bi * c * h * w + ci * h * w..][..h * w] {
                    *v = g;
                }
            }
        }
        Ok(Tensor::from_vec(grad, dims)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }
}

/// Flattens `[batch, ...]` inputs to `[batch, features]`, remembering the
/// original shape for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cache_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cache_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() < 2 {
            return Err(NnError::InvalidConfig {
                message: format!("flatten expects rank >= 2, got {:?}", input.dims()),
            });
        }
        let b = input.dims()[0];
        let rest = input.numel() / b.max(1);
        self.cache_dims = Some(input.dims().to_vec());
        Ok(input.reshape(&[b, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cache_dims
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Flatten" })?;
        Ok(grad_output.reshape(dims)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;

    #[test]
    fn maxpool_forward_known_values() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 4.0, 3.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x).unwrap();
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn maxpool_validation() {
        let mut pool = MaxPool2d::new(4);
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        assert!(pool.forward(&Tensor::zeros(&[2, 2])).is_err());
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        assert!(pool.parameters().is_empty());
    }

    #[test]
    fn avgpool_forward_backward() {
        let mut pool = AvgPool2d::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
        let g = pool.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert!(g.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
        assert!(pool.backward(&Tensor::ones(&[2, 2])).is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::arange(24).reshape(&[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&Tensor::ones(&[2, 12])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 2, 2]);
        assert!(f.forward(&Tensor::zeros(&[3])).is_err());
        assert!(Flatten::new().backward(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn maxpool_gradcheck() {
        finite_difference_check(Box::new(MaxPool2d::new(2)), &[1, 2, 4, 4], 5e-2, 100);
    }

    #[test]
    fn avgpool_gradcheck() {
        finite_difference_check(Box::new(AvgPool2d::new()), &[2, 3, 4, 4], 5e-2, 101);
    }
}
