use edvit_parallel::ParallelPool;
use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Layer, Linear, NnError, Parameter, Result};

/// Per-head score/softmax/value work (`tokens² · head_dim` multiply-adds)
/// below which parallelizing across heads is not worth the pool wake-up.
const PAR_HEAD_WORK: usize = 1 << 14;

/// Multi-head self-attention, the MHSA block of a Vision Transformer.
///
/// The layer keeps the number of heads `h` and the per-head projection width
/// `head_dim` as independent knobs. ED-ViT's second pruning stage shrinks the
/// per-head query/key/value width (`d_q = d_k = d_v`) rather than removing
/// whole heads ("without entirely discarding any head", Section IV-C), so a
/// pruned block simply has a smaller `head_dim`.
///
/// Inputs of shape `[tokens, embed]` or `[batch, tokens, embed]` are accepted.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, MultiHeadSelfAttention};
/// use edvit_tensor::init::TensorRng;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut rng = TensorRng::new(0);
/// let mut mhsa = MultiHeadSelfAttention::new(16, 4, 4, &mut rng)?;
/// let x = rng.randn(&[5, 16], 0.0, 1.0);
/// assert_eq!(mhsa.forward(&x)?.dims(), &[5, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiHeadSelfAttention {
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    out_proj: Linear,
    embed_dim: usize,
    heads: usize,
    head_dim: usize,
    cache: Option<AttentionCache>,
}

#[derive(Debug)]
struct AttentionCache {
    /// Per sample, per head: (q, k, v, attention weights).
    per_sample: Vec<Vec<HeadCache>>,
    batched_input: bool,
    tokens: usize,
}

#[derive(Debug)]
struct HeadCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Tensor,
}

impl Clone for MultiHeadSelfAttention {
    /// Clones the projection weights; the forward cache is backward-pass
    /// scratch, so the clone starts with an empty one.
    fn clone(&self) -> Self {
        MultiHeadSelfAttention {
            q_proj: self.q_proj.clone(),
            k_proj: self.k_proj.clone(),
            v_proj: self.v_proj.clone(),
            out_proj: self.out_proj.clone(),
            embed_dim: self.embed_dim,
            heads: self.heads,
            head_dim: self.head_dim,
            cache: None,
        }
    }
}

impl MultiHeadSelfAttention {
    /// Creates an MHSA layer with `heads` heads of width `head_dim` over an
    /// embedding of size `embed_dim`. The standard ViT configuration uses
    /// `head_dim = embed_dim / heads`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero-sized dimensions.
    pub fn new(
        embed_dim: usize,
        heads: usize,
        head_dim: usize,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        if embed_dim == 0 || heads == 0 || head_dim == 0 {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "invalid MHSA configuration: embed={embed_dim}, heads={heads}, head_dim={head_dim}"
                ),
            });
        }
        let inner = heads * head_dim;
        Ok(MultiHeadSelfAttention {
            q_proj: Linear::new(embed_dim, inner, rng),
            k_proj: Linear::new(embed_dim, inner, rng),
            v_proj: Linear::new(embed_dim, inner, rng),
            out_proj: Linear::new(inner, embed_dim, rng),
            embed_dim,
            heads,
            head_dim,
            cache: None,
        })
    }

    /// Builds an MHSA layer from existing projection layers — used when
    /// slicing pruned sub-models out of a trained model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the projections are mutually
    /// inconsistent with `heads`/`head_dim`.
    pub fn from_projections(
        q_proj: Linear,
        k_proj: Linear,
        v_proj: Linear,
        out_proj: Linear,
        heads: usize,
        head_dim: usize,
    ) -> Result<Self> {
        let embed_dim = q_proj.in_features();
        let inner = heads * head_dim;
        if q_proj.out_features() != inner
            || k_proj.out_features() != inner
            || v_proj.out_features() != inner
            || k_proj.in_features() != embed_dim
            || v_proj.in_features() != embed_dim
            || out_proj.in_features() != inner
        {
            return Err(NnError::InvalidConfig {
                message: "inconsistent projection shapes for MHSA".to_string(),
            });
        }
        Ok(MultiHeadSelfAttention {
            q_proj,
            k_proj,
            v_proj,
            out_proj,
            embed_dim,
            heads,
            head_dim,
            cache: None,
        })
    }

    /// Embedding dimension seen at the input and output.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head query/key/value width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The query projection (read-only), exposed for pruning.
    pub fn q_proj(&self) -> &Linear {
        &self.q_proj
    }

    /// The key projection (read-only), exposed for pruning.
    pub fn k_proj(&self) -> &Linear {
        &self.k_proj
    }

    /// The value projection (read-only), exposed for pruning.
    pub fn v_proj(&self) -> &Linear {
        &self.v_proj
    }

    /// The output projection (read-only), exposed for pruning.
    pub fn out_proj(&self) -> &Linear {
        &self.out_proj
    }

    /// Returns a pruned copy of this layer that keeps only the given
    /// per-head inner dimensions.
    ///
    /// `keep_per_head[i]` lists the indices (in `0..head_dim`) retained for
    /// head `i`; every head must keep the same number of dimensions so the
    /// pruned layer stays rectangular, mirroring ED-ViT's uniform `s × h`
    /// reduction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when head counts or kept widths are
    /// inconsistent.
    pub fn prune_head_dims(&self, keep_per_head: &[Vec<usize>]) -> Result<MultiHeadSelfAttention> {
        if keep_per_head.len() != self.heads {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "expected keep lists for {} heads, got {}",
                    self.heads,
                    keep_per_head.len()
                ),
            });
        }
        let kept_width = keep_per_head.first().map_or(0, Vec::len);
        if kept_width == 0 || keep_per_head.iter().any(|k| k.len() != kept_width) {
            return Err(NnError::InvalidConfig {
                message: "every head must keep the same non-zero number of dimensions".to_string(),
            });
        }
        // Translate per-head kept indices into global column indices of the
        // [embed, heads*head_dim] projections.
        let mut columns = Vec::with_capacity(self.heads * kept_width);
        for (h, keep) in keep_per_head.iter().enumerate() {
            for &i in keep {
                if i >= self.head_dim {
                    return Err(NnError::InvalidConfig {
                        message: format!(
                            "kept index {i} out of range for head_dim {}",
                            self.head_dim
                        ),
                    });
                }
                columns.push(h * self.head_dim + i);
            }
        }
        let q = self.q_proj.select_outputs(&columns)?;
        let k = self.k_proj.select_outputs(&columns)?;
        let v = self.v_proj.select_outputs(&columns)?;
        let out = self.out_proj.select_inputs(&columns)?;
        MultiHeadSelfAttention::from_projections(q, k, v, out, self.heads, kept_width)
    }

    /// Returns a copy of this layer whose input/output embedding channels are
    /// restricted to `keep` — the residual-channel pruning stage.
    ///
    /// # Errors
    ///
    /// Returns an error when indices are out of range.
    pub fn prune_embed_channels(&self, keep: &[usize]) -> Result<MultiHeadSelfAttention> {
        let q = self.q_proj.select_inputs(keep)?;
        let k = self.k_proj.select_inputs(keep)?;
        let v = self.v_proj.select_inputs(keep)?;
        let out = self.out_proj.select_outputs(keep)?;
        MultiHeadSelfAttention::from_projections(q, k, v, out, self.heads, self.head_dim)
    }

    /// Scaled-dot-product attention of a single head.
    fn head_forward(&self, q: &Tensor, k: &Tensor, v: &Tensor) -> Result<(Tensor, HeadCache)> {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let scores = q.matmul_transposed(k)?.scale(scale);
        let attn = scores.softmax_last_axis()?;
        let out = attn.matmul(v)?;
        Ok((
            out,
            HeadCache {
                q: q.clone(),
                k: k.clone(),
                v: v.clone(),
                attn,
            },
        ))
    }

    fn forward_sample(
        &self,
        q_all: &Tensor,
        k_all: &Tensor,
        v_all: &Tensor,
    ) -> Result<(Tensor, Vec<HeadCache>)> {
        let tokens = q_all.dims()[0];
        let q_heads = q_all.chunk_last_axis(self.heads)?;
        let k_heads = k_all.chunk_last_axis(self.heads)?;
        let v_heads = v_all.chunk_last_axis(self.heads)?;
        // Heads are independent (DeViT-style decomposition), so they can run
        // on separate threads; below the work threshold the pool wake-up
        // costs more than the heads themselves.
        let pool = ParallelPool::global();
        let per_head_work = tokens * tokens * self.head_dim;
        let results: Vec<Result<(Tensor, HeadCache)>> =
            if self.heads > 1 && per_head_work >= PAR_HEAD_WORK && !pool.is_sequential() {
                pool.map_indexed(self.heads, |h| {
                    self.head_forward(&q_heads[h], &k_heads[h], &v_heads[h])
                })
            } else {
                (0..self.heads)
                    .map(|h| self.head_forward(&q_heads[h], &k_heads[h], &v_heads[h]))
                    .collect()
            };
        let mut head_outputs = Vec::with_capacity(self.heads);
        let mut head_caches = Vec::with_capacity(self.heads);
        for result in results {
            let (out, cache) = result?;
            debug_assert_eq!(out.dims(), &[tokens, self.head_dim]);
            head_outputs.push(out);
            head_caches.push(cache);
        }
        let refs: Vec<&Tensor> = head_outputs.iter().collect();
        Ok((Tensor::concat_last_axis(&refs)?, head_caches))
    }

    fn backward_sample(&self, grad_concat: &Tensor, caches: &[HeadCache]) -> Result<Tensor> {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let grads_per_head = grad_concat.chunk_last_axis(self.heads)?;
        let mut dq_heads = Vec::with_capacity(self.heads);
        let mut dk_heads = Vec::with_capacity(self.heads);
        let mut dv_heads = Vec::with_capacity(self.heads);
        for (h, cache) in caches.iter().enumerate() {
            let d_out = &grads_per_head[h];
            // dV = A^T dOut
            let dv = cache.attn.transpose()?.matmul(d_out)?;
            // dA = dOut V^T
            let da = d_out.matmul_transposed(&cache.v)?;
            // Softmax backward per row: dS = A * (dA - rowsum(dA * A))
            let tokens = da.dims()[0];
            let cols = da.dims()[1];
            let mut ds = vec![0.0f32; tokens * cols];
            for r in 0..tokens {
                let a_row = &cache.attn.data()[r * cols..(r + 1) * cols];
                let da_row = &da.data()[r * cols..(r + 1) * cols];
                let dot: f32 = a_row.iter().zip(da_row).map(|(a, d)| a * d).sum();
                for c in 0..cols {
                    ds[r * cols + c] = a_row[c] * (da_row[c] - dot);
                }
            }
            let ds = Tensor::from_vec(ds, &[tokens, cols])?.scale(scale);
            // dQ = dS K ; dK = dS^T Q
            let dq = ds.matmul(&cache.k)?;
            let dk = ds.transpose()?.matmul(&cache.q)?;
            dq_heads.push(dq);
            dk_heads.push(dk);
            dv_heads.push(dv);
        }
        let dq_refs: Vec<&Tensor> = dq_heads.iter().collect();
        let dk_refs: Vec<&Tensor> = dk_heads.iter().collect();
        let dv_refs: Vec<&Tensor> = dv_heads.iter().collect();
        let dq = Tensor::concat_last_axis(&dq_refs)?;
        let dk = Tensor::concat_last_axis(&dk_refs)?;
        let dv = Tensor::concat_last_axis(&dv_refs)?;
        Ok(Tensor::concat_last_axis(&[&dq, &dk, &dv])?)
    }
}

impl Layer for MultiHeadSelfAttention {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (batched, batch) = match input.rank() {
            2 => (false, 1),
            3 => (true, input.dims()[0]),
            r => {
                return Err(NnError::InvalidConfig {
                    message: format!("MHSA expects rank 2 or 3 input, got rank {r}"),
                })
            }
        };
        let tokens = if batched {
            input.dims()[1]
        } else {
            input.dims()[0]
        };
        let q_all = self.q_proj.forward(input)?;
        let k_all = self.k_proj.forward(input)?;
        let v_all = self.v_proj.forward(input)?;
        let run_sample = |b: usize| -> Result<(Tensor, Vec<HeadCache>)> {
            let (q, k, v) = if batched {
                (q_all.row(b)?, k_all.row(b)?, v_all.row(b)?)
            } else {
                (q_all.clone(), k_all.clone(), v_all.clone())
            };
            self.forward_sample(&q, &k, &v)
        };
        // Samples are independent; run them across the pool (each sample's
        // per-head loop then executes inline on its worker).
        let pool = ParallelPool::global();
        let results: Vec<Result<(Tensor, Vec<HeadCache>)>> = if batch > 1 && !pool.is_sequential() {
            pool.map_indexed(batch, run_sample)
        } else {
            (0..batch).map(run_sample).collect()
        };
        let mut per_sample = Vec::with_capacity(batch);
        let mut outputs = Vec::with_capacity(batch);
        for result in results {
            let (out, caches) = result?;
            outputs.push(out);
            per_sample.push(caches);
        }
        let concat = if batched {
            let reshaped: Vec<Tensor> = outputs
                .iter()
                .map(|t| t.reshape(&[1, tokens, self.heads * self.head_dim]))
                .collect::<std::result::Result<_, _>>()?;
            let refs: Vec<&Tensor> = reshaped.iter().collect();
            Tensor::concat_first_axis(&refs)?
        } else {
            outputs.pop().expect("batch of one")
        };
        self.cache = Some(AttentionCache {
            per_sample,
            batched_input: batched,
            tokens,
        });
        self.out_proj.forward(&concat)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let grad_concat = self.out_proj.backward(grad_output)?;
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "MultiHeadSelfAttention",
        })?;
        let batch = cache.per_sample.len();
        let inner = self.heads * self.head_dim;
        let mut dqkv_samples = Vec::with_capacity(batch);
        for (b, caches) in cache.per_sample.iter().enumerate() {
            let g = if cache.batched_input {
                grad_concat.row(b)?
            } else {
                grad_concat.clone()
            };
            let g = g.reshape(&[cache.tokens, inner])?;
            dqkv_samples.push(self.backward_sample(&g, caches)?);
        }
        // Reassemble [batch, tokens, 3*inner] (or [tokens, 3*inner]).
        let dqkv = if cache.batched_input {
            let reshaped: Vec<Tensor> = dqkv_samples
                .iter()
                .map(|t| t.reshape(&[1, cache.tokens, 3 * inner]))
                .collect::<std::result::Result<_, _>>()?;
            let refs: Vec<&Tensor> = reshaped.iter().collect();
            Tensor::concat_first_axis(&refs)?
        } else {
            dqkv_samples.pop().expect("batch of one")
        };
        let parts = dqkv.chunk_last_axis(3)?;
        let dx_q = self.q_proj.backward(&parts[0])?;
        let dx_k = self.k_proj.backward(&parts[1])?;
        let dx_v = self.v_proj.backward(&parts[2])?;
        Ok(dx_q.add(&dx_k)?.add(&dx_v)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        let mut params = self.q_proj.parameters_mut();
        params.extend(self.k_proj.parameters_mut());
        params.extend(self.v_proj.parameters_mut());
        params.extend(self.out_proj.parameters_mut());
        params
    }

    fn parameters(&self) -> Vec<&Parameter> {
        let mut params = self.q_proj.parameters();
        params.extend(self.k_proj.parameters());
        params.extend(self.v_proj.parameters());
        params.extend(self.out_proj.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;

    #[test]
    fn forward_shapes_2d_and_3d() {
        let mut rng = TensorRng::new(0);
        let mut mhsa = MultiHeadSelfAttention::new(12, 3, 4, &mut rng).unwrap();
        let x2 = rng.randn(&[7, 12], 0.0, 1.0);
        assert_eq!(mhsa.forward(&x2).unwrap().dims(), &[7, 12]);
        let x3 = rng.randn(&[2, 7, 12], 0.0, 1.0);
        assert_eq!(mhsa.forward(&x3).unwrap().dims(), &[2, 7, 12]);
        assert_eq!(mhsa.heads(), 3);
        assert_eq!(mhsa.head_dim(), 4);
        assert_eq!(mhsa.embed_dim(), 12);
    }

    #[test]
    fn rejects_invalid_configs_and_ranks() {
        let mut rng = TensorRng::new(0);
        assert!(MultiHeadSelfAttention::new(0, 2, 2, &mut rng).is_err());
        assert!(MultiHeadSelfAttention::new(8, 0, 2, &mut rng).is_err());
        let mut mhsa = MultiHeadSelfAttention::new(8, 2, 4, &mut rng).unwrap();
        assert!(mhsa.forward(&Tensor::zeros(&[8])).is_err());
        assert!(mhsa.backward(&Tensor::zeros(&[3, 8])).is_err());
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = TensorRng::new(0);
        let mhsa = MultiHeadSelfAttention::new(16, 4, 4, &mut rng).unwrap();
        // q/k/v: 3*(16*16 + 16), out: 16*16 + 16
        assert_eq!(mhsa.parameter_count(), 4 * (16 * 16 + 16));
        assert_eq!(mhsa.parameters().len(), 8);
    }

    #[test]
    fn prune_head_dims_shrinks_projections() {
        let mut rng = TensorRng::new(1);
        let mhsa = MultiHeadSelfAttention::new(8, 2, 4, &mut rng).unwrap();
        let keep = vec![vec![0, 2], vec![1, 3]];
        let pruned = mhsa.prune_head_dims(&keep).unwrap();
        assert_eq!(pruned.head_dim(), 2);
        assert_eq!(pruned.heads(), 2);
        assert_eq!(pruned.q_proj().out_features(), 4);
        assert_eq!(pruned.out_proj().in_features(), 4);
        // embed dim untouched
        assert_eq!(pruned.embed_dim(), 8);
        // invalid keep lists
        assert!(mhsa.prune_head_dims(&[vec![0]]).is_err());
        assert!(mhsa.prune_head_dims(&[vec![0], vec![9]]).is_err());
        assert!(mhsa.prune_head_dims(&[vec![0], vec![]]).is_err());
    }

    #[test]
    fn prune_embed_channels_shrinks_in_out() {
        let mut rng = TensorRng::new(2);
        let mhsa = MultiHeadSelfAttention::new(8, 2, 4, &mut rng).unwrap();
        let pruned = mhsa.prune_embed_channels(&[0, 1, 2, 3]).unwrap();
        assert_eq!(pruned.embed_dim(), 4);
        assert_eq!(pruned.out_proj().out_features(), 4);
        let mut pruned = pruned;
        let mut rng2 = TensorRng::new(3);
        let x = rng2.randn(&[5, 4], 0.0, 1.0);
        assert_eq!(pruned.forward(&x).unwrap().dims(), &[5, 4]);
    }

    #[test]
    fn pruned_head_dims_forward_works() {
        let mut rng = TensorRng::new(4);
        let mhsa = MultiHeadSelfAttention::new(6, 3, 2, &mut rng).unwrap();
        let mut pruned = mhsa.prune_head_dims(&[vec![0], vec![1], vec![0]]).unwrap();
        let x = rng.randn(&[4, 6], 0.0, 1.0);
        assert_eq!(pruned.forward(&x).unwrap().dims(), &[4, 6]);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = TensorRng::new(5);
        let mut mhsa = MultiHeadSelfAttention::new(8, 2, 4, &mut rng).unwrap();
        let x = rng.randn(&[6, 8], 0.0, 1.0);
        mhsa.forward(&x).unwrap();
        let cache = mhsa.cache.as_ref().unwrap();
        for head in &cache.per_sample[0] {
            for row in head.attn.data().chunks(6) {
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradcheck_2d() {
        let mut rng = TensorRng::new(6);
        let mhsa = MultiHeadSelfAttention::new(6, 2, 3, &mut rng).unwrap();
        finite_difference_check(Box::new(mhsa), &[4, 6], 5e-2, 77);
    }

    #[test]
    fn gradcheck_batched() {
        let mut rng = TensorRng::new(7);
        let mhsa = MultiHeadSelfAttention::new(4, 2, 2, &mut rng).unwrap();
        finite_difference_check(Box::new(mhsa), &[2, 3, 4], 5e-2, 78);
    }
}
