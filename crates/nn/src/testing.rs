//! Shared test utilities: finite-difference gradient checking.
//!
//! Only compiled for tests; every layer's backward pass is validated against
//! central finite differences of a random linear functional of the output.

use edvit_tensor::{init::TensorRng, Tensor};

use crate::Layer;

/// Maximum number of coordinates probed per tensor to keep tests fast.
const MAX_PROBES: usize = 24;

/// Checks input and parameter gradients of `layer` against central finite
/// differences.
///
/// The scalar loss is `sum(forward(x) * w)` for a fixed random weighting `w`,
/// whose gradient with respect to the output is exactly `w`.
///
/// # Panics
///
/// Panics (failing the test) when any analytic gradient deviates from the
/// finite-difference estimate by more than `tol * (1 + |fd|)`.
pub fn finite_difference_check(
    mut layer: Box<dyn Layer>,
    input_dims: &[usize],
    tol: f32,
    seed: u64,
) {
    let mut rng = TensorRng::new(seed);
    let x = rng.randn(input_dims, 0.0, 1.0);
    // Fix the output weighting from a first forward pass (also warms caches).
    let out0 = layer.forward(&x).expect("forward failed");
    let w = TensorRng::new(seed ^ 0xABCD).rand_uniform(out0.dims(), -1.0, 1.0);

    let loss_of = |layer: &mut Box<dyn Layer>, x: &Tensor, w: &Tensor| -> f32 {
        let out = layer.forward(x).expect("forward failed");
        out.mul(w).expect("shape").sum()
    };

    // Analytic gradients.
    layer.zero_grad();
    let _ = loss_of(&mut layer, &x, &w);
    let grad_in = layer.backward(&w).expect("backward failed");
    assert_eq!(grad_in.dims(), x.dims(), "input gradient shape mismatch");
    let param_grads: Vec<Tensor> = layer
        .parameters()
        .iter()
        .map(|p| p.grad().clone())
        .collect();

    let eps = 1e-2f32;

    // Input gradient check on a subset of coordinates.
    let probes = probe_indices(x.numel(), seed);
    for &i in &probes {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fd = (loss_of(&mut layer, &xp, &w) - loss_of(&mut layer, &xm, &w)) / (2.0 * eps);
        let analytic = grad_in.data()[i];
        assert!(
            (analytic - fd).abs() <= tol * (1.0 + fd.abs()),
            "input grad mismatch at {i}: analytic {analytic} vs fd {fd}"
        );
    }

    // Parameter gradient checks.
    for (pi, param_grad) in param_grads.iter().enumerate() {
        let numel = layer.parameters()[pi].numel();
        let probes = probe_indices(numel, seed.wrapping_add(pi as u64 + 1));
        for &i in &probes {
            let original = layer.parameters()[pi].value().data()[i];
            set_param(&mut layer, pi, i, original + eps);
            let lp = loss_of(&mut layer, &x, &w);
            set_param(&mut layer, pi, i, original - eps);
            let lm = loss_of(&mut layer, &x, &w);
            set_param(&mut layer, pi, i, original);
            let fd = (lp - lm) / (2.0 * eps);
            let analytic = param_grad.data()[i];
            assert!(
                (analytic - fd).abs() <= tol * (1.0 + fd.abs()),
                "param {pi} grad mismatch at {i}: analytic {analytic} vs fd {fd}"
            );
        }
    }
}

fn set_param(layer: &mut Box<dyn Layer>, param_index: usize, coord: usize, value: f32) {
    let mut params = layer.parameters_mut();
    params[param_index].value_mut().data_mut()[coord] = value;
}

fn probe_indices(numel: usize, seed: u64) -> Vec<usize> {
    if numel <= MAX_PROBES {
        (0..numel).collect()
    } else {
        TensorRng::new(seed).sample_indices(numel, MAX_PROBES)
    }
}
