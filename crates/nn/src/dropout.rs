use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Layer, NnError, Parameter, Result};

/// Inverted dropout: during training, zeroes each activation with probability
/// `p` and rescales the survivors by `1 / (1 - p)`; in evaluation mode it is
/// the identity.
///
/// The layer carries its own seeded RNG so that training runs remain
/// reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: TensorRng,
    cache_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`; dropout of exactly 1.0 would zero
    /// every activation which is never intended.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Dropout {
            p,
            training: true,
            rng: TensorRng::new(seed),
            cache_mask: None,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Whether the layer is currently in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if !self.training || self.p == 0.0 {
            self.cache_mask = Some(Tensor::ones(input.dims()));
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let uniform = self.rng.rand_uniform(input.dims(), 0.0, 1.0);
        let mask = uniform.map(|u| if u < keep { 1.0 / keep } else { 0.0 });
        let out = input.mul(&mask)?;
        self.cache_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .cache_mask
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Dropout" })?;
        Ok(grad_output.mul(mask)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_training(false);
        assert!(!d.is_training());
        let x = Tensor::ones(&[4, 4]);
        let y = d.forward(&x).unwrap();
        assert_eq!(y.data(), x.data());
        let g = d.backward(&x).unwrap();
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn training_mode_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[64, 64]);
        let y = d.forward(&x).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 64 * 64);
        // Roughly half dropped.
        assert!(zeros > 64 * 64 / 4 && zeros < 64 * 64 * 3 / 4);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[10, 10]);
        let y = d.forward(&x).unwrap();
        let g = d.backward(&Tensor::ones(&[10, 10])).unwrap();
        // Gradient must be zero exactly where the output was zero.
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::ones(&[3]);
        assert_eq!(d.forward(&x).unwrap().data(), x.data());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dropout::new(0.1, 4);
        assert!(d.backward(&Tensor::ones(&[1])).is_err());
        assert!(d.parameters().is_empty());
        assert_eq!(d.probability(), 0.1);
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
