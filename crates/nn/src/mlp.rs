use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Gelu, Layer, Linear, NnError, Parameter, Relu, Result};

/// Nonlinearity selection for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpActivation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (the ViT default).
    Gelu,
}

/// A multi-layer perceptron: a chain of linear layers separated by a chosen
/// activation, with no activation after the final layer.
///
/// This is used for the ViT feed-forward block (one hidden layer, GELU), the
/// classification heads, and the tower-structured fusion MLP.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, Mlp};
/// use edvit_tensor::init::TensorRng;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut rng = TensorRng::new(0);
/// let mut mlp = Mlp::new(&[8, 16, 4], &mut rng)?;
/// let y = mlp.forward(&rng.randn(&[3, 8], 0.0, 1.0))?;
/// assert_eq!(y.dims(), &[3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mlp {
    linears: Vec<Linear>,
    activations: Vec<Box<dyn Layer>>,
    activation_kind: MlpActivation,
    layer_sizes: Vec<usize>,
}

impl Clone for Mlp {
    /// Clones the weights and structure. The boxed activation layers hold
    /// only forward-pass scratch, so the clone gets fresh ones rebuilt from
    /// `activation_kind` instead of requiring `dyn Layer` to be clonable.
    fn clone(&self) -> Self {
        let activations: Vec<Box<dyn Layer>> = self
            .activations
            .iter()
            .map(|_| -> Box<dyn Layer> {
                match self.activation_kind {
                    MlpActivation::Relu => Box::new(Relu::new()),
                    MlpActivation::Gelu => Box::new(Gelu::new()),
                }
            })
            .collect();
        Mlp {
            linears: self.linears.clone(),
            activations,
            activation_kind: self.activation_kind,
            layer_sizes: self.layer_sizes.clone(),
        }
    }
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (`[in, hidden..., out]`) and
    /// GELU activations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when fewer than two sizes are given
    /// or any size is zero.
    pub fn new(layer_sizes: &[usize], rng: &mut TensorRng) -> Result<Self> {
        Self::with_activation(layer_sizes, MlpActivation::Gelu, rng)
    }

    /// Creates an MLP with an explicit activation choice.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when fewer than two sizes are given
    /// or any size is zero.
    pub fn with_activation(
        layer_sizes: &[usize],
        activation: MlpActivation,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        if layer_sizes.len() < 2 {
            return Err(NnError::InvalidConfig {
                message: "an MLP needs at least an input and an output size".to_string(),
            });
        }
        if layer_sizes.contains(&0) {
            return Err(NnError::InvalidConfig {
                message: format!("zero-sized layer in MLP sizes {layer_sizes:?}"),
            });
        }
        let mut linears = Vec::with_capacity(layer_sizes.len() - 1);
        let mut activations: Vec<Box<dyn Layer>> = Vec::new();
        for i in 0..layer_sizes.len() - 1 {
            linears.push(Linear::new(layer_sizes[i], layer_sizes[i + 1], rng));
            if i + 2 < layer_sizes.len() {
                activations.push(match activation {
                    MlpActivation::Relu => Box::new(Relu::new()),
                    MlpActivation::Gelu => Box::new(Gelu::new()),
                });
            }
        }
        Ok(Mlp {
            linears,
            activations,
            activation_kind: activation,
            layer_sizes: layer_sizes.to_vec(),
        })
    }

    /// Builds an MLP from pre-existing linear layers (used when slicing
    /// pruned feed-forward blocks). Activations are inserted between every
    /// pair of consecutive layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when consecutive layers disagree on
    /// their shared dimension.
    pub fn from_linears(linears: Vec<Linear>, activation: MlpActivation) -> Result<Self> {
        if linears.is_empty() {
            return Err(NnError::InvalidConfig {
                message: "MLP needs at least one linear layer".to_string(),
            });
        }
        let mut layer_sizes = vec![linears[0].in_features()];
        for (i, lin) in linears.iter().enumerate() {
            if i > 0 && lin.in_features() != linears[i - 1].out_features() {
                return Err(NnError::InvalidConfig {
                    message: format!(
                        "linear {} expects {} inputs but previous layer produces {}",
                        i,
                        lin.in_features(),
                        linears[i - 1].out_features()
                    ),
                });
            }
            layer_sizes.push(lin.out_features());
        }
        let mut activations: Vec<Box<dyn Layer>> = Vec::new();
        for _ in 0..linears.len().saturating_sub(1) {
            activations.push(match activation {
                MlpActivation::Relu => Box::new(Relu::new()),
                MlpActivation::Gelu => Box::new(Gelu::new()),
            });
        }
        Ok(Mlp {
            linears,
            activations,
            activation_kind: activation,
            layer_sizes,
        })
    }

    /// Layer sizes `[in, hidden..., out]`.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }

    /// Activation used between layers.
    pub fn activation(&self) -> MlpActivation {
        self.activation_kind
    }

    /// Read-only access to the linear sub-layers, exposed for pruning.
    pub fn linears(&self) -> &[Linear] {
        &self.linears
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        *self.layer_sizes.last().expect("validated at construction")
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.layer_sizes[0]
    }
}

impl Layer for Mlp {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for i in 0..self.linears.len() {
            x = self.linears[i].forward(&x)?;
            if i < self.activations.len() {
                x = self.activations[i].forward(&x)?;
            }
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for i in (0..self.linears.len()).rev() {
            if i < self.activations.len() {
                g = self.activations[i].backward(&g)?;
            }
            g = self.linears[i].backward(&g)?;
        }
        Ok(g)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.linears
            .iter_mut()
            .flat_map(|l| l.parameters_mut())
            .collect()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.linears.iter().flat_map(|l| l.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;

    #[test]
    fn construction_validation() {
        let mut rng = TensorRng::new(0);
        assert!(Mlp::new(&[4], &mut rng).is_err());
        assert!(Mlp::new(&[4, 0, 2], &mut rng).is_err());
        let mlp = Mlp::new(&[4, 8, 2], &mut rng).unwrap();
        assert_eq!(mlp.layer_sizes(), &[4, 8, 2]);
        assert_eq!(mlp.in_features(), 4);
        assert_eq!(mlp.out_features(), 2);
        assert_eq!(mlp.activation(), MlpActivation::Gelu);
        assert_eq!(mlp.linears().len(), 2);
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = TensorRng::new(1);
        let mut mlp = Mlp::with_activation(&[6, 12, 12, 3], MlpActivation::Relu, &mut rng).unwrap();
        let x = rng.randn(&[5, 6], 0.0, 1.0);
        let y = mlp.forward(&x).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
        let g = mlp.backward(&Tensor::ones(&[5, 3])).unwrap();
        assert_eq!(g.dims(), &[5, 6]);
        assert_eq!(mlp.parameters().len(), 6);
    }

    #[test]
    fn from_linears_validates_chain() {
        let mut rng = TensorRng::new(2);
        let a = Linear::new(4, 6, &mut rng);
        let b = Linear::new(6, 2, &mut rng);
        let mlp = Mlp::from_linears(vec![a, b], MlpActivation::Gelu).unwrap();
        assert_eq!(mlp.layer_sizes(), &[4, 6, 2]);
        let a = Linear::new(4, 6, &mut rng);
        let bad = Linear::new(5, 2, &mut rng);
        assert!(Mlp::from_linears(vec![a, bad], MlpActivation::Gelu).is_err());
        assert!(Mlp::from_linears(vec![], MlpActivation::Relu).is_err());
    }

    #[test]
    fn single_layer_mlp_is_linear() {
        let mut rng = TensorRng::new(3);
        let lin = Linear::new(3, 2, &mut rng);
        let mut mlp = Mlp::from_linears(vec![lin], MlpActivation::Relu).unwrap();
        let x = rng.randn(&[2, 3], 0.0, 1.0);
        // No activation is applied after the only layer, so negatives survive.
        let y = mlp.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 2]);
    }

    #[test]
    fn gradcheck_gelu_mlp() {
        let mut rng = TensorRng::new(4);
        let mlp = Mlp::new(&[4, 6, 3], &mut rng).unwrap();
        finite_difference_check(Box::new(mlp), &[3, 4], 5e-2, 110);
    }

    #[test]
    fn gradcheck_relu_mlp() {
        let mut rng = TensorRng::new(5);
        let mlp = Mlp::with_activation(&[4, 5, 2], MlpActivation::Relu, &mut rng).unwrap();
        // The ReLU kink makes central differences noisier than for smooth
        // layers, so this check runs with a wider tolerance.
        finite_difference_check(Box::new(mlp), &[2, 4], 1.5e-1, 111);
    }
}
