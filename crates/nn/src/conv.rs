use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Layer, NnError, Parameter, Result};

/// A 2-D convolution implemented through im2col + matrix multiplication.
///
/// Inputs have shape `[batch, in_channels, height, width]`, outputs
/// `[batch, out_channels, out_h, out_w]`. This layer backs the VGG-style
/// Split-CNN baseline and the patch-embedding of the Vision Transformer
/// (a patch embedding is a convolution whose kernel size equals its stride).
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Parameter,
    bias: Parameter,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    /// im2col matrix per batch element: `[out_h*out_w, in_c*k*k]`.
    columns: Vec<Tensor>,
    input_dims: Vec<usize>,
    out_h: usize,
    out_w: usize,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero-sized channels, kernel or
    /// stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "invalid conv config: in={in_channels} out={out_channels} k={kernel} stride={stride}"
                ),
            });
        }
        let fan_in = in_channels * kernel * kernel;
        let weight = rng.kaiming_normal(fan_in, out_channels);
        Ok(Conv2d {
            weight: Parameter::new("conv.weight", weight),
            bias: Parameter::new("conv.bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cache: None,
        })
    }

    /// Builds a convolution from an explicit weight matrix
    /// `[in_c*k*k, out_c]` and bias `[out_c]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for inconsistent shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn from_weights(
        weight: Tensor,
        bias: Tensor,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if weight.dims() != [in_channels * kernel * kernel, out_channels]
            || bias.numel() != out_channels
        {
            return Err(NnError::InvalidConfig {
                message: "conv weight/bias shapes inconsistent with configuration".to_string(),
            });
        }
        Ok(Conv2d {
            weight: Parameter::new("conv.weight", weight),
            bias: Parameter::new("conv.bias", bias),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cache: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (square kernels only).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Immutable view of the `[in_c*k*k, out_c]` weight.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &Parameter {
        &self.bias
    }

    /// Returns a copy keeping only the listed output filters; this is the
    /// channel-wise filter pruning used by the NNFacet-style CNN baseline.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when an index is out of range.
    pub fn prune_filters(&self, keep: &[usize]) -> Result<Conv2d> {
        let weight = self.weight.value().select_last_axis(keep)?;
        let bias = self.bias.value().select_last_axis(keep)?;
        Conv2d::from_weights(
            weight,
            bias,
            self.in_channels,
            keep.len(),
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Returns a copy keeping only the listed input channels (needed so a
    /// pruned layer can follow another pruned layer).
    ///
    /// # Errors
    ///
    /// Returns a tensor error when an index is out of range.
    pub fn prune_input_channels(&self, keep: &[usize]) -> Result<Conv2d> {
        // The weight's rows are laid out channel-major: [in_c, k, k] flattened.
        let k2 = self.kernel * self.kernel;
        let mut rows = Vec::with_capacity(keep.len() * k2);
        for &c in keep {
            if c >= self.in_channels {
                return Err(NnError::InvalidConfig {
                    message: format!("input channel {c} out of range"),
                });
            }
            for i in 0..k2 {
                rows.push(c * k2 + i);
            }
        }
        let weight = self.weight.value().gather_rows(&rows)?;
        Conv2d::from_weights(
            weight,
            self.bias.value().clone(),
            keep.len(),
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Spatial output size for a given input size; `(0, 0)` when the kernel
    /// does not fit even once.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let padded_h = h + 2 * self.padding;
        let padded_w = w + 2 * self.padding;
        if padded_h < self.kernel || padded_w < self.kernel {
            return (0, 0);
        }
        let oh = (padded_h - self.kernel) / self.stride + 1;
        let ow = (padded_w - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Expands one `[c, h, w]` sample into the im2col matrix
    /// `[out_h*out_w, c*k*k]`.
    fn im2col(&self, sample: &Tensor, h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let k = self.kernel;
        let c = self.in_channels;
        let mut cols = vec![0.0f32; oh * ow * c * k * k];
        let data = sample.data();
        for oy in 0..oh {
            for ox in 0..ow {
                let col_base = (oy * ow + ox) * c * k * k;
                for ci in 0..c {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            let val =
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    data[ci * h * w + iy as usize * w + ix as usize]
                                } else {
                                    0.0
                                };
                            cols[col_base + ci * k * k + ky * k + kx] = val;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, &[oh * ow, c * k * k]).expect("sized by construction")
    }

    /// Scatters an im2col-shaped gradient back to a `[c, h, w]` image.
    fn col2im(&self, cols: &Tensor, h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let k = self.kernel;
        let c = self.in_channels;
        let mut img = vec![0.0f32; c * h * w];
        let data = cols.data();
        for oy in 0..oh {
            for ox in 0..ow {
                let col_base = (oy * ow + ox) * c * k * k;
                for ci in 0..c {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                img[ci * h * w + iy as usize * w + ix as usize] +=
                                    data[col_base + ci * k * k + ky * k + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(img, &[c, h, w]).expect("sized by construction")
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "conv expects [batch, {}, h, w], got {:?}",
                    self.in_channels,
                    input.dims()
                ),
            });
        }
        let (batch, _c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = self.output_size(h, w);
        if oh == 0 || ow == 0 {
            return Err(NnError::InvalidConfig {
                message: format!("conv output would be empty for input {h}x{w}"),
            });
        }
        let mut columns = Vec::with_capacity(batch);
        let mut outputs = Vec::with_capacity(batch);
        for b in 0..batch {
            let sample = input.row(b)?;
            let cols = self.im2col(&sample, h, w, oh, ow);
            // [oh*ow, c*k*k] x [c*k*k, out_c] = [oh*ow, out_c]
            let out = cols
                .matmul(self.weight.value())?
                .add_row_broadcast(self.bias.value())?;
            // Transpose to channel-major [out_c, oh*ow] then reshape.
            let out = out.transpose()?.reshape(&[1, self.out_channels, oh, ow])?;
            outputs.push(out);
            columns.push(cols);
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        let result = Tensor::concat_first_axis(&refs)?;
        self.cache = Some(ConvCache {
            columns,
            input_dims: input.dims().to_vec(),
            out_h: oh,
            out_w: ow,
        });
        Ok(result)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Conv2d" })?;
        let batch = cache.input_dims[0];
        let (h, w) = (cache.input_dims[2], cache.input_dims[3]);
        let (oh, ow) = (cache.out_h, cache.out_w);
        if grad_output.dims() != [batch, self.out_channels, oh, ow] {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "conv backward expected grad {:?}, got {:?}",
                    [batch, self.out_channels, oh, ow],
                    grad_output.dims()
                ),
            });
        }
        let mut grad_inputs = Vec::with_capacity(batch);
        let mut grad_w_total = Tensor::zeros(self.weight.value().dims());
        let mut grad_b_total = Tensor::zeros(self.bias.value().dims());
        for b in 0..batch {
            // Gradient of this sample as [oh*ow, out_c].
            let g = grad_output
                .row(b)?
                .reshape(&[self.out_channels, oh * ow])?
                .transpose()?;
            let cols = &cache.columns[b];
            // dW = cols^T g
            grad_w_total.add_assign(&cols.transpose()?.matmul(&g)?)?;
            grad_b_total.add_assign(&g.sum_first_axis()?)?;
            // dcols = g W^T
            let dcols = g.matmul_transposed(self.weight.value())?;
            let dimg = self.col2im(&dcols, h, w, oh, ow);
            grad_inputs.push(dimg.reshape(&[1, self.in_channels, h, w])?);
        }
        self.weight.accumulate_grad(&grad_w_total)?;
        self.bias.accumulate_grad(&grad_b_total)?;
        let refs: Vec<&Tensor> = grad_inputs.iter().collect();
        Ok(Tensor::concat_first_axis(&refs)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;

    #[test]
    fn output_size_formula() {
        let mut rng = TensorRng::new(0);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng).unwrap();
        assert_eq!(conv.output_size(32, 32), (32, 32));
        let conv = Conv2d::new(3, 8, 2, 2, 0, &mut rng).unwrap();
        assert_eq!(conv.output_size(32, 32), (16, 16));
        let conv = Conv2d::new(3, 8, 16, 16, 0, &mut rng).unwrap();
        assert_eq!(conv.output_size(224, 224), (14, 14));
    }

    #[test]
    fn forward_shape() {
        let mut rng = TensorRng::new(1);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng).unwrap();
        let x = rng.randn(&[2, 3, 8, 8], 0.0, 1.0);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn known_value_single_filter() {
        // 1x1 input channel, 2x2 kernel of all ones, stride 1, no padding.
        let weight = Tensor::ones(&[4, 1]);
        let bias = Tensor::zeros(&[1]);
        let mut conv = Conv2d::from_weights(weight, bias, 1, 1, 2, 1, 0).unwrap();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let y = conv.forward(&x).unwrap();
        // Each output = sum of 2x2 window.
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = TensorRng::new(0);
        assert!(Conv2d::new(0, 4, 3, 1, 0, &mut rng).is_err());
        assert!(Conv2d::new(3, 0, 3, 1, 0, &mut rng).is_err());
        assert!(Conv2d::new(3, 4, 0, 1, 0, &mut rng).is_err());
        let mut conv = Conv2d::new(3, 4, 3, 1, 0, &mut rng).unwrap();
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 8, 8])).is_err());
        assert!(conv.forward(&Tensor::zeros(&[1, 3, 2, 2])).is_err());
        assert!(conv.backward(&Tensor::zeros(&[1, 4, 6, 6])).is_err());
    }

    #[test]
    fn prune_filters_and_input_channels() {
        let mut rng = TensorRng::new(2);
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng).unwrap();
        let pruned = conv.prune_filters(&[0, 3]).unwrap();
        assert_eq!(pruned.out_channels(), 2);
        assert_eq!(pruned.weight().value().dims(), &[2 * 9, 2]);
        let pruned_in = conv.prune_input_channels(&[1]).unwrap();
        assert_eq!(pruned_in.in_channels(), 1);
        assert_eq!(pruned_in.weight().value().dims(), &[9, 4]);
        assert!(conv.prune_input_channels(&[5]).is_err());
    }

    #[test]
    fn pruned_conv_still_runs() {
        let mut rng = TensorRng::new(3);
        let conv = Conv2d::new(3, 6, 3, 1, 1, &mut rng).unwrap();
        let mut pruned = conv.prune_filters(&[1, 4]).unwrap();
        let x = rng.randn(&[1, 3, 6, 6], 0.0, 1.0);
        assert_eq!(pruned.forward(&x).unwrap().dims(), &[1, 2, 6, 6]);
    }

    #[test]
    fn gradcheck_small_conv() {
        let mut rng = TensorRng::new(4);
        let conv = Conv2d::new(2, 3, 2, 1, 0, &mut rng).unwrap();
        finite_difference_check(Box::new(conv), &[1, 2, 4, 4], 5e-2, 90);
    }

    #[test]
    fn gradcheck_strided_padded_conv() {
        let mut rng = TensorRng::new(5);
        let conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng).unwrap();
        finite_difference_check(Box::new(conv), &[2, 1, 5, 5], 5e-2, 91);
    }
}
