use serde::{Deserialize, Serialize};

use edvit_tensor::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// Layers expose their parameters through [`crate::Layer::parameters_mut`];
/// optimizers mutate `value` from `grad`, and `zero_grad` resets accumulation
/// between steps.
///
/// # Example
///
/// ```
/// use edvit_nn::Parameter;
/// use edvit_tensor::Tensor;
///
/// let mut p = Parameter::new("weight", Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad().sum(), 0.0);
/// p.accumulate_grad(&Tensor::full(&[2, 2], 0.5)).unwrap();
/// assert_eq!(p.grad().sum(), 2.0);
/// p.zero_grad();
/// assert_eq!(p.grad().sum(), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Parameter {
    name: String,
    value: Tensor,
    grad: Tensor,
}

impl Parameter {
    /// Creates a parameter with a zeroed gradient of the same shape.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Human-readable name used in diagnostics (`"qkv.weight"`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the value (used by optimizers and by weight-slicing
    /// during structured pruning).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Replaces the value and resets the gradient to match the new shape.
    pub fn set_value(&mut self, value: Tensor) {
        self.grad = Tensor::zeros(value.dims());
        self.value = value;
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable access to the gradient.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when `g` has a different shape than the value.
    pub fn accumulate_grad(&mut self, g: &Tensor) -> Result<(), edvit_tensor::TensorError> {
        self.grad.add_assign(g)
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.dims());
    }

    /// Number of scalar values in this parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Total number of scalar parameters across a parameter list.
pub fn total_parameters(params: &[&Parameter]) -> usize {
    params.iter().map(|p| p.numel()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_parameter_has_zero_grad() {
        let p = Parameter::new("w", Tensor::ones(&[3, 3]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.grad().sum(), 0.0);
        assert_eq!(p.numel(), 9);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Parameter::new("b", Tensor::zeros(&[4]));
        p.accumulate_grad(&Tensor::ones(&[4])).unwrap();
        p.accumulate_grad(&Tensor::ones(&[4])).unwrap();
        assert_eq!(p.grad().sum(), 8.0);
        p.zero_grad();
        assert_eq!(p.grad().sum(), 0.0);
        assert!(p.accumulate_grad(&Tensor::ones(&[5])).is_err());
    }

    #[test]
    fn set_value_resets_grad_shape() {
        let mut p = Parameter::new("w", Tensor::ones(&[2, 2]));
        p.accumulate_grad(&Tensor::ones(&[2, 2])).unwrap();
        p.set_value(Tensor::zeros(&[3]));
        assert_eq!(p.value().dims(), &[3]);
        assert_eq!(p.grad().dims(), &[3]);
        assert_eq!(p.grad().sum(), 0.0);
    }

    #[test]
    fn total_parameters_sums() {
        let a = Parameter::new("a", Tensor::zeros(&[2, 3]));
        let b = Parameter::new("b", Tensor::zeros(&[5]));
        assert_eq!(total_parameters(&[&a, &b]), 11);
        assert_eq!(total_parameters(&[]), 0);
    }
}
