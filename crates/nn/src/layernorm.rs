use edvit_parallel::ParallelPool;
use edvit_tensor::{ops, Tensor};

use crate::{Layer, NnError, Parameter, Result};

/// Layer normalization over the last axis with learnable scale and shift,
/// matching `nn.LayerNorm(d)` in the reference PyTorch implementation.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, LayerNorm};
/// use edvit_tensor::Tensor;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut ln = LayerNorm::new(4);
/// let y = ln.forward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4])?)?;
/// assert!(y.mean().abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Parameter,
    beta: Parameter,
    dim: usize,
    cache: Option<LayerNormCache>,
}

#[derive(Debug, Clone)]
struct LayerNormCache {
    /// Normalized input `(x - mean) / sqrt(var + eps)` per row.
    x_hat: Tensor,
    /// `1 / sqrt(var + eps)` per row.
    inv_std: Vec<f32>,
    lead_dims: Vec<usize>,
}

impl LayerNorm {
    /// Creates a layer norm over vectors of length `dim` (γ=1, β=0).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new("layernorm.gamma", Tensor::ones(&[dim])),
            beta: Parameter::new("layernorm.beta", Tensor::zeros(&[dim])),
            dim,
            cache: None,
        }
    }

    /// Creates a layer norm from existing affine parameters — used when
    /// slicing pruned sub-models out of a trained model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the two vectors disagree in
    /// length.
    pub fn from_weights(gamma: Tensor, beta: Tensor) -> Result<Self> {
        if gamma.numel() != beta.numel() || gamma.rank() != 1 {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "layernorm gamma {:?} and beta {:?} must be equal-length vectors",
                    gamma.dims(),
                    beta.dims()
                ),
            });
        }
        let dim = gamma.numel();
        Ok(LayerNorm {
            gamma: Parameter::new("layernorm.gamma", gamma),
            beta: Parameter::new("layernorm.beta", beta),
            dim,
            cache: None,
        })
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable view of the scale parameter γ.
    pub fn gamma(&self) -> &Parameter {
        &self.gamma
    }

    /// Immutable view of the shift parameter β.
    pub fn beta(&self) -> &Parameter {
        &self.beta
    }

    /// Returns a new `LayerNorm` keeping only the listed features, used by
    /// residual-channel pruning.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when an index is out of range.
    pub fn select_features(&self, keep: &[usize]) -> Result<LayerNorm> {
        let gamma = self.gamma.value().select_last_axis(keep)?;
        let beta = self.beta.value().select_last_axis(keep)?;
        LayerNorm::from_weights(gamma, beta)
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() == 0 || *input.dims().last().unwrap_or(&0) != self.dim {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "layernorm expected last dim {}, got shape {:?}",
                    self.dim,
                    input.dims()
                ),
            });
        }
        let rows = input.numel() / self.dim;
        let mut x_hat = vec![0.0f32; input.numel()];
        let mut inv_std = vec![0.0f32; rows];
        let mut out = vec![0.0f32; input.numel()];
        ops::layer_norm_forward_rows(
            input.data(),
            self.dim,
            self.gamma.value().data(),
            self.beta.value().data(),
            &mut x_hat,
            &mut out,
            &mut inv_std,
            ParallelPool::global(),
        );
        let lead_dims: Vec<usize> = input.dims()[..input.rank() - 1].to_vec();
        self.cache = Some(LayerNormCache {
            x_hat: Tensor::from_vec(x_hat, &[rows, self.dim])?,
            inv_std,
            lead_dims,
        });
        Ok(Tensor::from_vec(out, input.dims())?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "LayerNorm" })?;
        let rows = cache.inv_std.len();
        let d = self.dim;
        let g = grad_output.reshape(&[rows, d])?;
        let pool = ParallelPool::global();
        let (grad_gamma, grad_beta) =
            ops::layer_norm_param_grads_rows(g.data(), cache.x_hat.data(), d, pool);
        let mut grad_x = vec![0.0f32; rows * d];
        ops::layer_norm_backward_rows(
            g.data(),
            cache.x_hat.data(),
            &cache.inv_std,
            d,
            self.gamma.value().data(),
            &mut grad_x,
            pool,
        );
        self.gamma
            .accumulate_grad(&Tensor::from_vec(grad_gamma, &[d])?)?;
        self.beta
            .accumulate_grad(&Tensor::from_vec(grad_beta, &[d])?)?;
        let mut dims = cache.lead_dims.clone();
        dims.push(d);
        Ok(Tensor::from_vec(grad_x, &dims)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;
    use edvit_tensor::init::TensorRng;

    #[test]
    fn forward_normalizes_rows() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 4.0], &[2, 4]).unwrap();
        let y = ln.forward(&x).unwrap();
        for row in y.data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn forward_rejects_wrong_dim() {
        let mut ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros(&[2, 3])).is_err());
        assert!(ln.backward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn from_weights_and_select_features() {
        let gamma = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let beta = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
        let ln = LayerNorm::from_weights(gamma, beta).unwrap();
        assert_eq!(ln.dim(), 3);
        let pruned = ln.select_features(&[0, 2]).unwrap();
        assert_eq!(pruned.dim(), 2);
        assert_eq!(pruned.gamma().value().data(), &[1.0, 3.0]);
        assert_eq!(pruned.beta().value().data(), &[0.1, 0.3]);
        assert!(LayerNorm::from_weights(Tensor::zeros(&[2]), Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn three_dim_input_round_trip() {
        let mut ln = LayerNorm::new(5);
        let mut rng = TensorRng::new(3);
        let x = rng.randn(&[2, 3, 5], 0.0, 2.0);
        let y = ln.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3, 5]);
        let g = ln.backward(&Tensor::ones(&[2, 3, 5])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 5]);
    }

    #[test]
    fn gradcheck() {
        finite_difference_check(Box::new(LayerNorm::new(6)), &[3, 6], 3e-2, 21);
    }

    #[test]
    fn layer_matches_sequential_kernels_bitwise() {
        // The layer runs on the global pool (EDVIT_THREADS); the reference
        // below runs the same kernels on an explicit 1-thread pool. The
        // kernels promise thread-count-independent bit patterns, so the two
        // must agree exactly — at any EDVIT_THREADS setting.
        let d = 96;
        let rows = 200; // rows * d straddles the parallel threshold
        let mut rng = TensorRng::new(0xBEEF);
        let x = rng.randn(&[rows, d], 0.0, 2.0);
        let g = rng.randn(&[rows, d], 0.0, 1.0);
        let gamma = rng.rand_uniform(&[d], 0.5, 1.5);
        let beta = rng.rand_uniform(&[d], -0.5, 0.5);

        let mut ln = LayerNorm::from_weights(gamma.clone(), beta.clone()).unwrap();
        let y = ln.forward(&x).unwrap();
        let gx = ln.backward(&g).unwrap();

        let seq = ParallelPool::new(1);
        let mut x_hat = vec![0.0f32; rows * d];
        let mut out = vec![0.0f32; rows * d];
        let mut inv_std = vec![0.0f32; rows];
        ops::layer_norm_forward_rows(
            x.data(),
            d,
            gamma.data(),
            beta.data(),
            &mut x_hat,
            &mut out,
            &mut inv_std,
            &seq,
        );
        assert_eq!(y.data(), &out[..]);
        let mut grad_x = vec![0.0f32; rows * d];
        ops::layer_norm_backward_rows(
            g.data(),
            &x_hat,
            &inv_std,
            d,
            gamma.data(),
            &mut grad_x,
            &seq,
        );
        assert_eq!(gx.data(), &grad_x[..]);
        let (gg, gb) = ops::layer_norm_param_grads_rows(g.data(), &x_hat, d, &seq);
        assert_eq!(ln.gamma().grad().data(), &gg[..]);
        assert_eq!(ln.beta().grad().data(), &gb[..]);
    }

    #[test]
    fn gradcheck_nontrivial_gamma() {
        let gamma = Tensor::from_vec(vec![0.5, 1.5, -1.0, 2.0], &[4]).unwrap();
        let beta = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.0], &[4]).unwrap();
        let ln = LayerNorm::from_weights(gamma, beta).unwrap();
        finite_difference_check(Box::new(ln), &[2, 4], 3e-2, 22);
    }
}
