use edvit_tensor::{ops::NORM_EPS, Tensor};

use crate::{Layer, NnError, Parameter, Result};

/// Layer normalization over the last axis with learnable scale and shift,
/// matching `nn.LayerNorm(d)` in the reference PyTorch implementation.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, LayerNorm};
/// use edvit_tensor::Tensor;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut ln = LayerNorm::new(4);
/// let y = ln.forward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4])?)?;
/// assert!(y.mean().abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Parameter,
    beta: Parameter,
    dim: usize,
    cache: Option<LayerNormCache>,
}

#[derive(Debug, Clone)]
struct LayerNormCache {
    /// Normalized input `(x - mean) / sqrt(var + eps)` per row.
    x_hat: Tensor,
    /// `1 / sqrt(var + eps)` per row.
    inv_std: Vec<f32>,
    lead_dims: Vec<usize>,
}

impl LayerNorm {
    /// Creates a layer norm over vectors of length `dim` (γ=1, β=0).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new("layernorm.gamma", Tensor::ones(&[dim])),
            beta: Parameter::new("layernorm.beta", Tensor::zeros(&[dim])),
            dim,
            cache: None,
        }
    }

    /// Creates a layer norm from existing affine parameters — used when
    /// slicing pruned sub-models out of a trained model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the two vectors disagree in
    /// length.
    pub fn from_weights(gamma: Tensor, beta: Tensor) -> Result<Self> {
        if gamma.numel() != beta.numel() || gamma.rank() != 1 {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "layernorm gamma {:?} and beta {:?} must be equal-length vectors",
                    gamma.dims(),
                    beta.dims()
                ),
            });
        }
        let dim = gamma.numel();
        Ok(LayerNorm {
            gamma: Parameter::new("layernorm.gamma", gamma),
            beta: Parameter::new("layernorm.beta", beta),
            dim,
            cache: None,
        })
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable view of the scale parameter γ.
    pub fn gamma(&self) -> &Parameter {
        &self.gamma
    }

    /// Immutable view of the shift parameter β.
    pub fn beta(&self) -> &Parameter {
        &self.beta
    }

    /// Returns a new `LayerNorm` keeping only the listed features, used by
    /// residual-channel pruning.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when an index is out of range.
    pub fn select_features(&self, keep: &[usize]) -> Result<LayerNorm> {
        let gamma = self.gamma.value().select_last_axis(keep)?;
        let beta = self.beta.value().select_last_axis(keep)?;
        LayerNorm::from_weights(gamma, beta)
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() == 0 || *input.dims().last().unwrap_or(&0) != self.dim {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "layernorm expected last dim {}, got shape {:?}",
                    self.dim,
                    input.dims()
                ),
            });
        }
        let rows = input.numel() / self.dim;
        let mut x_hat = vec![0.0f32; input.numel()];
        let mut inv_std = vec![0.0f32; rows];
        let mut out = vec![0.0f32; input.numel()];
        for r in 0..rows {
            let row = &input.data()[r * self.dim..(r + 1) * self.dim];
            let mean: f32 = row.iter().sum::<f32>() / self.dim as f32;
            let var: f32 =
                row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / self.dim as f32;
            let istd = 1.0 / (var + NORM_EPS).sqrt();
            inv_std[r] = istd;
            for (i, &v) in row.iter().enumerate() {
                let xh = (v - mean) * istd;
                x_hat[r * self.dim + i] = xh;
                out[r * self.dim + i] =
                    xh * self.gamma.value().data()[i] + self.beta.value().data()[i];
            }
        }
        let lead_dims: Vec<usize> = input.dims()[..input.rank() - 1].to_vec();
        self.cache = Some(LayerNormCache {
            x_hat: Tensor::from_vec(x_hat, &[rows, self.dim])?,
            inv_std,
            lead_dims,
        });
        Ok(Tensor::from_vec(out, input.dims())?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "LayerNorm" })?;
        let rows = cache.inv_std.len();
        let d = self.dim;
        let g = grad_output.reshape(&[rows, d])?;
        let mut grad_gamma = vec![0.0f32; d];
        let mut grad_beta = vec![0.0f32; d];
        let mut grad_x = vec![0.0f32; rows * d];
        for r in 0..rows {
            let grow = &g.data()[r * d..(r + 1) * d];
            let xrow = &cache.x_hat.data()[r * d..(r + 1) * d];
            // Accumulate parameter gradients.
            for i in 0..d {
                grad_gamma[i] += grow[i] * xrow[i];
                grad_beta[i] += grow[i];
            }
            // dL/dx_hat = g * gamma
            let dxhat: Vec<f32> = (0..d)
                .map(|i| grow[i] * self.gamma.value().data()[i])
                .collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(xrow).map(|(a, b)| a * b).sum();
            let istd = cache.inv_std[r];
            for i in 0..d {
                grad_x[r * d + i] =
                    istd / d as f32 * (d as f32 * dxhat[i] - sum_dxhat - xrow[i] * sum_dxhat_xhat);
            }
        }
        self.gamma
            .accumulate_grad(&Tensor::from_vec(grad_gamma, &[d])?)?;
        self.beta
            .accumulate_grad(&Tensor::from_vec(grad_beta, &[d])?)?;
        let mut dims = cache.lead_dims.clone();
        dims.push(d);
        Ok(Tensor::from_vec(grad_x, &dims)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;
    use edvit_tensor::init::TensorRng;

    #[test]
    fn forward_normalizes_rows() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -2.0, 0.0, 2.0, 4.0], &[2, 4]).unwrap();
        let y = ln.forward(&x).unwrap();
        for row in y.data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn forward_rejects_wrong_dim() {
        let mut ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros(&[2, 3])).is_err());
        assert!(ln.backward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn from_weights_and_select_features() {
        let gamma = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let beta = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
        let ln = LayerNorm::from_weights(gamma, beta).unwrap();
        assert_eq!(ln.dim(), 3);
        let pruned = ln.select_features(&[0, 2]).unwrap();
        assert_eq!(pruned.dim(), 2);
        assert_eq!(pruned.gamma().value().data(), &[1.0, 3.0]);
        assert_eq!(pruned.beta().value().data(), &[0.1, 0.3]);
        assert!(LayerNorm::from_weights(Tensor::zeros(&[2]), Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn three_dim_input_round_trip() {
        let mut ln = LayerNorm::new(5);
        let mut rng = TensorRng::new(3);
        let x = rng.randn(&[2, 3, 5], 0.0, 2.0);
        let y = ln.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3, 5]);
        let g = ln.backward(&Tensor::ones(&[2, 3, 5])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 5]);
    }

    #[test]
    fn gradcheck() {
        finite_difference_check(Box::new(LayerNorm::new(6)), &[3, 6], 3e-2, 21);
    }

    #[test]
    fn gradcheck_nontrivial_gamma() {
        let gamma = Tensor::from_vec(vec![0.5, 1.5, -1.0, 2.0], &[4]).unwrap();
        let beta = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.0], &[4]).unwrap();
        let ln = LayerNorm::from_weights(gamma, beta).unwrap();
        finite_difference_check(Box::new(ln), &[2, 4], 3e-2, 22);
    }
}
