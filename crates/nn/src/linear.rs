use edvit_tensor::{init::TensorRng, Tensor};

use crate::{Layer, NnError, Parameter, Result};

/// A fully-connected (affine) layer: `y = x W + b`.
///
/// Input shape `[n, in_features]`, output `[n, out_features]`. Higher-rank
/// inputs (e.g. `[batch, tokens, d]`) are accepted by flattening every leading
/// axis into the row dimension, which matches how transformer projections are
/// applied token-wise.
///
/// # Example
///
/// ```
/// use edvit_nn::{Layer, Linear};
/// use edvit_tensor::init::TensorRng;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let mut rng = TensorRng::new(0);
/// let mut lin = Linear::new(8, 4, &mut rng);
/// let x = rng.randn(&[2, 8], 0.0, 1.0);
/// assert_eq!(lin.forward(&x)?.dims(), &[2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
    in_features: usize,
    out_features: usize,
    cache_input: Option<Tensor>,
    cache_lead_dims: Vec<usize>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut TensorRng) -> Self {
        let weight = rng.xavier_uniform(in_features, out_features);
        Linear {
            weight: Parameter::new("linear.weight", weight),
            bias: Parameter::new("linear.bias", Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cache_input: None,
            cache_lead_dims: Vec::new(),
        }
    }

    /// Creates a linear layer from explicit weight `[in, out]` and bias `[out]`
    /// tensors — used when slicing pruned sub-models out of a trained model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the shapes are inconsistent.
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.rank() != 2 {
            return Err(NnError::InvalidConfig {
                message: format!("linear weight must be rank 2, got {:?}", weight.dims()),
            });
        }
        let (in_features, out_features) = (weight.dims()[0], weight.dims()[1]);
        if bias.numel() != out_features {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "bias length {} does not match out_features {}",
                    bias.numel(),
                    out_features
                ),
            });
        }
        Ok(Linear {
            weight: Parameter::new("linear.weight", weight),
            bias: Parameter::new("linear.bias", bias),
            in_features,
            out_features,
            cache_input: None,
            cache_lead_dims: Vec::new(),
        })
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Immutable view of the bias parameter.
    pub fn bias(&self) -> &Parameter {
        &self.bias
    }

    /// Produces a new `Linear` keeping only the listed input features
    /// (rows of the weight matrix). Used by structured pruning when the
    /// preceding layer's channels were pruned.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if any index is out of range.
    pub fn select_inputs(&self, keep: &[usize]) -> Result<Linear> {
        // Weight is [in, out]; selecting input features selects rows, i.e.
        // columns of the transposed view — implemented with gather_rows.
        let w = self.weight.value().gather_rows(keep)?;
        Linear::from_weights(w, self.bias.value().clone())
    }

    /// Produces a new `Linear` keeping only the listed output features
    /// (columns of the weight matrix and entries of the bias).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if any index is out of range.
    pub fn select_outputs(&self, keep: &[usize]) -> Result<Linear> {
        let w = self.weight.value().select_last_axis(keep)?;
        let b = self.bias.value().select_last_axis(keep)?;
        Linear::from_weights(w, b)
    }

    fn flatten_input(&self, input: &Tensor) -> Result<(Tensor, Vec<usize>)> {
        if input.rank() == 0 {
            return Err(NnError::InvalidConfig {
                message: "linear forward on rank-0 tensor".to_string(),
            });
        }
        let last = *input.dims().last().expect("rank >= 1");
        if last != self.in_features {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "linear expected last dim {}, got {} (shape {:?})",
                    self.in_features,
                    last,
                    input.dims()
                ),
            });
        }
        let rows = input.numel() / last;
        let lead: Vec<usize> = input.dims()[..input.rank() - 1].to_vec();
        Ok((input.reshape(&[rows, last])?, lead))
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (x2d, lead) = self.flatten_input(input)?;
        let out = x2d
            .matmul(self.weight.value())?
            .add_row_broadcast(self.bias.value())?;
        self.cache_input = Some(x2d);
        self.cache_lead_dims = lead.clone();
        let mut out_dims = lead;
        out_dims.push(self.out_features);
        Ok(out.reshape(&out_dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "Linear" })?;
        let rows = x.dims()[0];
        let g2d = grad_output.reshape(&[rows, self.out_features])?;
        // dW = x^T g  -> [in, out]
        let grad_w = x.transpose()?.matmul(&g2d)?;
        // db = sum over rows of g
        let grad_b = g2d.sum_first_axis()?;
        // dx = g W^T -> [rows, in]
        let grad_x = g2d.matmul_transposed(self.weight.value())?;
        self.weight.accumulate_grad(&grad_w)?;
        self.bias.accumulate_grad(&grad_b)?;
        let mut dims = self.cache_lead_dims.clone();
        dims.push(self.in_features);
        Ok(grad_x.reshape(&dims)?)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::finite_difference_check;

    #[test]
    fn forward_shape_and_values() {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut lin = Linear::from_weights(w, b).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[4.5, 4.5]);
    }

    #[test]
    fn forward_rejects_bad_last_dim() {
        let mut rng = TensorRng::new(0);
        let mut lin = Linear::new(4, 2, &mut rng);
        assert!(lin.forward(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn higher_rank_inputs_flatten() {
        let mut rng = TensorRng::new(0);
        let mut lin = Linear::new(4, 2, &mut rng);
        let x = rng.randn(&[2, 5, 4], 0.0, 1.0);
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 5, 2]);
        let g = lin.backward(&Tensor::ones(&[2, 5, 2])).unwrap();
        assert_eq!(g.dims(), &[2, 5, 4]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = TensorRng::new(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        assert!(matches!(
            lin.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::MissingForwardCache { .. })
        ));
    }

    #[test]
    fn from_weights_validates() {
        assert!(Linear::from_weights(Tensor::zeros(&[3]), Tensor::zeros(&[3])).is_err());
        assert!(Linear::from_weights(Tensor::zeros(&[3, 2]), Tensor::zeros(&[3])).is_err());
        let ok = Linear::from_weights(Tensor::zeros(&[3, 2]), Tensor::zeros(&[2])).unwrap();
        assert_eq!(ok.in_features(), 3);
        assert_eq!(ok.out_features(), 2);
    }

    #[test]
    fn select_outputs_and_inputs() {
        let w = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let lin = Linear::from_weights(w, b).unwrap();
        let pruned = lin.select_outputs(&[0, 2]).unwrap();
        assert_eq!(pruned.out_features(), 2);
        assert_eq!(pruned.weight().value().data(), &[0.0, 2.0, 3.0, 5.0]);
        assert_eq!(pruned.bias().value().data(), &[10.0, 30.0]);
        let pruned_in = lin.select_inputs(&[1]).unwrap();
        assert_eq!(pruned_in.in_features(), 1);
        assert_eq!(pruned_in.weight().value().data(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::new(7);
        let layer = Linear::new(3, 2, &mut rng);
        finite_difference_check(Box::new(layer), &[2, 3], 1e-2, 42);
    }
}
