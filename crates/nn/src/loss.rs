use edvit_tensor::Tensor;

use crate::{NnError, Result};

/// Softmax cross-entropy loss over a batch of logits.
///
/// `forward` takes logits of shape `[n, classes]` and integer labels, returns
/// the mean negative log-likelihood, and caches the softmax probabilities so
/// that `backward` can return `(p - onehot(y)) / n`.
///
/// # Example
///
/// ```
/// use edvit_nn::CrossEntropyLoss;
/// use edvit_tensor::Tensor;
///
/// # fn main() -> Result<(), edvit_nn::NnError> {
/// let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2])?;
/// let mut loss = CrossEntropyLoss::new();
/// let l = loss.forward(&logits, &[0, 1])?;
/// assert!(l < 1e-3); // confident and correct
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrossEntropyLoss {
    cache: Option<(Tensor, Vec<usize>)>,
}

impl CrossEntropyLoss {
    /// Creates a cross-entropy loss.
    pub fn new() -> Self {
        CrossEntropyLoss { cache: None }
    }

    /// Computes the mean cross-entropy of `logits` `[n, c]` against `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelMismatch`] when the label count differs from
    /// the batch size, [`NnError::LabelOutOfRange`] for invalid labels, and
    /// tensor errors for malformed logits.
    pub fn forward(&mut self, logits: &Tensor, labels: &[usize]) -> Result<f32> {
        if logits.rank() != 2 {
            return Err(NnError::InvalidConfig {
                message: format!(
                    "cross entropy expects [n, classes], got {:?}",
                    logits.dims()
                ),
            });
        }
        let n = logits.dims()[0];
        let c = logits.dims()[1];
        if labels.len() != n {
            return Err(NnError::LabelMismatch {
                batch: n,
                labels: labels.len(),
            });
        }
        for &l in labels {
            if l >= c {
                return Err(NnError::LabelOutOfRange {
                    label: l,
                    classes: c,
                });
            }
        }
        if n == 0 {
            return Err(NnError::InvalidConfig {
                message: "cross entropy on empty batch".to_string(),
            });
        }
        let log_probs = logits.log_softmax_last_axis()?;
        let mut total = 0.0f32;
        for (i, &label) in labels.iter().enumerate() {
            total -= log_probs.get(&[i, label])?;
        }
        let probs = logits.softmax_last_axis()?;
        self.cache = Some((probs, labels.to_vec()));
        Ok(total / n as f32)
    }

    /// Returns the gradient of the mean loss with respect to the logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] when called before `forward`.
    pub fn backward(&mut self) -> Result<Tensor> {
        let (probs, labels) = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "CrossEntropyLoss",
        })?;
        let n = probs.dims()[0];
        let c = probs.dims()[1];
        let mut grad = probs.clone();
        for (i, &label) in labels.iter().enumerate() {
            let v = grad.get(&[i, label])?;
            grad.set(&[i, label], v - 1.0)?;
        }
        Ok(grad.scale(1.0 / n as f32).reshape(&[n, c])?)
    }
}

/// Mean squared error loss, used for distillation-style regression targets in
/// the retraining ablation.
#[derive(Debug, Clone, Default)]
pub struct MseLoss {
    cache: Option<(Tensor, Tensor)>,
}

impl MseLoss {
    /// Creates an MSE loss.
    pub fn new() -> Self {
        MseLoss { cache: None }
    }

    /// Computes `mean((pred - target)^2)`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when shapes differ.
    pub fn forward(&mut self, prediction: &Tensor, target: &Tensor) -> Result<f32> {
        let diff = prediction.sub(target)?;
        let loss = diff.data().iter().map(|v| v * v).sum::<f32>() / diff.numel().max(1) as f32;
        self.cache = Some((prediction.clone(), target.clone()));
        Ok(loss)
    }

    /// Gradient of the mean squared error with respect to the prediction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] when called before `forward`.
    pub fn backward(&mut self) -> Result<Tensor> {
        let (pred, target) = self
            .cache
            .as_ref()
            .ok_or(NnError::MissingForwardCache { layer: "MseLoss" })?;
        let n = pred.numel().max(1) as f32;
        Ok(pred.sub(target)?.scale(2.0 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits_is_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let mut loss = CrossEntropyLoss::new();
        let l = loss.forward(&logits, &[1, 3]).unwrap();
        assert!((l - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        let mut loss = CrossEntropyLoss::new();
        assert!(loss.forward(&Tensor::zeros(&[2]), &[0, 1]).is_err());
        assert!(loss.forward(&Tensor::zeros(&[2, 3]), &[0]).is_err());
        assert!(loss.forward(&Tensor::zeros(&[2, 3]), &[0, 5]).is_err());
        assert!(loss.forward(&Tensor::zeros(&[0, 3]), &[]).is_err());
        assert!(loss.backward().is_err());
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let mut loss = CrossEntropyLoss::new();
        loss.forward(&logits, &[2, 0]).unwrap();
        let g = loss.backward().unwrap();
        for row in g.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.2], &[2, 3]).unwrap();
        let labels = [1usize, 2usize];
        let mut loss = CrossEntropyLoss::new();
        loss.forward(&logits, &labels).unwrap();
        let g = loss.backward().unwrap();
        let eps = 1e-3;
        for i in 0..logits.numel() {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let lp = CrossEntropyLoss::new().forward(&plus, &labels).unwrap();
            let lm = CrossEntropyLoss::new().forward(&minus, &labels).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - g.data()[i]).abs() < 1e-3,
                "fd {fd} vs analytic {} at {i}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn mse_basic_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let mut loss = MseLoss::new();
        let l = loss.forward(&pred, &target).unwrap();
        assert!((l - 2.5).abs() < 1e-6);
        let g = loss.backward().unwrap();
        assert_eq!(g.data(), &[1.0, 2.0]);
        assert!(MseLoss::new().backward().is_err());
        assert!(loss.forward(&pred, &Tensor::zeros(&[3])).is_err());
    }
}
