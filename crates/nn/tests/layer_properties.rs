//! Property-based tests of layer-level invariants: shape preservation,
//! gradient shape agreement, optimizer convergence and parameter accounting.

use edvit_nn::{
    Adam, Gelu, Layer, LayerNorm, Linear, Mlp, MlpActivation, Optimizer, Parameter, Relu, Sgd,
};
use edvit_tensor::{init::TensorRng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_output_and_gradient_shapes_agree(
        rows in 1usize..8,
        inf in 1usize..10,
        outf in 1usize..10,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::new(seed);
        let mut layer = Linear::new(inf, outf, &mut rng);
        let x = rng.randn(&[rows, inf], 0.0, 1.0);
        let y = layer.forward(&x).unwrap();
        prop_assert_eq!(y.dims(), &[rows, outf]);
        let gin = layer.backward(&Tensor::ones(&[rows, outf])).unwrap();
        prop_assert_eq!(gin.dims(), x.dims());
        // Parameter gradients have the same shapes as the parameters.
        for p in layer.parameters() {
            prop_assert_eq!(p.grad().dims(), p.value().dims());
        }
    }

    #[test]
    fn activations_preserve_shape_and_bound_outputs(
        rows in 1usize..6,
        cols in 1usize..12,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::new(seed);
        let x = rng.randn(&[rows, cols], 0.0, 2.0);
        let mut relu = Relu::new();
        let y = relu.forward(&x).unwrap();
        prop_assert_eq!(y.dims(), x.dims());
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        prop_assert!(y.data().iter().zip(x.data()).all(|(&o, &i)| o <= i.max(0.0) + 1e-6));
        let mut gelu = Gelu::new();
        let y = gelu.forward(&x).unwrap();
        prop_assert_eq!(y.dims(), x.dims());
        // GELU is bounded below by a small negative constant (~ -0.17 * max).
        prop_assert!(y.data().iter().all(|&v| v > -0.5));
    }

    #[test]
    fn layernorm_output_rows_are_standardized(
        rows in 1usize..6,
        cols in 2usize..16,
        scale in 0.5f32..5.0,
        seed in 0u64..500,
    ) {
        let mut rng = TensorRng::new(seed);
        let mut ln = LayerNorm::new(cols);
        let x = rng.randn(&[rows, cols], 3.0, scale);
        let y = ln.forward(&x).unwrap();
        for row in y.data().chunks(cols) {
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            prop_assert!(mean.abs() < 1e-3, "row mean {}", mean);
        }
    }

    #[test]
    fn mlp_parameter_count_matches_closed_form(
        inf in 1usize..8,
        hidden in 1usize..12,
        outf in 1usize..6,
        seed in 0u64..200,
    ) {
        let mut rng = TensorRng::new(seed);
        let mlp = Mlp::with_activation(&[inf, hidden, outf], MlpActivation::Gelu, &mut rng).unwrap();
        let expected = inf * hidden + hidden + hidden * outf + outf;
        prop_assert_eq!(mlp.parameter_count(), expected);
    }

    #[test]
    fn sgd_step_moves_against_gradient(start in -5.0f32..5.0, lr in 0.001f32..0.1) {
        // One step on f(x) = x^2 must not increase |x|.
        let mut p = Parameter::new("x", Tensor::from_vec(vec![start], &[1]).unwrap());
        p.accumulate_grad(&Tensor::from_vec(vec![2.0 * start], &[1]).unwrap()).unwrap();
        let mut opt = Sgd::new(lr);
        opt.step(&mut [&mut p]).unwrap();
        prop_assert!(p.value().data()[0].abs() <= start.abs() + 1e-6);
    }

    #[test]
    fn adam_converges_on_random_quadratics(target in -3.0f32..3.0, seed in 0u64..100) {
        // Minimize (x - target)^2 from a random start.
        let mut rng = TensorRng::new(seed);
        let start = rng.uniform(-3.0, 3.0);
        let mut p = Parameter::new("x", Tensor::from_vec(vec![start], &[1]).unwrap());
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            p.zero_grad();
            let x = p.value().data()[0];
            p.accumulate_grad(&Tensor::from_vec(vec![2.0 * (x - target)], &[1]).unwrap()).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        prop_assert!((p.value().data()[0] - target).abs() < 0.05);
    }

    #[test]
    fn linear_pruning_selects_consistent_shapes(
        inf in 2usize..10,
        outf in 2usize..10,
        seed in 0u64..200,
    ) {
        let mut rng = TensorRng::new(seed);
        let layer = Linear::new(inf, outf, &mut rng);
        let keep_out: Vec<usize> = (0..outf).step_by(2).collect();
        let pruned = layer.select_outputs(&keep_out).unwrap();
        prop_assert_eq!(pruned.out_features(), keep_out.len());
        prop_assert_eq!(pruned.in_features(), inf);
        let keep_in: Vec<usize> = (0..inf).step_by(2).collect();
        let pruned = layer.select_inputs(&keep_in).unwrap();
        prop_assert_eq!(pruned.in_features(), keep_in.len());
        prop_assert_eq!(pruned.out_features(), outf);
    }
}
