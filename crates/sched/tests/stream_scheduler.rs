//! Integration tests of the streaming scheduler: pipelined throughput beats
//! the barrier bound on the simulated clock, and a device killed mid-stream
//! triggers a repartition onto the survivors with zero lost or duplicated
//! samples.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use edvit_edge::{FusionFn, SubModelFn};
use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit_sched::{
    NetOptions, PayloadCodec, RoundLayout, SchedError, ScheduleMode, StreamConfig, StreamScheduler,
};
use edvit_tensor::Tensor;
use edvit_vit::ViTConfig;

fn plan_for(devices: &[DeviceSpec]) -> SplitPlan {
    SplitPlanner::new(PlannerConfig::default())
        .plan(&ViTConfig::vit_base(10), devices, 7)
        .unwrap()
}

/// Deterministic executors: sub-model `i` maps a sample to
/// `[sum(sample) + i, i]`, so fused outputs identify both the sample and the
/// contributing sub-models. The shared counter records total invocations.
fn executors_for(plan: &SplitPlan, calls: &Arc<AtomicUsize>) -> Vec<SubModelFn> {
    (0..plan.sub_models.len())
        .map(|i| -> SubModelFn {
            let calls = Arc::clone(calls);
            Box::new(move |sample: &Tensor| {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(Tensor::from_vec(vec![sample.sum() + i as f32, i as f32], &[2]).unwrap())
            })
        })
        .collect()
}

fn concat_fusion() -> FusionFn {
    Box::new(|concat: &Tensor| Ok(concat.clone()))
}

fn inputs(n: usize) -> Vec<Tensor> {
    (0..n).map(|i| Tensor::full(&[3], i as f32)).collect()
}

#[test]
fn pipelined_steady_state_beats_barrier_on_the_simulated_clock() {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = plan_for(&devices);
    let samples = inputs(32);
    let calls = Arc::new(AtomicUsize::new(0));

    let barrier = StreamScheduler::new(
        plan.clone(),
        devices.clone(),
        StreamConfig::default().barrier(),
    )
    .unwrap()
    .run(&samples, executors_for(&plan, &calls), concat_fusion())
    .unwrap();

    let pipelined = StreamScheduler::new(plan.clone(), devices, StreamConfig::default())
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();

    assert_eq!(barrier.mode, ScheduleMode::Barrier);
    assert_eq!(pipelined.mode, ScheduleMode::Pipelined);
    assert_eq!(barrier.outputs.len(), 32);
    assert_eq!(pipelined.outputs.len(), 32);
    // Same workload, same outputs, whatever the scheduling.
    for (a, b) in barrier.outputs.iter().zip(&pipelined.outputs) {
        assert_eq!(a.data(), b.data());
    }
    // The acceptance bar: pipelined steady-state throughput exceeds the
    // barrier runtime's on the same workload, on the simulated clock.
    assert!(
        pipelined.steady_state_samples_per_second > barrier.steady_state_samples_per_second,
        "pipelined {} !> barrier {}",
        pipelined.steady_state_samples_per_second,
        barrier.steady_state_samples_per_second
    );
    assert!(
        pipelined.simulated_total_seconds < barrier.simulated_total_seconds,
        "pipelined total {} !< barrier total {}",
        pipelined.simulated_total_seconds,
        barrier.simulated_total_seconds
    );
    // Accounting: 8 rounds × 4 devices heartbeats, one join + one leave per
    // device, one data frame per sub-model per round.
    assert_eq!(pipelined.rounds, 8);
    assert_eq!(pipelined.heartbeats_seen, 8 * 4);
    assert_eq!(pipelined.control_frames, 8 * 4 + 4 + 4);
    assert_eq!(pipelined.data_frames, 8 * plan.sub_models.len());
    assert!(pipelined.bytes_on_wire > 0);
    // Per-device accounting: all four devices shipped bytes and delivered
    // every round, and the per-device bytes sum to the wire total.
    assert_eq!(pipelined.per_device_wire_bytes.len(), 4);
    assert_eq!(
        pipelined.per_device_wire_bytes.values().sum::<u64>(),
        pipelined.bytes_on_wire
    );
    assert!(pipelined.per_device_rounds.values().all(|&r| r == 8));
    assert!(pipelined.max_rounds_in_flight >= 1);
    assert_eq!(pipelined.epochs, 1);
    assert_eq!(pipelined.repartitions, 0);
    assert_eq!(pipelined.recovery_seconds, 0.0);
    assert!(pipelined.devices_lost.is_empty());
}

#[test]
fn killing_a_device_mid_stream_repartitions_onto_survivors_with_exactly_once_fusion() {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = plan_for(&devices);
    // Every device hosts at least one sub-model, so killing one matters.
    for d in &devices {
        assert!(
            !plan.assignment.sub_models_on(d.id).is_empty(),
            "device {} hosts nothing; the failure test would be vacuous",
            d.id
        );
    }
    let samples = inputs(40);
    let calls = Arc::new(AtomicUsize::new(0));

    // Reference run without failures.
    let reference = StreamScheduler::new(plan.clone(), devices.clone(), StreamConfig::default())
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();

    // Device 2 goes silent before processing round 3.
    let chaos_calls = Arc::new(AtomicUsize::new(0));
    let config = StreamConfig::default().with_failure(2, 3);
    let report = StreamScheduler::new(plan.clone(), devices.clone(), config)
        .unwrap()
        .run(
            &samples,
            executors_for(&plan, &chaos_calls),
            concat_fusion(),
        )
        .unwrap();

    // Zero lost, zero duplicated: every sample fused exactly once, with the
    // same value the healthy cluster produced.
    assert_eq!(report.outputs.len(), samples.len());
    for (i, (a, b)) in reference.outputs.iter().zip(&report.outputs).enumerate() {
        assert_eq!(a.data(), b.data(), "sample {i} diverged after the failover");
    }
    assert_eq!(report.devices_lost, vec![2]);
    assert_eq!(report.repartitions, 1);
    assert_eq!(report.epochs, 2);
    // The re-plan hosts every sub-model on the three survivors.
    for sub in &report.final_plan.sub_models {
        let host = report.final_plan.assignment.device_for(sub.index).unwrap();
        assert_ne!(host, 2, "sub-model {} still on the dead device", sub.index);
    }
    let hosts: std::collections::BTreeSet<usize> = report
        .final_plan
        .sub_models
        .iter()
        .map(|s| report.final_plan.assignment.device_for(s.index).unwrap())
        .collect();
    assert!(hosts.iter().all(|&h| h != 2) && hosts.len() <= 3);
    // Recovery is recorded on the simulated clock, and the in-flight work
    // was replayed: round 3 (the one the dead device never delivered) was in
    // flight when the death was declared, so at least its 4 samples
    // recompute; survivors may have pipelined further ahead.
    assert!(report.recovery_seconds > 0.0);
    assert!(
        report.samples_replayed >= 4,
        "expected at least one in-flight round (4 samples) replayed, got {}",
        report.samples_replayed
    );
    // Replays cost extra executor calls beyond the healthy run's, and the
    // run is longer than the healthy one on the virtual clock.
    assert!(chaos_calls.load(Ordering::SeqCst) > calls.load(Ordering::SeqCst) / 2);
    assert!(report.simulated_total_seconds > 0.0);
    assert!(report.heartbeats_seen > 0);
    let predictions = report.predictions().unwrap();
    assert_eq!(predictions.len(), samples.len());
}

#[test]
fn death_on_arrival_fails_over_and_a_ragged_last_round_still_fuses() {
    let devices = DeviceSpec::raspberry_pi_cluster(2);
    let plan = plan_for(&devices);
    let samples = inputs(10); // rounds of 4, 4, 2
    let calls = Arc::new(AtomicUsize::new(0));
    let config = StreamConfig::default().with_failure(0, 0);
    let report = StreamScheduler::new(plan.clone(), devices, config)
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();
    assert_eq!(report.outputs.len(), 10);
    assert_eq!(report.devices_lost, vec![0]);
    assert_eq!(report.repartitions, 1);
    assert_eq!(report.rounds, 3);
    for sub in &report.final_plan.sub_models {
        assert_eq!(report.final_plan.assignment.device_for(sub.index), Some(1));
    }
}

#[test]
fn losing_every_device_is_a_typed_error() {
    let devices = DeviceSpec::raspberry_pi_cluster(1);
    let plan = plan_for(&devices);
    let calls = Arc::new(AtomicUsize::new(0));
    let config = StreamConfig::default().with_failure(0, 1);
    let err = StreamScheduler::new(plan.clone(), devices, config)
        .unwrap()
        .run(&inputs(12), executors_for(&plan, &calls), concat_fusion())
        .unwrap_err();
    assert!(
        matches!(err, SchedError::AllDevicesLost { ref lost } if lost == &vec![0]),
        "{err}"
    );
}

#[test]
fn invalid_configurations_are_rejected() {
    let devices = DeviceSpec::raspberry_pi_cluster(2);
    let plan = plan_for(&devices);
    let bad = StreamConfig {
        round_size: 0,
        ..StreamConfig::default()
    };
    assert!(StreamScheduler::new(plan.clone(), devices.clone(), bad).is_err());
    let bad = StreamConfig {
        pipeline_depth: 0,
        ..StreamConfig::default()
    };
    assert!(StreamScheduler::new(plan.clone(), devices.clone(), bad).is_err());
    assert!(StreamScheduler::new(plan.clone(), vec![], StreamConfig::default()).is_err());

    let scheduler = StreamScheduler::new(plan.clone(), devices, StreamConfig::default()).unwrap();
    // Executor count must match the plan.
    let err = scheduler
        .run(&inputs(4), vec![], concat_fusion())
        .unwrap_err();
    assert!(matches!(err, SchedError::InvalidConfig { .. }), "{err}");
    // Empty inputs are rejected.
    let calls = Arc::new(AtomicUsize::new(0));
    let err = scheduler
        .run(&[], executors_for(&plan, &calls), concat_fusion())
        .unwrap_err();
    assert!(matches!(err, SchedError::InvalidConfig { .. }), "{err}");
}

#[test]
fn executor_and_fusion_failures_propagate() {
    let devices = DeviceSpec::raspberry_pi_cluster(2);
    let plan = plan_for(&devices);
    let scheduler =
        StreamScheduler::new(plan.clone(), devices.clone(), StreamConfig::default()).unwrap();
    let failing: Vec<SubModelFn> = (0..plan.sub_models.len())
        .map(|_| -> SubModelFn { Box::new(|_: &Tensor| Err("device out of memory".into())) })
        .collect();
    let err = scheduler
        .run(&inputs(4), failing, concat_fusion())
        .unwrap_err();
    assert!(err.to_string().contains("out of memory"), "{err}");

    let calls = Arc::new(AtomicUsize::new(0));
    let bad_fusion: FusionFn = Box::new(|_| Err("fusion MLP not trained".into()));
    let err = scheduler
        .run(&inputs(4), executors_for(&plan, &calls), bad_fusion)
        .unwrap_err();
    assert!(err.to_string().contains("fusion MLP"), "{err}");
}

#[test]
fn f16_codec_streams_shrink_the_wire_with_identical_fusion_outputs() {
    // The deterministic executors emit integer-valued features, which are
    // exactly representable in f16 — so the coded stream must fuse to
    // bitwise-identical outputs while shipping fewer data bytes.
    let devices = DeviceSpec::raspberry_pi_cluster(3);
    let plan = plan_for(&devices);
    let samples = inputs(12);

    let run = |codec: PayloadCodec| {
        let calls = Arc::new(AtomicUsize::new(0));
        StreamScheduler::new(
            plan.clone(),
            devices.clone(),
            StreamConfig::default().with_options(&NetOptions::default().with_codec(codec)),
        )
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap()
    };
    let base = run(PayloadCodec::F32);
    let coded = run(PayloadCodec::F16);
    assert_eq!(base.codec, PayloadCodec::F32);
    assert_eq!(coded.codec, PayloadCodec::F16);
    assert_eq!(base.outputs.len(), coded.outputs.len());
    for (a, b) in base.outputs.iter().zip(&coded.outputs) {
        assert_eq!(a.data(), b.data());
    }
    // Same frame counts, fewer bytes: only the value encoding changed.
    assert_eq!(base.data_frames, coded.data_frames);
    assert_eq!(base.control_frames, coded.control_frames);
    assert!(
        coded.bytes_on_wire < base.bytes_on_wire,
        "{} !< {}",
        coded.bytes_on_wire,
        base.bytes_on_wire
    );
    // The virtual timing prices the smaller frames too.
    assert!(coded.steady_state_samples_per_second >= base.steady_state_samples_per_second);
}

#[test]
fn coded_streams_survive_a_death_with_identical_predictions() {
    let devices = DeviceSpec::raspberry_pi_cluster(3);
    let plan = plan_for(&devices);
    let samples = inputs(12);
    let victim = plan.assignment.device_for(0).unwrap();
    for codec in PayloadCodec::ALL {
        let calls = Arc::new(AtomicUsize::new(0));
        let healthy = StreamScheduler::new(
            plan.clone(),
            devices.clone(),
            StreamConfig::default().with_options(&NetOptions::default().with_codec(codec)),
        )
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();
        let chaotic = StreamScheduler::new(
            plan.clone(),
            devices.clone(),
            StreamConfig::default()
                .with_options(&NetOptions::default().with_codec(codec))
                .with_failure(victim, 2),
        )
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();
        assert_eq!(chaotic.devices_lost, vec![victim], "{codec}");
        assert_eq!(chaotic.outputs.len(), samples.len(), "{codec}");
        for (a, b) in healthy.outputs.iter().zip(&chaotic.outputs) {
            assert_eq!(a.data(), b.data(), "{codec}: failover changed outputs");
        }
    }
}

/// A membership where one device was shrunk until it hosts at most one
/// sub-model: the raw material for degraded-fusion scenarios. The costs are
/// taken from a plan over the roomy cluster, which the tightened cluster
/// reproduces as long as the greedy assignment still succeeds first try.
fn tight_cluster(n: usize) -> (SplitPlan, Vec<DeviceSpec>) {
    let roomy = DeviceSpec::raspberry_pi_cluster(n);
    let sizing = plan_for(&roomy);
    let max_cost = sizing
        .sub_models
        .iter()
        .map(|s| s.cost.memory_bytes)
        .max()
        .unwrap();
    let mut devices = roomy;
    devices[n - 1].memory_bytes = max_cost + max_cost / 2;
    let plan = plan_for(&devices);
    (plan, devices)
}

#[test]
fn joining_with_a_live_identity_is_a_typed_conflict() {
    let devices = DeviceSpec::raspberry_pi_cluster(2);
    let plan = plan_for(&devices);
    let calls = Arc::new(AtomicUsize::new(0));
    // Device 0 never died, yet a join frame claims its identity mid-stream.
    let config = StreamConfig::default().with_join(devices[0].clone(), 1);
    let err = StreamScheduler::new(plan.clone(), devices, config)
        .unwrap()
        .run(&inputs(12), executors_for(&plan, &calls), concat_fusion())
        .unwrap_err();
    assert!(
        matches!(err, SchedError::RejoinConflict { device: 0 }),
        "{err}"
    );
}

#[test]
fn degradation_within_the_limit_fuses_partial_scores_with_zero_fill() {
    let (plan, devices) = tight_cluster(2);
    assert!(
        !plan.assignment.sub_models_on(0).is_empty(),
        "device 0 must host something for its death to degrade the stream"
    );
    let samples = inputs(12); // rounds of 4
    let calls = Arc::new(AtomicUsize::new(0));
    let config = StreamConfig::default()
        .with_failure(0, 1)
        .with_max_missing_sub_models(1);
    let report = StreamScheduler::new(plan.clone(), devices, config)
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();
    assert_eq!(report.devices_lost, vec![0]);
    assert_eq!(report.missing_sub_models.len(), 1);
    assert_eq!(report.degraded_rounds, vec![1, 2]);
    // Exactly once, even degraded: every sample fused, none dropped.
    assert_eq!(report.outputs.len(), samples.len());
    // Degraded samples zero-fill exactly the dropped sub-model's slots (each
    // deterministic executor emits two features).
    let missing = report.missing_sub_models[0];
    for (i, out) in report.outputs.iter().enumerate() {
        let degraded = i / 4 >= 1;
        for (k, &v) in out.data().iter().enumerate() {
            if degraded && (missing * 2..missing * 2 + 2).contains(&k) {
                assert_eq!(v, 0.0, "sample {i} slot {k} must be zero-filled");
            } else if k % 2 == 1 {
                // Odd slots carry the sub-model id — constant per slot.
                assert_eq!(v, (k / 2) as f32, "sample {i} slot {k}");
            }
        }
    }
}

#[test]
fn degradation_past_the_limit_is_a_typed_error() {
    let (plan, devices) = tight_cluster(3);
    // Both roomy devices die; the tight survivor can host one of the three
    // sub-models, which would drop two — more than the configured limit.
    let calls = Arc::new(AtomicUsize::new(0));
    let config = StreamConfig::default()
        .with_failure(0, 1)
        .with_failure(1, 1)
        .with_max_missing_sub_models(1);
    let err = StreamScheduler::new(plan.clone(), devices, config)
        .unwrap()
        .run(&inputs(12), executors_for(&plan, &calls), concat_fusion())
        .unwrap_err();
    assert!(
        matches!(err, SchedError::DegradationLimit { ref missing, limit: 1 } if missing.len() == 2),
        "{err}"
    );
}

#[test]
fn partial_final_round_is_priced_at_its_actual_sample_count() {
    let devices = DeviceSpec::raspberry_pi_cluster(3);
    let plan = plan_for(&devices);
    let calls = Arc::new(AtomicUsize::new(0));
    // 6 samples in rounds of 4: the final round carries only 2.
    let samples = inputs(6);
    let config = StreamConfig::default();
    let report = StreamScheduler::new(plan.clone(), devices.clone(), config.clone())
        .unwrap()
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();
    assert_eq!(report.rounds, 2);
    assert_eq!(report.outputs.len(), 6);

    // Reconstruct the expected charge from the same analytic model: the full
    // round pays the pipeline fill, the 2-sample tail pays a 2-sample
    // interval — not a nominal 4-sample one.
    let model = edvit_edge::LatencyModel::new(config.network);
    let full = model.estimate_stream(&plan, &devices, 4, true).unwrap();
    let tail = model.estimate_stream(&plan, &devices, 2, true).unwrap();
    let expected =
        full.device_round_seconds + full.fusion_round_seconds + tail.round_interval_seconds;
    assert!(
        (report.simulated_total_seconds - expected).abs() < 1e-9,
        "simulated {} != expected {expected}",
        report.simulated_total_seconds
    );
    // The regression guard: the old accounting billed both rounds at the
    // nominal round size, which is strictly more time.
    assert!(
        report.simulated_total_seconds < full.total_seconds(2),
        "partial tail round must cost less than a nominal one: {} !< {}",
        report.simulated_total_seconds,
        full.total_seconds(2)
    );
    // Realized throughput divides by the 6 samples actually fused.
    let effective = 6.0 / report.simulated_total_seconds;
    assert!(
        (report.effective_samples_per_second - effective).abs() < 1e-9,
        "effective {} != {effective}",
        report.effective_samples_per_second
    );
    // And therefore beats what the nominal-priced schedule would realize.
    assert!(report.effective_samples_per_second > 6.0 / full.total_seconds(2));
}

#[test]
fn explicit_round_layouts_drive_variable_size_batches_end_to_end() {
    let devices = DeviceSpec::raspberry_pi_cluster(3);
    let plan = plan_for(&devices);
    let calls = Arc::new(AtomicUsize::new(0));
    let samples = inputs(9);
    let layout = RoundLayout::from_sizes(&[2, 4, 1, 2]).unwrap();
    let scheduler = StreamScheduler::new(plan.clone(), devices, StreamConfig::default()).unwrap();
    let report = scheduler
        .run_rounds(
            &samples,
            &layout,
            executors_for(&plan, &calls),
            concat_fusion(),
        )
        .unwrap();
    assert_eq!(report.rounds, 4);
    assert_eq!(report.outputs.len(), 9);
    assert!(report.effective_samples_per_second > 0.0);

    // Continuous batches fuse the same outputs as the uniform layout.
    let uniform = scheduler
        .run(&samples, executors_for(&plan, &calls), concat_fusion())
        .unwrap();
    for (a, b) in report.outputs.iter().zip(&uniform.outputs) {
        assert_eq!(a.data(), b.data());
    }
    // A layout that does not cover the inputs is a typed error.
    let wrong = RoundLayout::from_sizes(&[2, 2]).unwrap();
    let err = scheduler
        .run_rounds(
            &samples,
            &wrong,
            executors_for(&plan, &calls),
            concat_fusion(),
        )
        .unwrap_err();
    assert!(matches!(err, SchedError::InvalidConfig { .. }), "{err}");
}
