//! Observability invariants at the scheduler layer: the wire-byte accounting
//! must balance per device, and a recording [`MetricsSink`]'s journal must
//! replay — offline, from the event text alone — to counters bitwise equal
//! to the live [`StreamReport`].

use edvit_edge::{FusionFn, SubModelFn};
use edvit_metrics::{MetricsSink, RunJournal, StreamCounters};
use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlan, SplitPlanner};
use edvit_sched::{
    FaultScript, FrameFault, FrameSlot, StreamConfig, StreamReport, StreamScheduler,
};
use edvit_tensor::Tensor;
use edvit_vit::ViTConfig;

fn plan_for(devices: &[DeviceSpec]) -> SplitPlan {
    SplitPlanner::new(PlannerConfig::default())
        .plan(&ViTConfig::vit_base(10), devices, 7)
        .unwrap()
}

fn executors_for(plan: &SplitPlan) -> Vec<SubModelFn> {
    (0..plan.sub_models.len())
        .map(|i| -> SubModelFn {
            Box::new(move |sample: &Tensor| {
                Ok(Tensor::from_vec(vec![sample.sum() + i as f32, i as f32], &[2]).unwrap())
            })
        })
        .collect()
}

fn concat_fusion() -> FusionFn {
    Box::new(|concat: &Tensor| Ok(concat.clone()))
}

fn inputs(n: usize) -> Vec<Tensor> {
    (0..n).map(|i| Tensor::full(&[3], i as f32)).collect()
}

/// Runs the scheduler with a recording sink attached and returns the live
/// report together with the journal the run produced.
fn run_recorded(
    devices: &[DeviceSpec],
    config: StreamConfig,
    samples: usize,
) -> (StreamReport, RunJournal) {
    let plan = plan_for(devices);
    let sink = MetricsSink::recording();
    let report = StreamScheduler::new(
        plan.clone(),
        devices.to_vec(),
        config.with_sink(sink.clone()),
    )
    .unwrap()
    .run(&inputs(samples), executors_for(&plan), concat_fusion())
    .unwrap();
    (report, sink.journal())
}

/// Satellite-1 invariant plus the bitwise replay check, applied to one run:
/// wire bytes balance per device, the journal survives a text round-trip,
/// and the offline replay reconstructs the live counters exactly.
fn assert_observable(report: &StreamReport, journal: &RunJournal, label: &str) {
    assert_eq!(
        report.bytes_on_wire,
        report.per_device_wire_bytes.values().sum::<u64>(),
        "{label}: bytes_on_wire must equal the per-device sum"
    );
    assert!(!journal.is_empty(), "{label}: recording sink saw no events");

    // The journal is plain text; parsing it back must lose nothing.
    let text = journal.to_text();
    let reparsed = RunJournal::from_text(&text).unwrap();
    assert_eq!(
        reparsed.len(),
        journal.len(),
        "{label}: round-trip dropped events"
    );

    let live: StreamCounters = report.counters();
    let replayed = reparsed.replay_stream().unwrap();
    assert!(
        replayed.bitwise_eq(&live),
        "{label}: replay diverged on {:?}",
        replayed.diff(&live)
    );
}

#[test]
fn healthy_pipelined_run_replays_bitwise() {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let (report, journal) = run_recorded(&devices, StreamConfig::default(), 32);
    assert_eq!(report.outputs.len(), 32);
    assert_observable(&report, &journal, "healthy");
}

#[test]
fn failover_run_replays_bitwise_including_recovery_costs() {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let (report, journal) = run_recorded(&devices, StreamConfig::default().with_failure(2, 3), 40);
    assert_eq!(report.devices_lost, vec![2]);
    assert!(report.recovery_seconds > 0.0);
    assert!(report.samples_replayed > 0);
    assert_observable(&report, &journal, "failover");
}

#[test]
fn elastic_join_run_replays_bitwise() {
    let roomy = DeviceSpec::raspberry_pi_cluster(4);
    let devices = roomy[..3].to_vec();
    let joiner = roomy[3].clone();
    let (report, journal) =
        run_recorded(&devices, StreamConfig::default().with_join(joiner, 4), 32);
    assert_eq!(report.devices_joined, vec![3]);
    assert!(report.repartitions >= 1);
    // The joiner's join control frame is wire traffic and must be accounted
    // to the joining device.
    assert!(report.per_device_wire_bytes.contains_key(&3));
    assert_observable(&report, &journal, "join");
}

/// Every frame-fault kind in one stream: corrupt (retry), dropped data frame
/// (retry), duplicated data frame (dedupe), dropped and duplicated
/// heartbeats (stale-beacon path). The dropped and corrupted deliveries
/// still crossed the wire, so they must appear in both the total and the
/// per-device byte accounting — the drift this PR fixes.
#[test]
fn faulted_deliveries_keep_the_wire_accounting_balanced() {
    let devices = DeviceSpec::raspberry_pi_cluster(4);
    let plan = plan_for(&devices);
    let hosting: Vec<usize> = devices
        .iter()
        .map(|d| d.id)
        .filter(|&id| !plan.assignment.sub_models_on(id).is_empty())
        .collect();
    assert!(
        hosting.len() >= 2,
        "need two hosting devices for the script"
    );

    let mut faults = FaultScript::new();
    faults.push(
        hosting[0],
        1,
        FrameSlot::Data(0),
        FrameFault::CorruptBit { bit: 9 },
    );
    faults.push(hosting[1], 2, FrameSlot::Data(0), FrameFault::Drop);
    faults.push(hosting[0], 3, FrameSlot::Data(0), FrameFault::Duplicate);
    faults.push(hosting[1], 4, FrameSlot::Heartbeat, FrameFault::Drop);
    faults.push(hosting[0], 5, FrameSlot::Heartbeat, FrameFault::Duplicate);

    let (report, journal) = run_recorded(&devices, StreamConfig::default().with_faults(faults), 32);
    assert_eq!(report.outputs.len(), 32);
    assert_eq!(
        report.corrupt_frames, 2,
        "one corrupt + one dropped data frame"
    );
    assert_eq!(report.retries, 2);
    assert!(report.retry_seconds > 0.0);
    assert_eq!(report.duplicate_frames, 1);
    assert_eq!(report.dropped_heartbeats, 1);
    assert!(
        report.stale_heartbeats >= 1,
        "duplicated heartbeat must read stale"
    );
    assert_observable(&report, &journal, "faulted");

    // Cross-check the totals against a clean run of the same workload: the
    // faulted stream shipped strictly more bytes (retries and duplicates),
    // never fewer — dropped frames still burned their wire budget.
    let (clean, _) = run_recorded(&devices, StreamConfig::default(), 32);
    assert!(
        report.bytes_on_wire > clean.bytes_on_wire,
        "faulted {} !> clean {}",
        report.bytes_on_wire,
        clean.bytes_on_wire
    );
    for (device, bytes) in &clean.per_device_wire_bytes {
        assert!(
            report.per_device_wire_bytes[device] >= *bytes,
            "device {device} lost wire bytes under faults"
        );
    }
}

/// Seeded sweep in the chaos-matrix style: different plans, a
/// seed-dependent victim and fault, and one mid-stream death — every
/// combination must balance its bytes and replay bitwise.
#[test]
fn seeded_fault_matrix_replays_bitwise_at_seeds_0_through_3() {
    for seed in 0u64..4 {
        let devices = DeviceSpec::raspberry_pi_cluster(4);
        let plan = SplitPlanner::new(PlannerConfig::default())
            .plan(&ViTConfig::vit_base(10), &devices, seed)
            .unwrap();
        let hosting: Vec<usize> = devices
            .iter()
            .map(|d| d.id)
            .filter(|&id| !plan.assignment.sub_models_on(id).is_empty())
            .collect();
        let faulty = hosting[seed as usize % hosting.len()];
        let victim = hosting[(seed as usize + 1) % hosting.len()];

        let mut faults = FaultScript::new();
        let fault = match seed % 4 {
            0 => FrameFault::CorruptBit { bit: 17 },
            1 => FrameFault::Drop,
            2 => FrameFault::Duplicate,
            _ => FrameFault::Truncate { keep: 5 },
        };
        faults.push(faulty, 1 + seed % 3, FrameSlot::Data(0), fault);

        let config = StreamConfig::default()
            .with_faults(faults)
            .with_failure(victim, 5);
        let sink = MetricsSink::recording();
        let report = StreamScheduler::new(
            plan.clone(),
            devices.clone(),
            config.with_sink(sink.clone()),
        )
        .unwrap()
        .run(&inputs(32), executors_for(&plan), concat_fusion())
        .unwrap();

        assert_eq!(report.devices_lost, vec![victim], "seed {seed}");
        assert_observable(&report, &sink.journal(), &format!("seed {seed}"));
    }
}

/// The default (disabled) sink records nothing, and attaching it does not
/// perturb the run: reports from a disabled-sink run and a recording-sink
/// run of the same workload carry identical counters.
#[test]
fn disabled_sink_is_a_true_no_op() {
    let devices = DeviceSpec::raspberry_pi_cluster(3);
    let plan = plan_for(&devices);
    let off = MetricsSink::disabled();
    assert!(!off.is_enabled());

    let quiet = StreamScheduler::new(
        plan.clone(),
        devices.clone(),
        StreamConfig::default()
            .with_failure(1, 2)
            .with_sink(off.clone()),
    )
    .unwrap()
    .run(&inputs(24), executors_for(&plan), concat_fusion())
    .unwrap();
    assert!(off.journal().is_empty());
    assert!(off.expose().is_empty());

    let (recorded, journal) =
        run_recorded(&devices, StreamConfig::default().with_failure(1, 2), 24);
    assert!(!journal.is_empty());
    // `max_rounds_in_flight` observes a real producer/consumer race and may
    // differ between any two runs; every deterministic counter must match.
    let divergent: Vec<&str> = quiet
        .counters()
        .diff(&recorded.counters())
        .into_iter()
        .filter(|&field| field != "max_rounds_in_flight")
        .collect();
    assert!(
        divergent.is_empty(),
        "attaching a sink changed the run: {divergent:?}"
    );
}
