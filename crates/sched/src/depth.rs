//! Adaptive pipeline depth: deepen while fusion is the bottleneck, shallow
//! out when queues back up.
//!
//! The rule is deliberately small and hysteresis-free — one step per
//! decision, clamped to `[min_depth, max_depth]`:
//!
//! 1. **Backlog wins.** When the admission queue holds more than
//!    `backlog_rounds` rounds' worth of requests, step the depth *down*: a
//!    deep pipeline buffers more in-flight rounds, and under backlog that
//!    in-flight inventory is pure added latency for everything queued behind
//!    it.
//! 2. **Otherwise, chase the bottleneck.** While the fusion stage is wider
//!    than the device stage, step the depth *up* — extra buffered rounds keep
//!    the devices busy across the fusion stalls. When the device stage
//!    dominates, depth buys nothing; hold.
//!
//! The controller is pure (state lives with the caller), so every decision is
//! deterministic and unit-testable in isolation.

use serde::{Deserialize, Serialize};

/// One recorded pipeline-depth change, for the serving report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthChange {
    /// Global round index at which the new depth took effect.
    pub round: u64,
    /// Depth before the change.
    pub from: usize,
    /// Depth after the change.
    pub to: usize,
}

/// The adaptive pipeline-depth policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthController {
    /// Smallest depth the controller will shallow to (≥ 1).
    pub min_depth: usize,
    /// Largest depth the controller will deepen to.
    pub max_depth: usize,
    /// Queue backlog, in rounds, beyond which the controller steps down
    /// regardless of the stage balance.
    pub backlog_rounds: usize,
}

impl Default for DepthController {
    fn default() -> Self {
        DepthController {
            min_depth: 1,
            max_depth: 4,
            backlog_rounds: 4,
        }
    }
}

impl DepthController {
    /// Decides the next pipeline depth from the current stage balance and
    /// queue backlog. `fusion_bound` is whether the fusion stage is currently
    /// wider than the device stage; `queued_rounds` is the admission backlog
    /// measured in nominal rounds.
    pub fn decide(&self, fusion_bound: bool, queued_rounds: usize, current: usize) -> usize {
        let min = self.min_depth.max(1);
        let max = self.max_depth.max(min);
        if queued_rounds > self.backlog_rounds {
            return current.saturating_sub(1).clamp(min, max);
        }
        if fusion_bound {
            return (current + 1).clamp(min, max);
        }
        current.clamp(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepens_while_fusion_bound_and_clamps_at_max() {
        let ctl = DepthController {
            min_depth: 1,
            max_depth: 3,
            backlog_rounds: 4,
        };
        assert_eq!(ctl.decide(true, 0, 1), 2);
        assert_eq!(ctl.decide(true, 0, 2), 3);
        assert_eq!(ctl.decide(true, 0, 3), 3);
    }

    #[test]
    fn backlog_steps_down_and_overrides_fusion_pressure() {
        let ctl = DepthController {
            min_depth: 1,
            max_depth: 4,
            backlog_rounds: 2,
        };
        assert_eq!(ctl.decide(true, 3, 3), 2);
        assert_eq!(ctl.decide(false, 5, 2), 1);
        // Never below min_depth.
        assert_eq!(ctl.decide(false, 5, 1), 1);
        // Backlog at the threshold is not yet a backlog.
        assert_eq!(ctl.decide(false, 2, 2), 2);
    }

    #[test]
    fn device_bound_holds_and_degenerate_bounds_normalize() {
        let ctl = DepthController {
            min_depth: 0,
            max_depth: 0,
            backlog_rounds: 0,
        };
        // min/max normalize to at least 1.
        assert_eq!(ctl.decide(false, 0, 5), 1);
        assert_eq!(ctl.decide(true, 0, 1), 1);
        let ctl = DepthController::default();
        assert_eq!(ctl.decide(false, 0, 2), 2);
    }
}
