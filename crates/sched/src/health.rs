//! Heartbeat device-health state machine.
//!
//! Every device emits one [`edvit_edge::ControlMessage`] heartbeat per round,
//! carrying the number of rounds it has completed this epoch. The scheduler's
//! fusion worker consumes each device's channel round by round, so the
//! heartbeat deadline manifests deterministically: a device that goes silent
//! surfaces as a disconnect exactly where its next heartbeat was due, and the
//! collector calls [`HealthTracker::declare_dead`] at that point (the virtual
//! clock separately charges the `grace_rounds` deadline window to
//! `recovery_seconds`). The tracker holds the per-device state and the
//! monotone sequence bookkeeping:
//!
//! ```text
//! Expected --Join/Heartbeat--> Alive --deadline missed--> Dead   (repartition)
//!                                │
//!                                └--------Leave--------> Left    (graceful)
//! ```
//!
//! `Left` is terminal and benign (the device finished its rounds); `Dead` is
//! terminal and triggers a repartition of the dead device's sub-models. Stale
//! (reordered) heartbeats never roll a sequence back, and no late beacon
//! resurrects a dead device.

use std::collections::BTreeMap;

/// Liveness state of one device within an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Registered; may not have beaten yet (a fresh device is at sequence 0).
    Alive,
    /// Announced a graceful leave after finishing its rounds.
    Left,
    /// Missed its heartbeat deadline; its sub-models must be re-hosted.
    Dead,
}

#[derive(Debug, Clone)]
struct DeviceState {
    health: DeviceHealth,
    /// Highest heartbeat sequence seen (rounds completed this epoch).
    last_sequence: u64,
    /// Capacity the device last advertised, in FLOPs per second.
    capacity_flops_per_second: f64,
}

/// Tracks per-device heartbeat sequences, capacities and liveness.
#[derive(Debug, Clone, Default)]
pub struct HealthTracker {
    devices: BTreeMap<usize, DeviceState>,
    heartbeats_seen: u64,
}

impl HealthTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        HealthTracker::default()
    }

    /// Registers a device the scheduler expects to participate. Idempotent.
    pub fn register(&mut self, device_id: usize) {
        self.devices.entry(device_id).or_insert(DeviceState {
            health: DeviceHealth::Alive,
            last_sequence: 0,
            capacity_flops_per_second: 0.0,
        });
    }

    /// Records a join announcement (capacity advertisement).
    pub fn observe_join(&mut self, device_id: usize, capacity_flops_per_second: f64) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            state.capacity_flops_per_second = capacity_flops_per_second;
        }
    }

    /// Records a heartbeat. Stale (out-of-order) sequences are ignored: the
    /// recorded sequence never decreases. Heartbeats from a device already
    /// declared dead are ignored too — death is terminal within an epoch.
    pub fn observe_heartbeat(&mut self, device_id: usize, sequence: u64) {
        self.register(device_id);
        self.heartbeats_seen += 1;
        if let Some(state) = self.devices.get_mut(&device_id) {
            if state.health == DeviceHealth::Alive && sequence > state.last_sequence {
                state.last_sequence = sequence;
            }
        }
    }

    /// Records a graceful leave: the device finished its work and said so.
    pub fn observe_leave(&mut self, device_id: usize, sequence: u64) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            if state.health == DeviceHealth::Alive {
                state.last_sequence = state.last_sequence.max(sequence);
                state.health = DeviceHealth::Left;
            }
        }
    }

    /// Declares a device dead: its transport disconnected before it delivered
    /// its expected rounds — the threaded manifestation of the heartbeat
    /// deadline passing. Terminal and idempotent; a device that announced a
    /// graceful leave stays `Left`.
    pub fn declare_dead(&mut self, device_id: usize) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            if state.health == DeviceHealth::Alive {
                state.health = DeviceHealth::Dead;
            }
        }
    }

    /// Health of `device_id`, if registered.
    pub fn health_of(&self, device_id: usize) -> Option<DeviceHealth> {
        self.devices.get(&device_id).map(|s| s.health)
    }

    /// Rounds completed (highest heartbeat sequence) by `device_id`.
    pub fn sequence_of(&self, device_id: usize) -> u64 {
        self.devices.get(&device_id).map_or(0, |s| s.last_sequence)
    }

    /// Capacity last advertised by `device_id`, in FLOPs per second.
    pub fn capacity_of(&self, device_id: usize) -> f64 {
        self.devices
            .get(&device_id)
            .map_or(0.0, |s| s.capacity_flops_per_second)
    }

    /// Total heartbeats observed.
    pub fn heartbeats_seen(&self) -> u64 {
        self.heartbeats_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graceful_leave_is_not_a_death() {
        let mut tracker = HealthTracker::new();
        tracker.register(0);
        tracker.register(1);
        tracker.observe_heartbeat(0, 5);
        tracker.observe_leave(1, 5);
        tracker.observe_heartbeat(0, 9);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Alive));
        assert_eq!(tracker.health_of(1), Some(DeviceHealth::Left));
        assert_eq!(tracker.sequence_of(1), 5);
    }

    #[test]
    fn stale_heartbeats_never_roll_the_sequence_back() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 7);
        tracker.observe_heartbeat(0, 3);
        assert_eq!(tracker.sequence_of(0), 7);
        assert_eq!(tracker.heartbeats_seen(), 2);
    }

    #[test]
    fn declare_dead_is_terminal_but_spares_the_gracefully_left() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 3);
        tracker.declare_dead(0);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Dead));
        // Death is terminal: late heartbeats cannot resurrect the device or
        // advance its sequence.
        tracker.observe_heartbeat(0, 9);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Dead));
        assert_eq!(tracker.sequence_of(0), 3);
        tracker.observe_leave(1, 5);
        tracker.declare_dead(1);
        assert_eq!(tracker.health_of(1), Some(DeviceHealth::Left));
        // Declaring an unknown device registers it as dead.
        tracker.declare_dead(7);
        assert_eq!(tracker.health_of(7), Some(DeviceHealth::Dead));
    }

    #[test]
    fn capacity_is_recorded_and_unknown_devices_are_none() {
        let mut tracker = HealthTracker::new();
        tracker.observe_join(3, 4.5e8);
        assert_eq!(tracker.capacity_of(3), 4.5e8);
        assert_eq!(tracker.capacity_of(99), 0.0);
        assert_eq!(tracker.health_of(99), None);
        assert_eq!(tracker.sequence_of(99), 0);
    }
}
