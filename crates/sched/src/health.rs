//! Heartbeat device-health state machine.
//!
//! Every device emits one [`edvit_edge::ControlMessage`] heartbeat per round,
//! carrying the number of rounds it has completed this epoch. The scheduler's
//! fusion worker consumes each device's channel round by round, so the
//! heartbeat deadline manifests deterministically: a device that goes silent
//! surfaces as a disconnect exactly where its next heartbeat was due, and the
//! collector calls [`HealthTracker::declare_dead`] at that point (the virtual
//! clock separately charges the `grace_rounds` deadline window to
//! `recovery_seconds`). The tracker holds the per-device state and the
//! monotone sequence bookkeeping:
//!
//! ```text
//! Expected --Join/Heartbeat--> Alive --deadline missed--> Dead   (repartition)
//!                                │                          │
//!                                └-------Leave------> Left   │
//!                                                       │    │
//!                                    Rejoined <--Join---┴----┘  (new identity-epoch)
//! ```
//!
//! `Left` is terminal and benign (the device finished its rounds); `Dead` is
//! terminal and triggers a repartition of the dead device's sub-models. A
//! terminal state is never *resurrected*: a `Join` from a dead or departed
//! device opens a **new identity-epoch** — [`DeviceHealth::Rejoined`], with a
//! fresh sequence domain and a bumped incarnation counter — rather than
//! flipping the old record back to `Alive`. Stale (reordered or replayed)
//! heartbeats never roll a sequence back and never satisfy a deadline; the
//! tracker counts them so the scheduler can surface replay pressure.

use std::collections::BTreeMap;

/// Liveness state of one device within an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Registered; may not have beaten yet (a fresh device is at sequence 0).
    Alive,
    /// Announced a graceful leave after finishing its rounds.
    Left,
    /// Missed its heartbeat deadline; its sub-models must be re-hosted.
    Dead,
    /// Came back after a terminal state, as a new identity-epoch. Behaves like
    /// [`DeviceHealth::Alive`] for liveness purposes but records that the old
    /// incarnation was never resurrected.
    Rejoined,
}

impl DeviceHealth {
    /// Whether the device currently participates in rounds (heartbeats are
    /// accepted, a missed deadline would kill it).
    pub fn is_live(self) -> bool {
        matches!(self, DeviceHealth::Alive | DeviceHealth::Rejoined)
    }
}

#[derive(Debug, Clone)]
struct DeviceState {
    health: DeviceHealth,
    /// Highest heartbeat sequence seen (rounds completed this epoch).
    last_sequence: u64,
    /// Capacity the device last advertised, in FLOPs per second.
    capacity_flops_per_second: f64,
    /// How many identity-epochs this device id has had (0 for the first).
    incarnation: u64,
}

/// Tracks per-device heartbeat sequences, capacities and liveness.
#[derive(Debug, Clone, Default)]
pub struct HealthTracker {
    devices: BTreeMap<usize, DeviceState>,
    heartbeats_seen: u64,
    stale_heartbeats: u64,
}

impl HealthTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        HealthTracker::default()
    }

    /// Registers a device the scheduler expects to participate. Idempotent.
    pub fn register(&mut self, device_id: usize) {
        self.devices.entry(device_id).or_insert(DeviceState {
            health: DeviceHealth::Alive,
            last_sequence: 0,
            capacity_flops_per_second: 0.0,
            incarnation: 0,
        });
    }

    /// Records a join announcement (capacity advertisement).
    pub fn observe_join(&mut self, device_id: usize, capacity_flops_per_second: f64) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            state.capacity_flops_per_second = capacity_flops_per_second;
        }
    }

    /// Admits a device back after a terminal state (`Dead` or `Left`) as a
    /// **new identity-epoch**: the health becomes [`DeviceHealth::Rejoined`],
    /// the incarnation counter advances and the sequence domain restarts at 0.
    /// The terminal fact about the previous incarnation is thereby preserved —
    /// nothing is resurrected. Called on a device that was never terminal
    /// (unknown, `Alive` or already `Rejoined`) this degrades to a plain
    /// [`HealthTracker::observe_join`] and the incarnation does not advance.
    pub fn observe_rejoin(&mut self, device_id: usize, capacity_flops_per_second: f64) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            state.capacity_flops_per_second = capacity_flops_per_second;
            if matches!(state.health, DeviceHealth::Dead | DeviceHealth::Left) {
                state.health = DeviceHealth::Rejoined;
                state.incarnation += 1;
                state.last_sequence = 0;
            }
        }
    }

    /// Records a heartbeat, enforcing per-device sequence monotonicity: a
    /// stale or replayed sequence (`sequence <= last`) is ignored *and
    /// counted* — it can never push a deadline forward. The comparison is on
    /// the raw `u64`, so after a (theoretical) wraparound to 0 every beacon is
    /// stale until the sequence domain is reset by a new epoch; a wrapped
    /// counter is indistinguishable from a replay and must not buy liveness.
    /// Heartbeats from a device already in a terminal state are ignored too —
    /// death is terminal within an identity-epoch.
    ///
    /// Returns whether the beacon was fresh (it advanced the sequence); a
    /// `false` return is exactly one increment of the stale counter, which is
    /// what lets the caller journal stale beacons without re-deriving the
    /// tracker's freshness rule.
    pub fn observe_heartbeat(&mut self, device_id: usize, sequence: u64) -> bool {
        self.register(device_id);
        self.heartbeats_seen += 1;
        if let Some(state) = self.devices.get_mut(&device_id) {
            if state.health.is_live() && sequence > state.last_sequence {
                state.last_sequence = sequence;
                return true;
            }
            self.stale_heartbeats += 1;
        }
        false
    }

    /// Records a graceful leave: the device finished its work and said so.
    pub fn observe_leave(&mut self, device_id: usize, sequence: u64) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            if state.health.is_live() {
                state.last_sequence = state.last_sequence.max(sequence);
                state.health = DeviceHealth::Left;
            }
        }
    }

    /// Declares a device dead: its transport disconnected before it delivered
    /// its expected rounds — the threaded manifestation of the heartbeat
    /// deadline passing. Terminal and idempotent; a device that announced a
    /// graceful leave stays `Left`.
    pub fn declare_dead(&mut self, device_id: usize) {
        self.register(device_id);
        if let Some(state) = self.devices.get_mut(&device_id) {
            if state.health.is_live() {
                state.health = DeviceHealth::Dead;
            }
        }
    }

    /// Starts a new scheduling epoch: every live device's heartbeat sequence
    /// domain restarts at 0 (workers count rounds per epoch). Terminal states
    /// and incarnation counters are untouched.
    pub fn begin_epoch(&mut self) {
        for state in self.devices.values_mut() {
            if state.health.is_live() {
                state.last_sequence = 0;
            }
        }
    }

    /// Health of `device_id`, if registered.
    pub fn health_of(&self, device_id: usize) -> Option<DeviceHealth> {
        self.devices.get(&device_id).map(|s| s.health)
    }

    /// Rounds completed (highest heartbeat sequence) by `device_id`.
    pub fn sequence_of(&self, device_id: usize) -> u64 {
        self.devices.get(&device_id).map_or(0, |s| s.last_sequence)
    }

    /// Capacity last advertised by `device_id`, in FLOPs per second.
    pub fn capacity_of(&self, device_id: usize) -> f64 {
        self.devices
            .get(&device_id)
            .map_or(0.0, |s| s.capacity_flops_per_second)
    }

    /// Identity-epoch counter of `device_id`: 0 for a first incarnation, +1
    /// per admitted rejoin.
    pub fn incarnation_of(&self, device_id: usize) -> u64 {
        self.devices.get(&device_id).map_or(0, |s| s.incarnation)
    }

    /// Total heartbeats observed.
    pub fn heartbeats_seen(&self) -> u64 {
        self.heartbeats_seen
    }

    /// Heartbeats ignored because their sequence was stale or replayed, or
    /// because the device was already terminal.
    pub fn stale_heartbeats(&self) -> u64 {
        self.stale_heartbeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graceful_leave_is_not_a_death() {
        let mut tracker = HealthTracker::new();
        tracker.register(0);
        tracker.register(1);
        tracker.observe_heartbeat(0, 5);
        tracker.observe_leave(1, 5);
        tracker.observe_heartbeat(0, 9);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Alive));
        assert_eq!(tracker.health_of(1), Some(DeviceHealth::Left));
        assert_eq!(tracker.sequence_of(1), 5);
    }

    #[test]
    fn stale_heartbeats_never_roll_the_sequence_back() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 7);
        tracker.observe_heartbeat(0, 3);
        assert_eq!(tracker.sequence_of(0), 7);
        assert_eq!(tracker.heartbeats_seen(), 2);
        assert_eq!(tracker.stale_heartbeats(), 1);
    }

    #[test]
    fn replayed_sequence_is_counted_and_cannot_extend_a_deadline() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 4);
        // An attacker (or a duplicating link) replays the same beacon: the
        // sequence must not advance — a replay can never buy liveness.
        tracker.observe_heartbeat(0, 4);
        tracker.observe_heartbeat(0, 4);
        assert_eq!(tracker.sequence_of(0), 4);
        assert_eq!(tracker.stale_heartbeats(), 2);
        // A genuinely newer beacon still works.
        tracker.observe_heartbeat(0, 5);
        assert_eq!(tracker.sequence_of(0), 5);
        assert_eq!(tracker.stale_heartbeats(), 2);
    }

    #[test]
    fn wraparound_sequences_are_stale_not_fresh() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, u64::MAX);
        // A counter that wrapped to 0 is indistinguishable from a replay: it
        // must be ignored and counted, not treated as progress.
        tracker.observe_heartbeat(0, 0);
        tracker.observe_heartbeat(0, 1);
        assert_eq!(tracker.sequence_of(0), u64::MAX);
        assert_eq!(tracker.stale_heartbeats(), 2);
        // A new epoch resets the domain; sequencing works again.
        tracker.begin_epoch();
        tracker.observe_heartbeat(0, 1);
        assert_eq!(tracker.sequence_of(0), 1);
        assert_eq!(tracker.stale_heartbeats(), 2);
    }

    #[test]
    fn declare_dead_is_terminal_but_spares_the_gracefully_left() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 3);
        tracker.declare_dead(0);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Dead));
        // Death is terminal: late heartbeats cannot resurrect the device or
        // advance its sequence (they count as stale).
        tracker.observe_heartbeat(0, 9);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Dead));
        assert_eq!(tracker.sequence_of(0), 3);
        assert_eq!(tracker.stale_heartbeats(), 1);
        tracker.observe_leave(1, 5);
        tracker.declare_dead(1);
        assert_eq!(tracker.health_of(1), Some(DeviceHealth::Left));
        // Declaring an unknown device registers it as dead.
        tracker.declare_dead(7);
        assert_eq!(tracker.health_of(7), Some(DeviceHealth::Dead));
    }

    #[test]
    fn rejoin_is_a_new_identity_epoch_not_a_resurrection() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 6);
        tracker.declare_dead(0);
        assert_eq!(tracker.incarnation_of(0), 0);
        tracker.observe_rejoin(0, 2.0e9);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Rejoined));
        assert!(tracker.health_of(0).unwrap().is_live());
        assert_eq!(tracker.incarnation_of(0), 1);
        // Fresh sequence domain: the old incarnation's progress is gone.
        assert_eq!(tracker.sequence_of(0), 0);
        assert_eq!(tracker.capacity_of(0), 2.0e9);
        tracker.observe_heartbeat(0, 1);
        assert_eq!(tracker.sequence_of(0), 1);
        // The new incarnation can die too, and rejoin again.
        tracker.declare_dead(0);
        assert_eq!(tracker.health_of(0), Some(DeviceHealth::Dead));
        tracker.observe_rejoin(0, 2.0e9);
        assert_eq!(tracker.incarnation_of(0), 2);
        // A device that gracefully left can also come back as a new identity.
        tracker.observe_leave(1, 4);
        tracker.observe_rejoin(1, 1.0e9);
        assert_eq!(tracker.health_of(1), Some(DeviceHealth::Rejoined));
        assert_eq!(tracker.incarnation_of(1), 1);
    }

    #[test]
    fn rejoin_on_a_live_or_unknown_device_degrades_to_a_plain_join() {
        let mut tracker = HealthTracker::new();
        tracker.observe_rejoin(5, 3.0e8);
        assert_eq!(tracker.health_of(5), Some(DeviceHealth::Alive));
        assert_eq!(tracker.incarnation_of(5), 0);
        assert_eq!(tracker.capacity_of(5), 3.0e8);
        tracker.observe_heartbeat(5, 2);
        tracker.observe_rejoin(5, 4.0e8);
        assert_eq!(tracker.health_of(5), Some(DeviceHealth::Alive));
        assert_eq!(tracker.incarnation_of(5), 0);
        assert_eq!(tracker.sequence_of(5), 2, "no sequence reset on a no-op");
    }

    #[test]
    fn begin_epoch_resets_live_sequences_only() {
        let mut tracker = HealthTracker::new();
        tracker.observe_heartbeat(0, 8);
        tracker.observe_heartbeat(1, 8);
        tracker.declare_dead(1);
        tracker.begin_epoch();
        assert_eq!(tracker.sequence_of(0), 0);
        assert_eq!(tracker.sequence_of(1), 8, "terminal state is frozen");
        tracker.observe_heartbeat(0, 1);
        assert_eq!(tracker.sequence_of(0), 1);
        assert_eq!(tracker.stale_heartbeats(), 0);
    }

    #[test]
    fn capacity_is_recorded_and_unknown_devices_are_none() {
        let mut tracker = HealthTracker::new();
        tracker.observe_join(3, 4.5e8);
        assert_eq!(tracker.capacity_of(3), 4.5e8);
        assert_eq!(tracker.capacity_of(99), 0.0);
        assert_eq!(tracker.health_of(99), None);
        assert_eq!(tracker.sequence_of(99), 0);
        assert_eq!(tracker.incarnation_of(99), 0);
    }
}
