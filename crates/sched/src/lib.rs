//! # edvit-sched
//!
//! A streaming, fault-tolerant scheduler on top of the `edvit-edge` cluster
//! primitives: the first subsystem in this reproduction where *time*,
//! *membership* and the *partition plan* all change while inference is
//! running.
//!
//! Three pieces compose:
//!
//! * **Pipelined rounds** — the input stream is cut into rounds; every device
//!   computes round *k+1* while the fusion worker drains round *k*. Frames
//!   travel through a *bounded* per-device lane opened from the configured
//!   [`Transport`] backend (in-process channels or real loopback TCP — same
//!   frames, same order, same reports), so backpressure is explicit: a
//!   device can buffer at most `pipeline_depth` undrained rounds (one more
//!   may be in computation). Steady-state throughput approaches the
//!   per-device bound instead of the barrier bound (compare
//!   [`ScheduleMode::Barrier`] vs [`ScheduleMode::Pipelined`]).
//! * **Health tracking** — devices announce themselves with wire-v2 control
//!   frames (`join` / `leave` / `heartbeat`). The fusion worker consumes each
//!   device's channel round by round, so a silenced device surfaces
//!   deterministically as a disconnect exactly where its next heartbeat was
//!   due; the [`HealthTracker`] records it as terminally `Dead` (graceful
//!   leaves stay `Left`), and the virtual clock charges the round-denominated
//!   `grace_rounds` deadline window to the recovery time.
//! * **Live repartitioning** — on a death, the scheduler calls
//!   `SplitPlan::replan_for_survivors`, moves the orphaned sub-models onto
//!   live hosts, and replays every in-flight round. No sample is lost and no
//!   sample is fused twice; the exactly-once invariant is checked, not
//!   assumed.
//!
//! All reported timing comes from the deterministic virtual [`SimClock`]
//! driven by the analytic `edvit_edge::StreamTiming` model, so throughput and
//! recovery numbers are reproducible on any machine.
//!
//! # Example
//!
//! ```
//! use edvit_edge::{FusionFn, NetworkConfig, SubModelFn};
//! use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlanner};
//! use edvit_sched::{StreamConfig, StreamScheduler};
//! use edvit_tensor::Tensor;
//! use edvit_vit::ViTConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let devices = DeviceSpec::raspberry_pi_cluster(2);
//! let plan = SplitPlanner::new(PlannerConfig::default())
//!     .plan(&ViTConfig::vit_base(10), &devices, 0)?;
//! let executors: Vec<SubModelFn> = (0..plan.sub_models.len())
//!     .map(|i| -> SubModelFn { Box::new(move |_: &Tensor| Ok(Tensor::full(&[2], i as f32))) })
//!     .collect();
//! let fusion: FusionFn = Box::new(|concat: &Tensor| Ok(concat.clone()));
//! let scheduler = StreamScheduler::new(plan, devices, StreamConfig::default())?;
//! let inputs: Vec<Tensor> = (0..8).map(|_| Tensor::zeros(&[1])).collect();
//! let report = scheduler.run(&inputs, executors, fusion)?;
//! assert_eq!(report.outputs.len(), 8);
//! assert!(report.heartbeats_seen > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod depth;
mod error;
mod faults;
mod health;
mod rounds;
mod stream;

pub use clock::SimClock;
pub use depth::{DepthChange, DepthController};
pub use error::SchedError;
pub use faults::{apply_fault, FaultScript, FaultedDelivery, FrameFault, FrameSlot, JoinInjection};
pub use health::{DeviceHealth, HealthTracker};
pub use rounds::RoundLayout;
pub use stream::{FailureInjection, ScheduleMode, StreamConfig, StreamReport, StreamScheduler};

// Re-exported so instrumented callers can attach a sink without naming the
// metrics crate themselves.
pub use edvit_metrics::MetricsSink;

// Re-exported so stream configurations can pick a wire codec and transport
// backend without a direct `edvit-edge`/`edvit-net` dependency at the call
// site.
pub use edvit_edge::{NetOptions, PayloadCodec, TransportKind};
pub use edvit_net::{FrameRx, FrameTx, LaneEvent, SimTransport, TcpTransport, Transport};

/// Convenience result alias for scheduler operations.
pub type Result<T> = std::result::Result<T, SchedError>;
