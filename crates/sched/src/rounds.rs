//! Variable-size round layouts: which contiguous span of the input stream
//! each global round covers.
//!
//! The streaming scheduler originally hard-wired "round `k` = samples
//! `[k·round_size, (k+1)·round_size)`". A serving front-door forms rounds
//! from whatever happens to be queued — continuous batching — so round sizes
//! vary run to run. [`RoundLayout`] is the seam between the two: it maps
//! rounds to sample spans (and samples back to rounds) without assuming the
//! rounds are uniform, and [`crate::StreamScheduler::run_rounds`] executes
//! any layout the caller hands it.

use std::ops::Range;

use crate::{Result, SchedError};

/// A partition of the flat input stream into contiguous, non-empty rounds.
///
/// Round `r` covers `span(r)`; spans tile `0..total_samples` in order with no
/// gaps. Construction validates the shape once, so every accessor is
/// panic-free afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLayout {
    /// `bounds[r]..bounds[r + 1]` is round `r`'s sample span; `bounds[0]` is
    /// always 0 and the last entry is the total sample count.
    bounds: Vec<usize>,
}

impl RoundLayout {
    /// The classic uniform layout: rounds of `round_size` samples, with a
    /// final partial round when `total_samples` is not a multiple.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] when `total_samples` or
    /// `round_size` is zero.
    pub fn uniform(total_samples: usize, round_size: usize) -> Result<Self> {
        if round_size == 0 {
            return Err(SchedError::InvalidConfig {
                message: "round size must be at least 1".to_string(),
            });
        }
        if total_samples == 0 {
            return Err(SchedError::InvalidConfig {
                message: "a round layout must cover at least one sample".to_string(),
            });
        }
        let rounds = total_samples.div_ceil(round_size);
        let mut bounds = Vec::with_capacity(rounds + 1);
        for r in 0..rounds {
            bounds.push(r * round_size);
        }
        bounds.push(total_samples);
        Ok(RoundLayout { bounds })
    }

    /// A layout from explicit per-round sizes, e.g. the batches a
    /// continuous-batching front end formed from its queues.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] when `sizes` is empty or any
    /// round is empty.
    pub fn from_sizes(sizes: &[usize]) -> Result<Self> {
        if sizes.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "a round layout needs at least one round".to_string(),
            });
        }
        let mut bounds = Vec::with_capacity(sizes.len() + 1);
        let mut offset = 0usize;
        bounds.push(0);
        for (r, &size) in sizes.iter().enumerate() {
            if size == 0 {
                return Err(SchedError::InvalidConfig {
                    message: format!("round {r} is empty; every round must carry a sample"),
                });
            }
            offset += size;
            bounds.push(offset);
        }
        Ok(RoundLayout { bounds })
    }

    /// Number of rounds in the layout.
    pub fn rounds(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total samples covered by the layout.
    pub fn total_samples(&self) -> usize {
        *self.bounds.last().unwrap_or(&0)
    }

    /// Sample span of the given global round (empty when the round is out of
    /// range).
    pub fn span(&self, round: u64) -> Range<usize> {
        let r = round as usize;
        if r + 1 >= self.bounds.len() {
            let end = self.total_samples();
            return end..end;
        }
        self.bounds[r]..self.bounds[r + 1]
    }

    /// Samples carried by the given round (0 when out of range).
    pub fn len_of(&self, round: u64) -> usize {
        self.span(round).len()
    }

    /// The round that covers the given sample index, if any.
    pub fn round_of(&self, sample: usize) -> Option<u64> {
        if sample >= self.total_samples() {
            return None;
        }
        // First bound strictly above `sample`; its predecessor starts the round.
        let upper = self.bounds.partition_point(|&b| b <= sample);
        Some((upper - 1) as u64)
    }

    /// Per-round sizes, in round order.
    pub fn sizes(&self) -> Vec<usize> {
        self.bounds.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The largest round in the layout.
    pub fn max_len(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout_matches_div_ceil_arithmetic() {
        let layout = RoundLayout::uniform(10, 4).unwrap();
        assert_eq!(layout.rounds(), 3);
        assert_eq!(layout.total_samples(), 10);
        assert_eq!(layout.span(0), 0..4);
        assert_eq!(layout.span(1), 4..8);
        assert_eq!(layout.span(2), 8..10);
        assert_eq!(layout.len_of(2), 2);
        assert_eq!(layout.sizes(), vec![4, 4, 2]);
        assert_eq!(layout.max_len(), 4);
        // Out-of-range rounds are empty, not a panic.
        assert_eq!(layout.span(3), 10..10);
        assert_eq!(layout.len_of(99), 0);
    }

    #[test]
    fn round_of_inverts_span() {
        let layout = RoundLayout::from_sizes(&[3, 1, 5, 2]).unwrap();
        assert_eq!(layout.rounds(), 4);
        assert_eq!(layout.total_samples(), 11);
        for round in 0..layout.rounds() as u64 {
            for sample in layout.span(round) {
                assert_eq!(layout.round_of(sample), Some(round));
            }
        }
        assert_eq!(layout.round_of(11), None);
        assert_eq!(layout.max_len(), 5);
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        assert!(RoundLayout::uniform(0, 4).is_err());
        assert!(RoundLayout::uniform(4, 0).is_err());
        assert!(RoundLayout::from_sizes(&[]).is_err());
        assert!(RoundLayout::from_sizes(&[2, 0, 1]).is_err());
    }
}
