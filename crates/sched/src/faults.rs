//! Deterministic fault scripts: the mechanism half of fault injection.
//!
//! A [`FaultScript`] is plain data — a map from *(device, round, frame slot)*
//! to a per-attempt list of [`FrameFault`] mutations — applied by the fusion
//! collector to the pristine bytes it receives at the wire/channel boundary.
//! No randomness lives here: the policy layer (`edvit-chaos`) expands a
//! seeded declarative plan into a script, so the scheduler itself stays free
//! of RNG state and every drill replays bit-identically.
//!
//! Faults are indexed by delivery *attempt*: attempt 0 is the original
//! delivery, attempt `n` the `n`-th re-request. A slot whose fault list is
//! exhausted delivers clean — which is how "corrupt once, recover on retry"
//! and "corrupt forever, escalate to death" are both expressed.

use std::collections::BTreeMap;

use bytes::Bytes;
use edvit_edge::wire::V2_HEADER_LEN;
use edvit_partition::DeviceSpec;

/// Position of a wire frame within one device round.
///
/// A device hosting `k` sub-models emits exactly `k` data frames followed by
/// one heartbeat per round, so the slot plus the round pins a frame uniquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FrameSlot {
    /// The `i`-th feature-batch frame of the round (0-based, hosted
    /// sub-model order).
    Data(u32),
    /// The round-closing heartbeat control frame.
    Heartbeat,
}

/// One deterministic mutation of a frame at delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Flip one payload bit (index taken modulo the payload width), which the
    /// CRC-32 trailer detects as a checksum mismatch.
    CorruptBit {
        /// Raw bit index; reduced modulo the payload bit-width on apply.
        bit: u32,
    },
    /// Deliver only a prefix of the frame (length taken modulo the frame
    /// length, so the result is always strictly shorter).
    Truncate {
        /// Raw prefix length; reduced modulo the frame length on apply.
        keep: u32,
    },
    /// Deliver the frame twice — exercising the receiver's dedupe.
    Duplicate,
    /// The link eats the frame entirely. For a data frame the collector
    /// treats this as a failed attempt (re-request); for a heartbeat the
    /// beacon is simply lost.
    Drop,
}

/// What a [`FrameFault`] turned a pristine frame into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultedDelivery {
    /// One (possibly mutated) copy arrives.
    Deliver(Bytes),
    /// Two identical copies arrive back to back.
    DeliverTwice(Bytes),
    /// Nothing arrives.
    Dropped,
}

/// Applies `fault` to the pristine encoded frame, yielding the bytes the
/// receiver actually sees for this attempt.
pub fn apply_fault(fault: &FrameFault, pristine: &Bytes) -> FaultedDelivery {
    match *fault {
        FrameFault::CorruptBit { bit } => {
            let mut bytes = pristine.as_slice().to_vec();
            if bytes.len() > V2_HEADER_LEN {
                let payload_bits = (bytes.len() - V2_HEADER_LEN) * 8;
                let index = bit as usize % payload_bits;
                bytes[V2_HEADER_LEN + index / 8] ^= 1 << (index % 8);
            } else if let Some(last) = bytes.last_mut() {
                *last ^= 1;
            }
            FaultedDelivery::Deliver(Bytes::from(bytes))
        }
        FrameFault::Truncate { keep } => {
            let len = pristine.len().max(1);
            let keep = keep as usize % len;
            FaultedDelivery::Deliver(Bytes::from(pristine.as_slice()[..keep].to_vec()))
        }
        FrameFault::Duplicate => FaultedDelivery::DeliverTwice(pristine.clone()),
        FrameFault::Drop => FaultedDelivery::Dropped,
    }
}

/// A deterministic, pre-expanded schedule of frame faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    faults: BTreeMap<(usize, u64, FrameSlot), Vec<FrameFault>>,
}

impl FaultScript {
    /// An empty script (injects nothing).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Appends `fault` as the next delivery attempt of the given frame.
    /// The first push affects attempt 0 (the original delivery), the second
    /// push attempt 1 (the first re-request), and so on.
    pub fn push(&mut self, device: usize, round: u64, slot: FrameSlot, fault: FrameFault) {
        self.faults
            .entry((device, round, slot))
            .or_default()
            .push(fault);
    }

    /// The fault scheduled for delivery attempt `attempt` of the given frame,
    /// or `None` for a clean delivery.
    pub fn fault_for(
        &self,
        device: usize,
        round: u64,
        slot: FrameSlot,
        attempt: u32,
    ) -> Option<&FrameFault> {
        self.faults
            .get(&(device, round, slot))
            .and_then(|attempts| attempts.get(attempt as usize))
    }

    /// Whether the script injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of distinct faulted frames.
    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

/// A scripted mid-stream join: at (global) round `at_round` the device offers
/// its capacity via a `Join` control frame and the scheduler opens a new
/// membership epoch. Rejoining a previously dead device id starts a new
/// identity-epoch; joining with an id that is still live is a
/// [`crate::SchedError::RejoinConflict`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinInjection {
    /// The joining device and its offered capacity.
    pub device: DeviceSpec,
    /// Global stream round at which the join frame arrives.
    pub at_round: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_edge::{ControlMessage, EdgeError, WireFrame};

    fn heartbeat_frame() -> Bytes {
        ControlMessage::heartbeat(3, 7, 4.5e8).encode()
    }

    #[test]
    fn corrupt_bit_trips_the_checksum() {
        let pristine = heartbeat_frame();
        let FaultedDelivery::Deliver(mutated) =
            apply_fault(&FrameFault::CorruptBit { bit: 999 }, &pristine)
        else {
            panic!("corruption delivers one copy");
        };
        assert_eq!(mutated.len(), pristine.len());
        assert!(matches!(
            WireFrame::decode(mutated).unwrap_err(),
            EdgeError::ChecksumMismatch { .. }
        ));
        // The pristine copy still decodes: the mutation is on the delivery,
        // not the sender.
        assert!(WireFrame::decode(pristine).is_ok());
    }

    #[test]
    fn truncation_is_always_strictly_shorter_and_fails_decode() {
        let pristine = heartbeat_frame();
        for keep in [0u32, 1, 15, 39, 40, 41, 1000] {
            let FaultedDelivery::Deliver(short) =
                apply_fault(&FrameFault::Truncate { keep }, &pristine)
            else {
                panic!("truncation delivers one copy");
            };
            assert!(short.len() < pristine.len(), "keep={keep}");
            assert!(WireFrame::decode(short).is_err(), "keep={keep}");
        }
    }

    #[test]
    fn duplicate_and_drop_shapes() {
        let pristine = heartbeat_frame();
        assert_eq!(
            apply_fault(&FrameFault::Duplicate, &pristine),
            FaultedDelivery::DeliverTwice(pristine.clone())
        );
        assert_eq!(
            apply_fault(&FrameFault::Drop, &pristine),
            FaultedDelivery::Dropped
        );
    }

    #[test]
    fn script_is_indexed_by_attempt_and_exhausts_to_clean() {
        let mut script = FaultScript::new();
        assert!(script.is_empty());
        script.push(0, 2, FrameSlot::Data(1), FrameFault::CorruptBit { bit: 5 });
        script.push(0, 2, FrameSlot::Data(1), FrameFault::Truncate { keep: 3 });
        script.push(1, 0, FrameSlot::Heartbeat, FrameFault::Drop);
        assert_eq!(script.len(), 2);
        assert_eq!(
            script.fault_for(0, 2, FrameSlot::Data(1), 0),
            Some(&FrameFault::CorruptBit { bit: 5 })
        );
        assert_eq!(
            script.fault_for(0, 2, FrameSlot::Data(1), 1),
            Some(&FrameFault::Truncate { keep: 3 })
        );
        // Attempt 2 is beyond the scripted list: the re-request succeeds.
        assert_eq!(script.fault_for(0, 2, FrameSlot::Data(1), 2), None);
        // Other slots and devices are untouched.
        assert_eq!(script.fault_for(0, 2, FrameSlot::Data(0), 0), None);
        assert_eq!(script.fault_for(0, 2, FrameSlot::Heartbeat, 0), None);
        assert_eq!(
            script.fault_for(1, 0, FrameSlot::Heartbeat, 0),
            Some(&FrameFault::Drop)
        );
    }
}
