//! A deterministic virtual clock.
//!
//! Wall-clock time on a shared CI runner is noise; every timing number the
//! scheduler reports (round intervals, detection deadlines, recovery time)
//! comes from this clock, advanced by the analytic
//! [`edvit_edge::StreamTiming`] model. Two runs of the same stream therefore
//! report the same seconds, bit for bit.

/// Monotone virtual time in seconds, starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        SimClock { now: 0.0 }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `seconds`.
    ///
    /// # Panics
    ///
    /// Panics on a negative or NaN advance — virtual time never runs
    /// backwards, and a NaN would silently poison every later report field.
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0,
            "virtual clock cannot advance by {seconds} seconds"
        );
        self.now += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), 0.0);
        clock.advance(1.5);
        clock.advance(0.0);
        clock.advance(2.5);
        assert_eq!(clock.now(), 4.0);
        assert_eq!(SimClock::default(), SimClock::new());
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn nan_advance_panics() {
        SimClock::new().advance(f64::NAN);
    }
}
