//! The streaming scheduler: pipelined rounds over bounded transport lanes,
//! heartbeat health tracking, and live repartitioning on device death.
//!
//! # Execution model
//!
//! The input stream is cut into *rounds* of `round_size` samples. Execution
//! proceeds in *epochs*: one epoch per cluster membership. Within an epoch,
//! every active device runs on its own worker thread, processing rounds in
//! order: it computes the features of every sub-model it hosts, ships them as
//! wire-v2 [`FeatureBatchMessage`] frames, and follows each round with a
//! [`ControlMessage`] heartbeat. Every device owns a *bounded* lane to the
//! fusion worker — opened from the configured [`Transport`] backend
//! ([`TransportKind::Sim`] for in-process channels, [`TransportKind::Tcp`]
//! for real loopback sockets) and sized for `pipeline_depth` rounds of
//! frames. When the fusion side falls behind, `send` blocks, so a device can
//! buffer at most
//! `pipeline_depth` undrained rounds (and thus run at most
//! `pipeline_depth + 1` rounds ahead of the fused frontier, counting the one
//! it is computing): the backpressure is explicit, not emergent, and
//! inter-device skew is bounded by construction.
//!
//! The fusion worker consumes the per-device lanes *round by round*: for
//! round *k* it drains every device's frames up to and including that round's
//! heartbeat, then fuses the round. Consumption order, not OS scheduling,
//! therefore decides what the collector observes — which keeps failure
//! detection deterministic. A device death (scripted or real) silences its
//! sender; the collector sees the disconnect exactly when it needs the dead
//! device's next round, declares the death (the [`HealthTracker`] records the
//! device's last heartbeat and terminal state), tears the epoch down, hands
//! the survivors to [`SplitPlan::replan_for_survivors`], and replays every
//! round that was produced but not fused. In-flight samples are recomputed,
//! never lost, and the exactly-once check on the output slots makes
//! duplication a hard error rather than a silent possibility.
//!
//! # Fault handling
//!
//! The collector applies a deterministic [`FaultScript`] to the bytes it
//! receives *before* decoding them — the same place a lossy link would bite.
//! A corrupted, truncated or eaten data frame is a failed delivery: the
//! collector re-requests it (the script indexes faults by attempt, so a
//! re-request can fail again) up to [`StreamConfig::max_retries`] times, each
//! retry priced at the analytic
//! [`StreamTiming::retry_backoff_seconds`](edvit_edge::StreamTiming) backoff.
//! A frame still failing past the budget escalates to device death — the same
//! repartition path a crash takes. Duplicated deliveries are absorbed:
//! feature frames by first-delivery-wins slot stashing, control frames by a
//! per-epoch [`ControlDeduper`] enforcing strict sequence monotonicity.
//!
//! Three membership events extend the state machine beyond death:
//!
//! * **elastic rejoin** — a scripted [`JoinInjection`] admits a device
//!   mid-stream via a real `Join` control frame (decode-validated, so a
//!   non-positive capacity offer is rejected like any other protocol error).
//!   The stream finishes the rounds before the join barrier, checkpoints the
//!   fused frontier, replans over the enlarged membership and opens a new
//!   epoch. A device id that previously died or left is admitted as a **new
//!   identity-epoch** ([`HealthTracker::observe_rejoin`]); an id that is
//!   still live is a [`SchedError::RejoinConflict`].
//! * **graceful degradation** — when a replan cannot host every sub-model,
//!   the scheduler (if [`StreamConfig::max_missing_sub_models`] allows) drops
//!   the largest sub-models via [`SplitPlan::replan_degraded`] and keeps
//!   fusing: missing features are zero-filled at their observed width so the
//!   fusion layout stays stable, and every round fused that way is listed in
//!   [`StreamReport::degraded_rounds`].
//! * **recovery to full fidelity** — a later join that makes the full set
//!   feasible again clears the missing list; degradation is a mode, not a
//!   ratchet.
//!
//! # Timing
//!
//! Thread interleaving on the host machine is nondeterministic, so all
//! reported timing comes from the virtual [`SimClock`], advanced with the
//! analytic [`edvit_edge::StreamTiming`] model: barrier mode pays
//! device-stage + fusion-stage per round, pipelined mode pays the wider of
//! the two stages per round once the pipeline is full, and every retry pays
//! its round-denominated backoff.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use edvit_edge::wire::FeatureBatchMessage;
use edvit_edge::{
    ControlDeduper, ControlKind, ControlMessage, FusionFn, LatencyModel, NetOptions, NetworkConfig,
    PayloadCodec, RoundTimings, SubModelFn, TransportKind, WireFrame,
};
use edvit_metrics::{MetricsSink, ReplanCause, RunEvent, StreamCounters};
use edvit_net::{transport_for, FrameRx, FrameTx, LaneEvent, Transport};
use edvit_partition::{DeviceSpec, PartitionError, SplitPlan};
use edvit_tensor::Tensor;

use crate::faults::{apply_fault, FaultScript, FaultedDelivery, FrameFault, FrameSlot};
use crate::rounds::RoundLayout;
use crate::{HealthTracker, JoinInjection, Result, SchedError, SimClock};

/// How rounds are scheduled relative to the fusion stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// One buffered round at a time: a device may compute round *k+1* while
    /// the fusion worker drains round *k*, but blocks beyond that. The
    /// *timing model* is strictly serial — throughput is priced as the sum
    /// of the slowest device stage and the fusion stage.
    Barrier,
    /// Devices compute ahead of the fusion worker, buffering up to
    /// `pipeline_depth` undrained rounds before `send` blocks. Throughput is
    /// priced as the wider of the two stages.
    Pipelined,
}

/// Deterministic failure injection: the device goes silent (no leave frame,
/// no further heartbeats) instead of processing the given round. A scripted
/// death fires once per device id — a device that later rejoins (see
/// [`JoinInjection`]) starts its new identity-epoch unburdened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureInjection {
    /// Device to kill.
    pub device_id: usize,
    /// First (global) round id the device will not process. `0` means the
    /// device is dead on arrival; a value past the last round means it never
    /// dies.
    pub at_round: u64,
}

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Samples per round (≥ 1).
    pub round_size: usize,
    /// How many undrained rounds a device may buffer ahead of the fusion
    /// worker before `send` blocks (≥ 1; forced to 1 in
    /// [`ScheduleMode::Barrier`]). Counting the round being computed, a
    /// device can be up to `pipeline_depth + 1` rounds past the fused
    /// frontier.
    pub pipeline_depth: usize,
    /// Barrier or pipelined scheduling.
    pub mode: ScheduleMode,
    /// Heartbeat deadline, in rounds: a device whose next heartbeat is this
    /// many round intervals overdue is declared dead. Governs the virtual
    /// detection latency charged to `recovery_seconds`.
    pub grace_rounds: u64,
    /// Network model used for the virtual timing.
    pub network: NetworkConfig,
    /// Analytic fusion cost per sample in MAC-FLOPs; 0 uses the latency
    /// model's default formula.
    pub fusion_flops: u64,
    /// Virtual seconds charged for one run of the re-planner.
    pub replan_seconds: f64,
    /// The planner's `L` (samples per energy-budget window) handed to the
    /// greedy assignment when re-planning onto survivors. This is *not* the
    /// wire round size: `L` prices energy, `round_size` prices batching.
    pub energy_samples_per_round: u64,
    /// Wire codec every device encodes its batch frames with (control frames
    /// always ship codec 0). Also prices the virtual timing via
    /// [`LatencyModel::with_options`].
    pub codec: PayloadCodec,
    /// Which backend carries the device→fusion lanes. The default
    /// [`TransportKind::Sim`] is the deterministic bounded-channel backend
    /// every test and chaos drill runs on; [`TransportKind::Tcp`] carries the
    /// identical frames over loopback sockets, with the heartbeat deadline
    /// mapped from rounds to wall time. Frame-content observables (outputs,
    /// byte counts, dedupe decisions) are transport-independent.
    pub transport: TransportKind,
    /// Scripted device deaths.
    pub failures: Vec<FailureInjection>,
    /// Scripted mid-stream joins, applied in `at_round` order. A join whose
    /// round lies past the end of the stream never fires.
    pub joins: Vec<JoinInjection>,
    /// Deterministic frame-fault script the collector applies at the
    /// wire/channel boundary. Empty by default.
    pub faults: FaultScript,
    /// How many times a corrupt, truncated or dropped data frame is
    /// re-requested before the link is declared dead. Each retry is priced
    /// at the analytic round-denominated backoff.
    pub max_retries: u32,
    /// How many sub-models the scheduler may leave unhosted (zero-filling
    /// their features at fusion) when a replan cannot cover the full set. The
    /// default of 0 disables degraded mode: an infeasible replan stays a
    /// hard [`SchedError::Partition`] error, exactly as before.
    pub max_missing_sub_models: usize,
    /// Observability sink the run records into. Disabled (a no-op) by
    /// default; [`edvit_metrics::MetricsSink::recording`] turns on the event
    /// journal and metrics registry. All events carry virtual timestamps.
    pub sink: MetricsSink,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            round_size: 4,
            pipeline_depth: 2,
            mode: ScheduleMode::Pipelined,
            grace_rounds: 2,
            network: NetworkConfig::paper_default(),
            fusion_flops: 0,
            replan_seconds: 0.05,
            energy_samples_per_round: 1,
            codec: PayloadCodec::F32,
            transport: TransportKind::Sim,
            failures: Vec::new(),
            joins: Vec::new(),
            faults: FaultScript::new(),
            max_retries: 2,
            max_missing_sub_models: 0,
            sink: MetricsSink::disabled(),
        }
    }
}

impl StreamConfig {
    /// Switches to barrier scheduling (the pre-streaming behaviour).
    pub fn barrier(mut self) -> Self {
        self.mode = ScheduleMode::Barrier;
        self
    }

    /// Applies the shared [`NetOptions`]: wire codec, transport backend and
    /// per-frame retry budget in one struct, the same surface
    /// `LatencyModel::with_options` and `ClusterRuntime::with_options`
    /// consume.
    pub fn with_options(mut self, options: &NetOptions) -> Self {
        self.codec = options.codec;
        self.transport = options.transport;
        self.max_retries = options.max_retries;
        self
    }

    /// The network-facing knobs of this configuration as a [`NetOptions`].
    pub fn net_options(&self) -> NetOptions {
        NetOptions::default()
            .with_codec(self.codec)
            .with_transport(self.transport)
            .with_max_retries(self.max_retries)
    }

    /// Deprecated per-surface builder; use [`StreamConfig::with_options`].
    #[deprecated(since = "0.8.0", note = "use with_options(&NetOptions) instead")]
    // edvit:allow(builder-drift)
    pub fn with_codec(mut self, codec: PayloadCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Adds a scripted device death before the given global round.
    pub fn with_failure(mut self, device_id: usize, at_round: u64) -> Self {
        self.failures.push(FailureInjection {
            device_id,
            at_round,
        });
        self
    }

    /// Adds a scripted mid-stream join: `device` offers its capacity at
    /// global round `at_round` and the scheduler opens a new membership
    /// epoch there.
    pub fn with_join(mut self, device: DeviceSpec, at_round: u64) -> Self {
        self.joins.push(JoinInjection { device, at_round });
        self
    }

    /// Installs a deterministic frame-fault script.
    pub fn with_faults(mut self, faults: FaultScript) -> Self {
        self.faults = faults;
        self
    }

    /// Deprecated per-surface builder; use [`StreamConfig::with_options`].
    #[deprecated(since = "0.8.0", note = "use with_options(&NetOptions) instead")]
    // edvit:allow(builder-drift)
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Allows degraded-mode fusion with up to this many unhosted sub-models.
    pub fn with_max_missing_sub_models(mut self, max_missing_sub_models: usize) -> Self {
        self.max_missing_sub_models = max_missing_sub_models;
        self
    }

    /// Installs an observability sink; pass a recording sink to capture the
    /// run's event journal and metrics.
    pub fn with_sink(mut self, sink: MetricsSink) -> Self {
        self.sink = sink;
        self
    }
}

/// Everything a streaming run reports: fused outputs plus membership, health
/// and virtual-timing accounting.
#[derive(Debug)]
pub struct StreamReport {
    /// Fused output per input sample, in input order. Every sample appears
    /// exactly once — the scheduler errors out rather than dropping or
    /// double-fusing a sample across a repartition.
    pub outputs: Vec<Tensor>,
    /// Scheduling mode of the run.
    pub mode: ScheduleMode,
    /// Samples per round.
    pub round_size: usize,
    /// Wire codec the devices encoded their batch frames with.
    pub codec: PayloadCodec,
    /// Total rounds fused.
    pub rounds: usize,
    /// Membership epochs executed (1 + number of repartitions).
    pub epochs: usize,
    /// Most rounds simultaneously in flight (produced by some device but not
    /// yet fused), as observed by the fusion worker. This is the one
    /// scheduling-dependent statistic in the report — bounded by
    /// `pipeline_depth + 1`, but where it lands inside that bound depends on
    /// OS thread interleaving; every timing and replay number is
    /// deterministic.
    pub max_rounds_in_flight: usize,
    /// Heartbeat control frames observed.
    pub heartbeats_seen: u64,
    /// All control frames observed (join + leave + heartbeat).
    pub control_frames: usize,
    /// Feature-batch data frames observed.
    pub data_frames: usize,
    /// Encoded bytes shipped over the channel (data + control frames),
    /// including corrupted and duplicated deliveries — they travelled too.
    pub bytes_on_wire: u64,
    /// Encoded bytes each device shipped, keyed by device id. Devices that
    /// joined in any epoch appear, including ones that later died.
    pub per_device_wire_bytes: BTreeMap<usize, u64>,
    /// Rounds each device delivered (heartbeats received from it), keyed by
    /// device id and accumulated across epochs.
    pub per_device_rounds: BTreeMap<usize, u64>,
    /// Devices declared dead, in detection order (crashes and links whose
    /// retry budget ran out).
    pub devices_lost: Vec<usize>,
    /// Devices admitted mid-stream via a `Join` frame, in admission order.
    pub devices_joined: Vec<usize>,
    /// How many of those admissions were rejoins — a previously dead or
    /// departed id coming back as a new identity-epoch.
    pub rejoins: usize,
    /// Times the planner re-assigned sub-models (deaths and joins).
    pub repartitions: usize,
    /// Samples that were in flight at a death and had to be recomputed.
    pub samples_replayed: usize,
    /// Data-frame re-requests issued after corrupt, truncated or dropped
    /// deliveries. Bounded by `max_retries` per frame.
    pub retries: u64,
    /// Virtual seconds spent in retry backoff, already included in
    /// `simulated_total_seconds`.
    pub retry_seconds: f64,
    /// Failed deliveries observed: frames that arrived corrupted or
    /// truncated, or data frames the link ate.
    pub corrupt_frames: u64,
    /// Data frames whose payload duplicated already-stashed samples
    /// (first delivery wins; the copy is counted and discarded).
    pub duplicate_frames: u64,
    /// Heartbeat beacons the link ate. A lost beacon is not retried — the
    /// next fresh beacon or the device's leave closes the round instead.
    pub dropped_heartbeats: u64,
    /// Control frames rejected by the sequence deduper as replays or stale
    /// reorderings.
    pub stale_control_frames: u64,
    /// Heartbeats the health tracker ignored as stale (replayed, reordered,
    /// wrapped, or sent by an already-terminal device).
    pub stale_heartbeats: u64,
    /// Rounds fused in degraded mode (some sub-model unhosted, its feature
    /// zero-filled), in fusion order.
    pub degraded_rounds: Vec<u64>,
    /// Sub-models left unhosted by the *final* membership (empty when the
    /// stream ended at full fidelity).
    pub missing_sub_models: Vec<usize>,
    /// Virtual seconds from a device's death to its sub-models producing
    /// fused output again: detection (the missed heartbeat plus the
    /// `grace_rounds` deadline) + re-planning + replaying the in-flight
    /// rounds. Zero when no device died.
    pub recovery_seconds: f64,
    /// Steady-state throughput of the final membership, from the analytic
    /// stream timing at the *nominal* round size — what the pipeline would
    /// sustain if every round were full.
    pub steady_state_samples_per_second: f64,
    /// Realized throughput: samples actually fused divided by the virtual
    /// end-to-end time. Unlike the steady-state figure this divides by what
    /// the rounds really carried, so an under-filled final round (or a
    /// stream of partial continuous batches) is priced at its true sample
    /// count instead of the nominal `round_size`.
    pub effective_samples_per_second: f64,
    /// Virtual end-to-end seconds on the [`SimClock`].
    pub simulated_total_seconds: f64,
    /// The plan in force when the stream finished (re-assigned if devices
    /// died or joined).
    pub final_plan: SplitPlan,
}

impl StreamReport {
    /// The report's accounting fields as [`StreamCounters`] — the shape the
    /// journal replay reconstructs, for bitwise comparison against
    /// [`edvit_metrics::RunJournal::replay_stream`].
    pub fn counters(&self) -> StreamCounters {
        StreamCounters {
            rounds: self.rounds,
            round_size: self.round_size,
            epochs: self.epochs,
            max_rounds_in_flight: self.max_rounds_in_flight,
            heartbeats_seen: self.heartbeats_seen,
            control_frames: self.control_frames,
            data_frames: self.data_frames,
            bytes_on_wire: self.bytes_on_wire,
            per_device_wire_bytes: self.per_device_wire_bytes.clone(),
            per_device_rounds: self.per_device_rounds.clone(),
            devices_lost: self.devices_lost.clone(),
            devices_joined: self.devices_joined.clone(),
            rejoins: self.rejoins,
            repartitions: self.repartitions,
            samples_replayed: self.samples_replayed,
            retries: self.retries,
            retry_seconds: self.retry_seconds,
            corrupt_frames: self.corrupt_frames,
            duplicate_frames: self.duplicate_frames,
            dropped_heartbeats: self.dropped_heartbeats,
            stale_control_frames: self.stale_control_frames,
            stale_heartbeats: self.stale_heartbeats,
            degraded_rounds: self.degraded_rounds.clone(),
            missing_sub_models: self.missing_sub_models.clone(),
            recovery_seconds: self.recovery_seconds,
            steady_state_samples_per_second: self.steady_state_samples_per_second,
            effective_samples_per_second: self.effective_samples_per_second,
            simulated_total_seconds: self.simulated_total_seconds,
        }
    }

    /// Argmax prediction per sample, for classification-style fusion outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if any output is empty.
    pub fn predictions(&self) -> Result<Vec<usize>> {
        self.outputs
            .iter()
            .map(|o| {
                o.argmax().map_err(|e| SchedError::Runtime {
                    message: format!("empty fusion output: {e}"),
                })
            })
            .collect()
    }
}

/// What one epoch hands back to the scheduler loop.
struct EpochOutcome {
    newly_dead: Vec<usize>,
    rounds_fused: usize,
    /// Unfused rounds that had received at least one frame (in flight at the
    /// death) — these are the replayed rounds.
    partial_rounds: Vec<u64>,
    /// The epoch stopped at a scripted join barrier: the fused frontier is
    /// the checkpoint, nothing is replayed, membership changes next.
    join_due: bool,
    heartbeats: u64,
    control_frames: usize,
    data_frames: usize,
    bytes_on_wire: u64,
    per_device_wire_bytes: BTreeMap<usize, u64>,
    per_device_rounds: BTreeMap<usize, u64>,
    max_in_flight: usize,
    /// Attempt number of every re-request issued, for backoff pricing.
    retry_attempts: Vec<u32>,
    corrupt_frames: u64,
    duplicate_frames: u64,
    dropped_heartbeats: u64,
    stale_control_frames: u64,
    degraded_rounds: Vec<u64>,
    /// Feature width observed per sub-model — the widths degraded rounds
    /// zero-fill with.
    observed_dims: BTreeMap<u32, usize>,
}

impl EpochOutcome {
    fn new() -> Self {
        EpochOutcome {
            newly_dead: Vec::new(),
            rounds_fused: 0,
            partial_rounds: Vec::new(),
            join_due: false,
            heartbeats: 0,
            control_frames: 0,
            data_frames: 0,
            bytes_on_wire: 0,
            per_device_wire_bytes: BTreeMap::new(),
            per_device_rounds: BTreeMap::new(),
            max_in_flight: 0,
            retry_attempts: Vec::new(),
            corrupt_frames: 0,
            duplicate_frames: 0,
            dropped_heartbeats: 0,
            stale_control_frames: 0,
            degraded_rounds: Vec::new(),
            observed_dims: BTreeMap::new(),
        }
    }
}

/// Read-only knobs one epoch runs under.
struct EpochParams<'a> {
    /// Which sample span each global round covers.
    layout: &'a RoundLayout,
    pipeline_depth: usize,
    codec: PayloadCodec,
    failures: &'a BTreeMap<usize, u64>,
    /// Sub-models the current (degraded) plan leaves unhosted.
    missing: &'a [usize],
    faults: &'a FaultScript,
    max_retries: u32,
    /// First scripted-join round: the collector stops fusing there.
    join_barrier: Option<u64>,
    /// `(sub-model, feature width)` for every missing sub-model, zero-filled
    /// at fusion so the concat layout stays stable.
    missing_dims: Vec<(u32, usize)>,
    /// Observability sink the epoch's events are recorded into.
    sink: &'a MetricsSink,
    /// Virtual time the epoch started at — the timestamp its events carry
    /// (the clock only advances between epochs).
    at: f64,
}

/// The streaming fault-tolerant scheduler.
#[derive(Debug, Clone)]
pub struct StreamScheduler {
    plan: SplitPlan,
    devices: Vec<DeviceSpec>,
    config: StreamConfig,
}

impl StreamScheduler {
    /// Creates a scheduler for `plan` deployed across `devices`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] for empty device lists,
    /// zero-sized rounds or zero pipeline depth.
    pub fn new(plan: SplitPlan, devices: Vec<DeviceSpec>, config: StreamConfig) -> Result<Self> {
        if devices.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "no devices".to_string(),
            });
        }
        if config.round_size == 0 {
            return Err(SchedError::InvalidConfig {
                message: "round size must be at least 1".to_string(),
            });
        }
        if config.pipeline_depth == 0 {
            return Err(SchedError::InvalidConfig {
                message: "pipeline depth must be at least 1".to_string(),
            });
        }
        Ok(StreamScheduler {
            plan,
            devices,
            config,
        })
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Runs the stream: every input sample is fused exactly once, across as
    /// many membership epochs as device deaths and joins require.
    ///
    /// `executors[i]` computes sub-model `i`'s feature vector for one sample;
    /// there must be exactly one executor per sub-model in the plan.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] for empty inputs or a mismatched
    /// executor count, [`SchedError::Runtime`] for executor/fusion failures
    /// or violated exactly-once invariants, [`SchedError::Partition`] when
    /// survivors cannot host the sub-models (and degraded mode is off),
    /// [`SchedError::DegradationLimit`] when a degraded replan would exceed
    /// the missing-sub-model tolerance, [`SchedError::RejoinConflict`] when a
    /// scripted join collides with a live member,
    /// [`SchedError::Edge`] when a scripted join frame fails wire validation,
    /// and [`SchedError::AllDevicesLost`] when every device dies.
    pub fn run(
        &self,
        inputs: &[Tensor],
        executors: Vec<SubModelFn>,
        fusion: FusionFn,
    ) -> Result<StreamReport> {
        if inputs.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "no input samples".to_string(),
            });
        }
        let layout = RoundLayout::uniform(inputs.len(), self.config.round_size)?;
        self.run_rounds(inputs, &layout, executors, fusion)
    }

    /// Runs the stream over an explicit [`RoundLayout`] — the round-source
    /// seam continuous batching plugs into. [`StreamScheduler::run`] is this
    /// with the uniform layout; a serving front end hands in whatever
    /// variable-size rounds its queues produced. Every virtual-clock charge
    /// prices each round at its *own* sample count.
    ///
    /// # Errors
    ///
    /// As [`StreamScheduler::run`], plus [`SchedError::InvalidConfig`] when
    /// the layout does not cover `inputs` exactly.
    pub fn run_rounds(
        &self,
        inputs: &[Tensor],
        layout: &RoundLayout,
        mut executors: Vec<SubModelFn>,
        mut fusion: FusionFn,
    ) -> Result<StreamReport> {
        if inputs.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "no input samples".to_string(),
            });
        }
        if layout.total_samples() != inputs.len() {
            return Err(SchedError::InvalidConfig {
                message: format!(
                    "round layout covers {} samples but {} were provided",
                    layout.total_samples(),
                    inputs.len()
                ),
            });
        }
        if executors.len() != self.plan.sub_models.len() {
            return Err(SchedError::InvalidConfig {
                message: format!(
                    "{} executors for {} sub-models",
                    executors.len(),
                    self.plan.sub_models.len()
                ),
            });
        }
        let cfg = &self.config;
        let round_size = cfg.round_size;
        let total_rounds = layout.rounds();
        let mut failures: BTreeMap<usize, u64> = cfg
            .failures
            .iter()
            .map(|f| (f.device_id, f.at_round))
            .collect();
        let mut join_queue: Vec<JoinInjection> = cfg.joins.clone();
        join_queue.sort_by_key(|j| j.at_round);

        // One transport for the whole run: epochs reuse the backend (and, on
        // TCP, its listener) while opening fresh per-device lanes.
        let mut transport = transport_for(cfg.transport).map_err(|e| SchedError::Transport {
            message: e.to_string(),
        })?;
        let mut current_plan = self.plan.clone();
        let mut current_devices = self.devices.clone();
        let mut pending: Vec<u64> = (0..total_rounds as u64).collect();
        let mut fused: Vec<Option<Tensor>> = vec![None; inputs.len()];
        let mut clock = SimClock::new();
        let mut tracker = HealthTracker::new();
        // Sub-models the current plan leaves unhosted, and the feature widths
        // observed so far (what degraded rounds zero-fill with).
        let mut missing: Vec<usize> = Vec::new();
        let mut known_dims: BTreeMap<u32, usize> = BTreeMap::new();

        let mut report = StreamReport {
            outputs: Vec::new(),
            mode: cfg.mode,
            round_size,
            codec: cfg.codec,
            rounds: total_rounds,
            epochs: 0,
            max_rounds_in_flight: 0,
            heartbeats_seen: 0,
            control_frames: 0,
            data_frames: 0,
            bytes_on_wire: 0,
            per_device_wire_bytes: BTreeMap::new(),
            per_device_rounds: BTreeMap::new(),
            devices_lost: Vec::new(),
            devices_joined: Vec::new(),
            rejoins: 0,
            repartitions: 0,
            samples_replayed: 0,
            retries: 0,
            retry_seconds: 0.0,
            corrupt_frames: 0,
            duplicate_frames: 0,
            dropped_heartbeats: 0,
            stale_control_frames: 0,
            stale_heartbeats: 0,
            degraded_rounds: Vec::new(),
            missing_sub_models: Vec::new(),
            recovery_seconds: 0.0,
            steady_state_samples_per_second: 0.0,
            effective_samples_per_second: 0.0,
            simulated_total_seconds: 0.0,
            final_plan: current_plan.clone(),
        };

        let sink = &cfg.sink;
        sink.record(
            0.0,
            RunEvent::StreamStarted {
                rounds: total_rounds as u64,
                round_size: round_size as u64,
                samples: inputs.len() as u64,
                devices: current_devices.len() as u64,
            },
        );

        loop {
            // ---- Scripted joins due before the next unfused round. ---------
            let next_round = pending.first().copied().unwrap_or(0);
            let mut admitted = false;
            while join_queue.first().is_some_and(|j| j.at_round <= next_round) {
                let injection = join_queue.remove(0);
                admit_join(
                    &injection,
                    &mut current_devices,
                    &mut tracker,
                    &mut report,
                    sink,
                    clock.now(),
                )?;
                admitted = true;
            }
            if admitted {
                self.replan(&mut current_plan, &current_devices, &mut missing, "join")?;
                report.repartitions += 1;
                sink.record(
                    clock.now(),
                    RunEvent::Replan {
                        cause: ReplanCause::Join,
                        missing: missing.iter().map(|&m| m as u64).collect(),
                    },
                );
                clock.advance(cfg.replan_seconds);
            }

            report.epochs += 1;
            tracker.begin_epoch();
            let epoch_at = clock.now();
            sink.record(
                epoch_at,
                RunEvent::EpochStarted {
                    epoch: report.epochs as u64,
                },
            );
            let mut round_timings = self.round_timings(&current_plan, &current_devices);
            // Nominal-size timing: the heartbeat deadline, retry backoff and
            // failure-detection windows stay round-denominated in the
            // *configured* round size, so partial rounds don't jitter the
            // liveness machinery.
            let timing = round_timings.timing_for(cfg.round_size)?;
            // Hand the backend this epoch's liveness deadline in its native
            // round denomination; the TCP backend maps it to a read timeout,
            // the sim backend charges it analytically.
            transport.set_round_deadline(cfg.grace_rounds, timing.round_interval_seconds);
            let missing_dims: Vec<(u32, usize)> = missing
                .iter()
                .map(|&i| {
                    let sub = i as u32;
                    let dim = known_dims
                        .get(&sub)
                        .copied()
                        .unwrap_or_else(|| current_plan.sub_models[i].pruned.feature_dim());
                    (sub, dim)
                })
                .collect();
            let params = EpochParams {
                layout,
                pipeline_depth: cfg.effective_depth(),
                codec: cfg.codec,
                failures: &failures,
                missing: &missing,
                faults: &cfg.faults,
                max_retries: cfg.max_retries,
                join_barrier: join_queue.first().map(|j| j.at_round),
                missing_dims,
                sink,
                at: epoch_at,
            };
            let outcome = run_epoch(
                &current_plan,
                &current_devices,
                &pending,
                &params,
                inputs,
                &mut executors,
                &mut fusion,
                &mut fused,
                &mut tracker,
                transport.as_mut(),
            )?;

            report.heartbeats_seen += outcome.heartbeats;
            report.control_frames += outcome.control_frames;
            report.data_frames += outcome.data_frames;
            report.bytes_on_wire += outcome.bytes_on_wire;
            report.corrupt_frames += outcome.corrupt_frames;
            report.duplicate_frames += outcome.duplicate_frames;
            report.dropped_heartbeats += outcome.dropped_heartbeats;
            report.stale_control_frames += outcome.stale_control_frames;
            report
                .degraded_rounds
                .extend(outcome.degraded_rounds.iter().copied());
            for (&sub, &dim) in &outcome.observed_dims {
                known_dims.insert(sub, dim);
            }
            for (&device, &bytes) in &outcome.per_device_wire_bytes {
                *report.per_device_wire_bytes.entry(device).or_insert(0) += bytes;
            }
            for (&device, &rounds) in &outcome.per_device_rounds {
                *report.per_device_rounds.entry(device).or_insert(0) += rounds;
            }
            report.max_rounds_in_flight = report.max_rounds_in_flight.max(outcome.max_in_flight);
            let retry_seconds: f64 = outcome
                .retry_attempts
                .iter()
                .map(|&attempt| timing.retry_backoff_seconds(attempt))
                .sum();
            report.retries += outcome.retry_attempts.len() as u64;
            report.retry_seconds += retry_seconds;
            // One pre-summed event per epoch keeps the replayed accumulation
            // bitwise-identical to the live `+=` above; zero-retry epochs add
            // an exact +0.0 and need no event at all.
            if !outcome.retry_attempts.is_empty() {
                sink.record(
                    epoch_at,
                    RunEvent::RetryCost {
                        seconds: retry_seconds,
                    },
                );
            }
            // Price the epoch round by round at each round's actual sample
            // count: a partial round (under-filled tail or continuous batch)
            // costs what it carried, not the nominal `round_size`.
            let fused_sizes: Vec<usize> = pending[..outcome.rounds_fused]
                .iter()
                .map(|&round| layout.len_of(round))
                .collect();
            clock.advance(round_timings.seconds_for_rounds(&fused_sizes)? + retry_seconds);
            sink.record(
                clock.now(),
                RunEvent::EpochEnded {
                    epoch: report.epochs as u64,
                    max_in_flight: outcome.max_in_flight as u64,
                },
            );

            pending.retain(|&round| round_unfused(&fused, round, layout));

            if outcome.newly_dead.is_empty() {
                if outcome.join_due {
                    continue; // checkpointed handoff; the join opens the next epoch
                }
                if !pending.is_empty() {
                    return Err(SchedError::Runtime {
                        message: format!(
                            "epoch ended with {} unfused round(s) but no device death",
                            pending.len()
                        ),
                    });
                }
                report.steady_state_samples_per_second = timing.steady_state_samples_per_second();
                break;
            }

            // ---- A death: repartition onto the survivors and replay. -------
            report
                .devices_lost
                .extend(outcome.newly_dead.iter().copied());
            for device in &outcome.newly_dead {
                failures.remove(device); // a scripted death fires once
            }
            current_devices.retain(|d| !outcome.newly_dead.contains(&d.id));
            if current_devices.is_empty() {
                return Err(SchedError::AllDevicesLost {
                    lost: report.devices_lost.clone(),
                });
            }
            self.replan(&mut current_plan, &current_devices, &mut missing, "death")?;
            report.repartitions += 1;
            sink.record(
                clock.now(),
                RunEvent::Replan {
                    cause: ReplanCause::Death,
                    missing: missing.iter().map(|&m| m as u64).collect(),
                },
            );
            let replayed: usize = outcome
                .partial_rounds
                .iter()
                .map(|&r| layout.len_of(r))
                .sum();
            report.samples_replayed += replayed;
            sink.record(
                clock.now(),
                RunEvent::RoundsReplayed {
                    rounds: outcome.partial_rounds.len() as u64,
                    samples: replayed as u64,
                },
            );

            // Detection costs one round interval for the missed heartbeat to
            // fall due plus `grace_rounds` intervals of deadline; then the
            // planner runs; then the in-flight rounds replay on the new
            // membership (their compute is charged to the next epoch's clock
            // advance, but they are part of the recovery window). Each
            // replayed round is priced at its own sample count on the new
            // membership's timing.
            let detection_seconds = (cfg.grace_rounds + 1) as f64 * timing.round_interval_seconds;
            let mut new_timings = self.round_timings(&current_plan, &current_devices);
            let mut replay_seconds = 0.0f64;
            for &round in &outcome.partial_rounds {
                replay_seconds += new_timings
                    .timing_for(layout.len_of(round))?
                    .round_interval_seconds;
            }
            report.recovery_seconds += detection_seconds + cfg.replan_seconds + replay_seconds;
            sink.record(
                clock.now(),
                RunEvent::Recovery {
                    seconds: detection_seconds + cfg.replan_seconds + replay_seconds,
                },
            );
            clock.advance(detection_seconds + cfg.replan_seconds);
        }

        report.simulated_total_seconds = clock.now();
        sink.record(
            clock.now(),
            RunEvent::StreamEnded {
                steady_state_samples_per_second: report.steady_state_samples_per_second,
            },
        );
        report.effective_samples_per_second = if clock.now() > 0.0 {
            inputs.len() as f64 / clock.now()
        } else {
            f64::INFINITY
        };
        report.stale_heartbeats = tracker.stale_heartbeats();
        report.missing_sub_models = missing;
        report.final_plan = current_plan;
        report.outputs = fused
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| SchedError::Runtime {
                    message: format!("sample {i} was never fused"),
                })
            })
            .collect::<Result<Vec<Tensor>>>()?;
        Ok(report)
    }

    /// Replans onto the current membership: full coverage when feasible,
    /// degraded (if allowed) when not. `missing` is updated to the new set of
    /// unhosted sub-models — a successful full replan clears it.
    fn replan(
        &self,
        plan: &mut SplitPlan,
        members: &[DeviceSpec],
        missing: &mut Vec<usize>,
        cause: &str,
    ) -> Result<()> {
        let samples = self.config.energy_samples_per_round;
        let full = if cause == "join" {
            plan.replan_for_joiners(members, samples)
        } else {
            plan.replan_for_survivors(members, samples)
        };
        match full {
            Ok(new_plan) => {
                *plan = new_plan;
                missing.clear();
                Ok(())
            }
            Err(PartitionError::Infeasible { .. }) if self.config.max_missing_sub_models > 0 => {
                let (new_plan, dropped) = plan.replan_degraded(members, samples)?;
                if dropped.len() > self.config.max_missing_sub_models {
                    return Err(SchedError::DegradationLimit {
                        missing: dropped,
                        limit: self.config.max_missing_sub_models,
                    });
                }
                *plan = new_plan;
                *missing = dropped;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The per-round-size timing table for a membership: the analytic model
    /// under this configuration's codec and fusion override, priced over the
    /// hosted sub-models only (a degraded plan carries unassigned sub-models
    /// the latency model would reject).
    fn round_timings(&self, plan: &SplitPlan, devices: &[DeviceSpec]) -> RoundTimings {
        let mut model =
            LatencyModel::new(self.config.network).with_options(&self.config.net_options());
        if self.config.fusion_flops > 0 {
            model = model.with_fusion_flops(self.config.fusion_flops);
        }
        let priced = if plan
            .sub_models
            .iter()
            .all(|s| plan.assignment.device_for(s.index).is_some())
        {
            plan.clone()
        } else {
            let mut filtered = plan.clone();
            filtered
                .sub_models
                .retain(|s| plan.assignment.device_for(s.index).is_some());
            filtered
        };
        RoundTimings::new(
            model,
            priced,
            devices.to_vec(),
            self.config.mode == ScheduleMode::Pipelined,
        )
    }
}

/// Admits one scripted join through the same wire path a real device would
/// use: the `Join` control frame is encoded, accounted and decode-validated
/// (so e.g. a non-positive capacity offer fails as a protocol error), then
/// fed to the health tracker — as a new identity-epoch when the id was
/// previously terminal.
fn admit_join(
    injection: &JoinInjection,
    current_devices: &mut Vec<DeviceSpec>,
    tracker: &mut HealthTracker,
    report: &mut StreamReport,
    sink: &MetricsSink,
    at: f64,
) -> Result<()> {
    let device_id = injection.device.id;
    if current_devices.iter().any(|d| d.id == device_id) {
        return Err(SchedError::RejoinConflict { device: device_id });
    }
    let frame = ControlMessage::join(device_id, injection.device.flops_per_second).encode();
    report.control_frames += 1;
    report.bytes_on_wire += frame.len() as u64;
    *report.per_device_wire_bytes.entry(device_id).or_insert(0) += frame.len() as u64;
    sink.record(
        at,
        RunEvent::Delivery {
            device: device_id as u64,
            bytes: frame.len() as u64,
        },
    );
    sink.record(
        at,
        RunEvent::ControlFrame {
            device: device_id as u64,
        },
    );
    let decoded = WireFrame::decode(frame).map_err(SchedError::Edge)?;
    let WireFrame::Control(control) = decoded else {
        return Err(SchedError::Runtime {
            message: format!("join frame for device {device_id} decoded as a non-control frame"),
        });
    };
    let was_terminal = matches!(
        tracker.health_of(device_id),
        Some(health) if !health.is_live()
    );
    if was_terminal {
        tracker.observe_rejoin(device_id, control.capacity_flops_per_second);
        report.rejoins += 1;
    } else {
        tracker.observe_join(device_id, control.capacity_flops_per_second);
    }
    report.devices_joined.push(device_id);
    sink.record(
        at,
        RunEvent::DeviceJoined {
            device: device_id as u64,
            rejoin: was_terminal,
        },
    );
    current_devices.push(injection.device.clone());
    Ok(())
}

impl StreamConfig {
    /// Rounds in flight the mode actually allows: barrier forces 1.
    fn effective_depth(&self) -> usize {
        match self.mode {
            ScheduleMode::Barrier => 1,
            ScheduleMode::Pipelined => self.pipeline_depth,
        }
    }
}

fn round_unfused(fused: &[Option<Tensor>], round: u64, layout: &RoundLayout) -> bool {
    layout.span(round).any(|sample| fused[sample].is_none())
}

/// One membership epoch: spawns a worker thread per active device, consumes
/// the per-device transport lanes round by round on the calling thread, fuses
/// each completed round, and reports any death (a device whose lane closed
/// before it delivered all its rounds, or whose link exhausted its retry
/// budget).
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    plan: &SplitPlan,
    devices: &[DeviceSpec],
    epoch_rounds: &[u64],
    params: &EpochParams<'_>,
    inputs: &[Tensor],
    executors: &mut [SubModelFn],
    fusion: &mut FusionFn,
    fused: &mut [Option<Tensor>],
    tracker: &mut HealthTracker,
    transport: &mut dyn Transport,
) -> Result<EpochOutcome> {
    // Group the per-sub-model executors by hosting device. `iter_mut` hands
    // out disjoint `&mut` borrows, so each worker thread exclusively owns the
    // executors of its device for the duration of the epoch scope. Sub-models
    // the degraded plan left unhosted are skipped — their executors idle.
    let mut by_device: BTreeMap<usize, Vec<(usize, &mut SubModelFn)>> = BTreeMap::new();
    for (sub_index, executor) in executors.iter_mut().enumerate() {
        if params.missing.contains(&sub_index) {
            continue;
        }
        let device_id =
            plan.assignment
                .device_for(sub_index)
                .ok_or_else(|| SchedError::InvalidConfig {
                    message: format!("sub-model {sub_index} has no assigned device"),
                })?;
        if !devices.iter().any(|d| d.id == device_id) {
            return Err(SchedError::InvalidConfig {
                message: format!("sub-model {sub_index} assigned to unknown device {device_id}"),
            });
        }
        by_device
            .entry(device_id)
            .or_default()
            .push((sub_index, executor));
    }

    // Data frames each device ships per round (= hosted sub-models) — the
    // arity that lets the collector identify every frame positionally.
    let frames_per_round: BTreeMap<usize, usize> = by_device
        .iter()
        .map(|(&device, execs)| (device, execs.len()))
        .collect();
    let num_sub_models = plan.sub_models.len();
    // Highest round count any device has produced this epoch. Purely
    // observational (it feeds the `max_rounds_in_flight` statistic, which is
    // scheduling-dependent by nature); timing and replay accounting never
    // read it, so they stay deterministic.
    let produced_max = AtomicU64::new(0);
    let produced_ref = &produced_max;

    crossbeam::scope(|scope| -> Result<EpochOutcome> {
        let mut receivers: BTreeMap<usize, Box<dyn FrameRx>> = BTreeMap::new();
        // Drain in ascending device order (BTreeMap) so spawn order — and
        // with it the deterministic replay accounting — is stable.
        while let Some((device_id, execs)) = by_device.pop_first() {
            // Per-device bounded lane: `pipeline_depth` rounds of frames
            // (data frames for each hosted sub-model plus the heartbeat),
            // with two slots of slack for the join and leave announcements.
            // Once the buffer is full the device blocks in `send` — explicit
            // backpressure, and a hard bound on how far devices can skew —
            // whatever backend carries the lane.
            let capacity = (execs.len() + 1) * params.pipeline_depth.max(1) + 2;
            let (tx, rx) =
                transport
                    .open_lane(device_id, capacity)
                    .map_err(|e| SchedError::Transport {
                        message: e.to_string(),
                    })?;
            receivers.insert(device_id, rx);
            let capacity_flops = devices
                .iter()
                .find(|d| d.id == device_id)
                .map_or(0.0, |d| d.flops_per_second);
            let dies_at = params.failures.get(&device_id).copied();
            let codec = params.codec;
            let layout = params.layout;
            scope.spawn(move |_| {
                run_device_worker(
                    device_id,
                    execs,
                    epoch_rounds,
                    layout,
                    codec,
                    inputs,
                    capacity_flops,
                    dies_at,
                    produced_ref,
                    tx.as_ref(),
                );
            });
        }

        collect_epoch(
            receivers,
            epoch_rounds,
            params,
            &frames_per_round,
            num_sub_models,
            fusion,
            fused,
            produced_ref,
            tracker,
        )
    })
    .map_err(|_| SchedError::Runtime {
        message: "a device worker thread panicked".to_string(),
    })?
}

/// One device's epoch loop: per round, compute + ship every hosted
/// sub-model's batch frame, then a heartbeat. A scripted death makes the
/// worker return silently — no leave frame, no further beacons — so the
/// fusion side observes exactly what a crashed device looks like: a lane
/// that goes quiet and then closes.
#[allow(clippy::too_many_arguments)]
fn run_device_worker(
    device_id: usize,
    mut execs: Vec<(usize, &mut SubModelFn)>,
    epoch_rounds: &[u64],
    layout: &RoundLayout,
    codec: PayloadCodec,
    inputs: &[Tensor],
    capacity_flops: f64,
    dies_at: Option<u64>,
    produced_max: &AtomicU64,
    tx: &dyn FrameTx,
) {
    // A closed lane means the collector bailed; stop quietly everywhere.
    if tx
        .send(ControlMessage::join(device_id, capacity_flops).encode())
        .is_err()
    {
        return;
    }
    let mut completed = 0u64;
    for &round in epoch_rounds {
        if dies_at.is_some_and(|at| round >= at) {
            return; // scripted crash: silence, not a leave
        }
        let span = layout.span(round);
        for (sub_index, executor) in &mut execs {
            let mut batch: Option<FeatureBatchMessage> = None;
            for sample in span.clone() {
                let feature = match executor(&inputs[sample]) {
                    Ok(f) => f,
                    Err(message) => {
                        let _ = tx.send_error(format!("device {device_id}: {message}"));
                        return;
                    }
                };
                let slot = batch
                    .get_or_insert_with(|| FeatureBatchMessage::new(*sub_index, feature.numel()));
                if let Err(e) = slot.push_tensor(sample, &feature) {
                    let _ = tx.send_error(format!("device {device_id}: {e}"));
                    return;
                }
            }
            let Some(batch) = batch else { continue };
            if tx.send(batch.encode_with(codec)).is_err() {
                return;
            }
        }
        completed += 1;
        produced_max.fetch_max(completed, Ordering::Relaxed);
        if tx
            .send(ControlMessage::heartbeat(device_id, completed, capacity_flops).encode())
            .is_err()
        {
            return;
        }
    }
    let _ = tx.send(ControlMessage::leave(device_id, completed).encode());
}

/// What one received message turned out to be, after dedupe: a fresh
/// heartbeat, a fresh leave (both close rounds), or anything else.
enum Seen {
    Beacon(u64),
    Leave(u64),
    Other,
}

/// How the collector disposed of one delivery.
enum Processed {
    Seen(Seen),
    /// The frame's retry budget ran out: treat the link as dead.
    Escalate,
}

/// The collector's per-epoch state: fault cursors, dedupe, the partial-round
/// stash and the outcome under construction.
struct Collector<'a> {
    epoch_rounds: &'a [u64],
    layout: &'a RoundLayout,
    num_sub_models: usize,
    faults: &'a FaultScript,
    max_retries: u32,
    frames_per_round: &'a BTreeMap<usize, usize>,
    missing_dims: &'a [(u32, usize)],
    tracker: &'a mut HealthTracker,
    deduper: ControlDeduper,
    /// Frames received so far per device — the positional identity that maps
    /// a delivery to its `(round, slot)` fault key.
    cursor: BTreeMap<usize, u64>,
    /// round -> sample -> (sub-model -> feature), ordered so fusion walks
    /// samples in input order.
    partial: BTreeMap<u64, BTreeMap<usize, BTreeMap<u32, Tensor>>>,
    outcome: EpochOutcome,
    sink: &'a MetricsSink,
    /// Virtual epoch-start time every collector event is stamped with.
    at: f64,
}

impl Collector<'_> {
    /// Maps the next frame from `device` to its fault key: the frame's
    /// position in the device's send order pins it to a round and slot
    /// (k data frames then a heartbeat per round, after the initial join and
    /// before the final leave — those two carry no fault key).
    fn fault_key(&mut self, device: usize) -> Option<(u64, FrameSlot)> {
        let index = self.cursor.entry(device).or_insert(0);
        let my_index = *index;
        *index += 1;
        if my_index == 0 {
            return None; // the join announcement
        }
        let hosted = self.frames_per_round.get(&device).copied().unwrap_or(0) as u64;
        let per_round = hosted + 1;
        let idx = my_index - 1;
        let round_pos = (idx / per_round) as usize;
        let offset = idx % per_round;
        if round_pos >= self.epoch_rounds.len() {
            return None; // the leave announcement
        }
        let slot = if offset == hosted {
            FrameSlot::Heartbeat
        } else {
            FrameSlot::Data(offset as u32)
        };
        Some((self.epoch_rounds[round_pos], slot))
    }

    /// Charges one delivery's bytes to the wire totals and its sender. Every
    /// frame that travelled is charged here — including mutated copies, eaten
    /// data frames and lost beacons — which is what keeps
    /// `bytes_on_wire == Σ per_device_wire_bytes` an invariant instead of a
    /// coincidence.
    fn account(&mut self, device: usize, bytes: u64) {
        self.outcome.bytes_on_wire += bytes;
        *self
            .outcome
            .per_device_wire_bytes
            .entry(device)
            .or_insert(0) += bytes;
        self.sink.record(
            self.at,
            RunEvent::Delivery {
                device: device as u64,
                bytes,
            },
        );
    }

    /// Runs one delivery through the fault script: clean frames ingest
    /// directly; duplicates ingest twice (the copy hits the dedupers); a
    /// lost heartbeat is a lost beacon; corrupt, truncated or lost data
    /// frames burn retry attempts until the script exhausts (clean
    /// re-delivery) or the budget does (escalation).
    fn process(&mut self, pristine: Bytes, device: usize) -> Result<Processed> {
        let key = self.fault_key(device);
        let mut attempt: u32 = 0;
        loop {
            let fault = key
                .and_then(|(round, slot)| self.faults.fault_for(device, round, slot, attempt))
                .copied();
            match fault {
                None => return self.ingest(pristine, device).map(Processed::Seen),
                Some(FrameFault::Duplicate) => {
                    let seen = self.ingest(pristine.clone(), device)?;
                    self.ingest(pristine, device)?;
                    return Ok(Processed::Seen(seen));
                }
                Some(FrameFault::Drop) if matches!(key, Some((_, FrameSlot::Heartbeat))) => {
                    // The link ate a beacon — after it travelled, so its
                    // bytes are still charged to the sender. Beacons are not
                    // re-requested: the next fresh beacon (or the leave)
                    // closes the round.
                    self.account(device, pristine.len() as u64);
                    self.outcome.dropped_heartbeats += 1;
                    self.sink.record(
                        self.at,
                        RunEvent::DroppedHeartbeat {
                            device: device as u64,
                        },
                    );
                    return Ok(Processed::Seen(Seen::Other));
                }
                Some(fault) => {
                    match apply_fault(&fault, &pristine) {
                        FaultedDelivery::Deliver(mutated)
                        | FaultedDelivery::DeliverTwice(mutated) => {
                            match self.ingest(mutated, device) {
                                // The wire layer caught the damage (checksum
                                // or decode failure): a failed delivery.
                                Err(SchedError::Edge(_)) => {
                                    self.outcome.corrupt_frames += 1;
                                    self.sink.record(
                                        self.at,
                                        RunEvent::CorruptFrame {
                                            device: device as u64,
                                        },
                                    );
                                }
                                // A mutation the codec happened to survive
                                // delivers as-is.
                                Ok(seen) => return Ok(Processed::Seen(seen)),
                                Err(e) => return Err(e),
                            }
                        }
                        FaultedDelivery::Dropped => {
                            // An eaten data frame travelled to the drop
                            // point: charge its bytes before re-requesting.
                            self.account(device, pristine.len() as u64);
                            self.outcome.corrupt_frames += 1;
                            self.sink.record(
                                self.at,
                                RunEvent::CorruptFrame {
                                    device: device as u64,
                                },
                            );
                        }
                    }
                    attempt += 1;
                    if attempt > self.max_retries {
                        return Ok(Processed::Escalate);
                    }
                    self.outcome.retry_attempts.push(attempt);
                    self.sink.record(
                        self.at,
                        RunEvent::Retry {
                            device: device as u64,
                            attempt: u64::from(attempt),
                        },
                    );
                }
            }
        }
    }

    /// Counts and journals a control frame the deduper rejected as a replay
    /// or stale reordering.
    fn stale_control(&mut self, device: usize) {
        self.outcome.stale_control_frames += 1;
        self.sink.record(
            self.at,
            RunEvent::StaleControlFrame {
                device: device as u64,
            },
        );
    }

    /// Decodes and accounts one delivered frame: control frames pass the
    /// sequence deduper and update the health tracker, data frames are
    /// stashed for fusion first-delivery-wins.
    fn ingest(&mut self, encoded: Bytes, device: usize) -> Result<Seen> {
        self.account(device, encoded.len() as u64);
        match WireFrame::decode(encoded).map_err(SchedError::Edge)? {
            WireFrame::Control(control) => {
                self.outcome.control_frames += 1;
                self.sink.record(
                    self.at,
                    RunEvent::ControlFrame {
                        device: device as u64,
                    },
                );
                let fresh = self
                    .deduper
                    .admit(control.device_id, control.kind, control.sequence);
                let device_id = control.device_id as usize;
                match control.kind {
                    ControlKind::Join => {
                        if fresh {
                            self.tracker
                                .observe_join(device_id, control.capacity_flops_per_second);
                        } else {
                            self.stale_control(device);
                        }
                        Ok(Seen::Other)
                    }
                    ControlKind::Heartbeat => {
                        self.outcome.heartbeats += 1;
                        self.sink.record(
                            self.at,
                            RunEvent::Heartbeat {
                                device: device_id as u64,
                                sequence: control.sequence,
                            },
                        );
                        // The tracker sees every beacon (it counts stale ones
                        // itself); only a deduper-fresh beacon closes rounds.
                        if !self.tracker.observe_heartbeat(device_id, control.sequence) {
                            self.sink.record(
                                self.at,
                                RunEvent::StaleHeartbeat {
                                    device: device_id as u64,
                                },
                            );
                        }
                        if fresh {
                            Ok(Seen::Beacon(control.sequence))
                        } else {
                            self.stale_control(device);
                            Ok(Seen::Other)
                        }
                    }
                    ControlKind::Leave => {
                        if fresh {
                            self.tracker.observe_leave(device_id, control.sequence);
                            Ok(Seen::Leave(control.sequence))
                        } else {
                            self.stale_control(device);
                            Ok(Seen::Other)
                        }
                    }
                }
            }
            WireFrame::FeatureBatch(batch) => {
                self.outcome.data_frames += 1;
                self.sink.record(
                    self.at,
                    RunEvent::DataFrame {
                        device: device as u64,
                    },
                );
                let sub_model = batch.sub_model;
                let mut duplicated = false;
                for single in batch.into_messages() {
                    let sample = single.sample_index as usize;
                    let Some(round) = self.layout.round_of(sample) else {
                        return Err(SchedError::Runtime {
                            message: format!(
                                "frame references sample {sample} beyond the stream of {}",
                                self.layout.total_samples()
                            ),
                        });
                    };
                    let slot = self
                        .partial
                        .entry(round)
                        .or_default()
                        .entry(sample)
                        .or_default();
                    if let std::collections::btree_map::Entry::Vacant(entry) = slot.entry(sub_model)
                    {
                        let tensor = single.into_tensor();
                        self.outcome.observed_dims.insert(sub_model, tensor.numel());
                        entry.insert(tensor);
                    } else {
                        // First delivery wins; a re-delivered feature can
                        // only echo what is already stashed.
                        duplicated = true;
                    }
                }
                if duplicated {
                    self.outcome.duplicate_frames += 1;
                    self.sink.record(
                        self.at,
                        RunEvent::DuplicateFrame {
                            device: device as u64,
                        },
                    );
                }
                Ok(Seen::Other)
            }
            WireFrame::Feature(_) => Err(SchedError::Runtime {
                message: "device shipped a single-feature frame, expected batches".to_string(),
            }),
        }
    }

    /// Fuses `round`, which must be complete for every *hosted* sub-model
    /// (guaranteed once every device delivered its heartbeat for the round).
    /// Missing sub-models are zero-filled at their recorded width so the
    /// concat layout — and with it the fusion function's input contract —
    /// stays stable across degraded rounds. Each output slot is written
    /// exactly once; a second write is a hard error.
    fn fuse(
        &mut self,
        round: u64,
        fusion: &mut FusionFn,
        fused: &mut [Option<Tensor>],
    ) -> Result<()> {
        let span = self.layout.span(round);
        let samples = self.partial.remove(&round).unwrap_or_default();
        let hosted = self.num_sub_models - self.missing_dims.len();
        if span.len() != samples.len() || samples.values().any(|features| features.len() != hosted)
        {
            return Err(SchedError::Runtime {
                message: format!(
                    "round {round} incomplete after every device heartbeat: {}/{} samples present",
                    samples.len(),
                    span.len()
                ),
            });
        }
        for (sample, mut features) in samples {
            if fused[sample].is_some() {
                return Err(SchedError::Runtime {
                    message: format!(
                        "sample {sample} would be fused twice (round {round} replayed after it \
                         was already complete)"
                    ),
                });
            }
            for &(sub, dim) in self.missing_dims {
                features.entry(sub).or_insert_with(|| Tensor::zeros(&[dim]));
            }
            let refs: Vec<&Tensor> = features.values().collect();
            let concatenated =
                Tensor::concat_last_axis(&refs).map_err(|e| SchedError::Runtime {
                    message: format!("feature concatenation failed: {e}"),
                })?;
            let output =
                fusion(&concatenated).map_err(|message| SchedError::Runtime { message })?;
            fused[sample] = Some(output);
        }
        if !self.missing_dims.is_empty() {
            self.outcome.degraded_rounds.push(round);
        }
        self.sink.record(
            self.at,
            RunEvent::RoundFused {
                round,
                samples: span.len() as u64,
                degraded: !self.missing_dims.is_empty(),
            },
        );
        Ok(())
    }
}

/// The fusion worker's epoch loop: drain every device up to round *k*'s
/// heartbeat (or leave, when a beacon was lost), fuse round *k*, repeat. A
/// closed lane before a device closes the current round — or a frame whose
/// retry budget ran out — is that device's death. A scripted join barrier
/// ends the epoch early with the fused frontier as the checkpoint.
#[allow(clippy::too_many_arguments)]
fn collect_epoch(
    mut receivers: BTreeMap<usize, Box<dyn FrameRx>>,
    epoch_rounds: &[u64],
    params: &EpochParams<'_>,
    frames_per_round: &BTreeMap<usize, usize>,
    num_sub_models: usize,
    fusion: &mut FusionFn,
    fused: &mut [Option<Tensor>],
    produced_max: &AtomicU64,
    tracker: &mut HealthTracker,
) -> Result<EpochOutcome> {
    for &device in receivers.keys() {
        tracker.register(device);
    }
    let mut collector = Collector {
        epoch_rounds,
        layout: params.layout,
        num_sub_models,
        faults: params.faults,
        max_retries: params.max_retries,
        frames_per_round,
        missing_dims: &params.missing_dims,
        tracker,
        deduper: ControlDeduper::new(),
        cursor: BTreeMap::new(),
        partial: BTreeMap::new(),
        outcome: EpochOutcome::new(),
        sink: params.sink,
        at: params.at,
    };

    'rounds: for (position, &round) in epoch_rounds.iter().enumerate() {
        if params.join_barrier.is_some_and(|at| round >= at) {
            collector.outcome.join_due = true;
            break 'rounds;
        }
        let expected_sequence = position as u64 + 1;
        for (&device, rx) in &mut receivers {
            loop {
                match rx.recv() {
                    LaneEvent::Frame(frame) => match collector.process(frame, device)? {
                        Processed::Seen(Seen::Beacon(seq) | Seen::Leave(seq))
                            if seq >= expected_sequence =>
                        {
                            break;
                        }
                        Processed::Seen(_) => {}
                        Processed::Escalate => {
                            // Retry budget exhausted: the link is as good as
                            // dead — same terminal path as a crash.
                            collector.tracker.declare_dead(device);
                            collector.outcome.newly_dead.push(device);
                            collector.sink.record(
                                collector.at,
                                RunEvent::DeviceDead {
                                    device: device as u64,
                                },
                            );
                            break 'rounds;
                        }
                    },
                    // The device reported a fatal executor failure in-band;
                    // the stream must abort, not repartition around it.
                    LaneEvent::PeerError(message) => {
                        return Err(SchedError::Runtime { message });
                    }
                    LaneEvent::Closed => {
                        // The device's lane closed before this round's
                        // heartbeat: its deadline passed. Terminal.
                        collector.tracker.declare_dead(device);
                        collector.outcome.newly_dead.push(device);
                        collector.sink.record(
                            collector.at,
                            RunEvent::DeviceDead {
                                device: device as u64,
                            },
                        );
                        break 'rounds;
                    }
                }
            }
        }
        // Every device delivered the round; the in-flight window is however
        // far the fastest producer has run ahead of fusion.
        let produced = produced_max.load(Ordering::Relaxed) as usize;
        collector.outcome.max_in_flight = collector
            .outcome
            .max_in_flight
            .max(produced.saturating_sub(collector.outcome.rounds_fused));
        collector.fuse(round, fusion, fused)?;
        collector.outcome.rounds_fused += 1;
    }

    if collector.outcome.newly_dead.is_empty() && !collector.outcome.join_due {
        // Graceful tail: consume the leave announcements down to lane close.
        for (&device, rx) in &mut receivers {
            loop {
                match rx.recv() {
                    LaneEvent::Frame(frame) => {
                        collector.process(frame, device)?;
                    }
                    LaneEvent::PeerError(message) => {
                        return Err(SchedError::Runtime { message });
                    }
                    LaneEvent::Closed => break,
                }
            }
        }
    } else if !collector.outcome.newly_dead.is_empty()
        && collector.outcome.rounds_fused < epoch_rounds.len()
    {
        // The replay set is what was in flight *at the fusion worker* when
        // the death was declared: exactly the round under collection (earlier
        // rounds were fused and removed, later rounds were never ingested —
        // any frames for them still queued in survivor channels are dropped
        // unread when the receivers fall at return, which also unblocks any
        // survivor still in `send`). Deriving this from the collector's
        // deterministic consumption order — never from how far worker
        // threads happened to race ahead — keeps `samples_replayed` and
        // `recovery_seconds` reproducible run to run and machine to machine.
        collector.outcome.partial_rounds = vec![epoch_rounds[collector.outcome.rounds_fused]];
    }
    // A join barrier keeps the fused frontier as its checkpoint: rounds past
    // the barrier replay on the new membership without a replay charge.
    for &device in receivers.keys() {
        let rounds = collector.tracker.sequence_of(device);
        collector.outcome.per_device_rounds.insert(device, rounds);
        collector.sink.record(
            collector.at,
            RunEvent::DeviceRounds {
                device: device as u64,
                rounds,
            },
        );
    }
    Ok(collector.outcome)
}
