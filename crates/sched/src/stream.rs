//! The streaming scheduler: pipelined rounds over bounded channels, heartbeat
//! health tracking, and live repartitioning on device death.
//!
//! # Execution model
//!
//! The input stream is cut into *rounds* of `round_size` samples. Execution
//! proceeds in *epochs*: one epoch per cluster membership. Within an epoch,
//! every active device runs on its own worker thread, processing rounds in
//! order: it computes the features of every sub-model it hosts, ships them as
//! wire-v2 [`FeatureBatchMessage`] frames, and follows each round with a
//! [`ControlMessage`] heartbeat. Every device owns a *bounded* channel to the
//! fusion worker sized for `pipeline_depth` rounds of frames — when the
//! fusion side falls behind, `send` blocks, so a device can buffer at most
//! `pipeline_depth` undrained rounds (and thus run at most
//! `pipeline_depth + 1` rounds ahead of the fused frontier, counting the one
//! it is computing): the backpressure is explicit, not emergent, and
//! inter-device skew is bounded by construction.
//!
//! The fusion worker consumes the per-device channels *round by round*: for
//! round *k* it drains every device's frames up to and including that round's
//! heartbeat, then fuses the round. Consumption order, not OS scheduling,
//! therefore decides what the collector observes — which keeps failure
//! detection deterministic. A device death (scripted or real) silences its
//! sender; the collector sees the disconnect exactly when it needs the dead
//! device's next round, declares the death (the [`HealthTracker`] records the
//! device's last heartbeat and terminal state), tears the epoch down, hands
//! the survivors to [`SplitPlan::replan_for_survivors`], and replays every
//! round that was produced but not fused. In-flight samples are recomputed,
//! never lost, and the exactly-once check on the output slots makes
//! duplication a hard error rather than a silent possibility.
//!
//! # Timing
//!
//! Thread interleaving on the host machine is nondeterministic, so all
//! reported timing comes from the virtual [`SimClock`], advanced with the
//! analytic [`edvit_edge::StreamTiming`] model: barrier mode pays
//! device-stage + fusion-stage per round, pipelined mode pays the wider of
//! the two stages per round once the pipeline is full.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel;
use edvit_edge::wire::FeatureBatchMessage;
use edvit_edge::{
    ControlKind, ControlMessage, FusionFn, LatencyModel, NetworkConfig, PayloadCodec, StreamTiming,
    SubModelFn, WireFrame,
};
use edvit_partition::{DeviceSpec, SplitPlan};
use edvit_tensor::Tensor;

use crate::{HealthTracker, Result, SchedError, SimClock};

/// How rounds are scheduled relative to the fusion stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// One buffered round at a time: a device may compute round *k+1* while
    /// the fusion worker drains round *k*, but blocks beyond that. The
    /// *timing model* is strictly serial — throughput is priced as the sum
    /// of the slowest device stage and the fusion stage.
    Barrier,
    /// Devices compute ahead of the fusion worker, buffering up to
    /// `pipeline_depth` undrained rounds before `send` blocks. Throughput is
    /// priced as the wider of the two stages.
    Pipelined,
}

/// Deterministic failure injection: the device goes silent (no leave frame,
/// no further heartbeats) instead of processing the given round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureInjection {
    /// Device to kill.
    pub device_id: usize,
    /// First (global) round id the device will not process. `0` means the
    /// device is dead on arrival; a value past the last round means it never
    /// dies.
    pub at_round: u64,
}

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Samples per round (≥ 1).
    pub round_size: usize,
    /// How many undrained rounds a device may buffer ahead of the fusion
    /// worker before `send` blocks (≥ 1; forced to 1 in
    /// [`ScheduleMode::Barrier`]). Counting the round being computed, a
    /// device can be up to `pipeline_depth + 1` rounds past the fused
    /// frontier.
    pub pipeline_depth: usize,
    /// Barrier or pipelined scheduling.
    pub mode: ScheduleMode,
    /// Heartbeat deadline, in rounds: a device whose next heartbeat is this
    /// many round intervals overdue is declared dead. Governs the virtual
    /// detection latency charged to `recovery_seconds`.
    pub grace_rounds: u64,
    /// Network model used for the virtual timing.
    pub network: NetworkConfig,
    /// Analytic fusion cost per sample in MAC-FLOPs; 0 uses the latency
    /// model's default formula.
    pub fusion_flops: u64,
    /// Virtual seconds charged for one run of the re-planner.
    pub replan_seconds: f64,
    /// The planner's `L` (samples per energy-budget window) handed to the
    /// greedy assignment when re-planning onto survivors. This is *not* the
    /// wire round size: `L` prices energy, `round_size` prices batching.
    pub energy_samples_per_round: u64,
    /// Wire codec every device encodes its batch frames with (control frames
    /// always ship codec 0). Also prices the virtual timing via
    /// [`LatencyModel::with_codec`].
    pub codec: PayloadCodec,
    /// Scripted device deaths.
    pub failures: Vec<FailureInjection>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            round_size: 4,
            pipeline_depth: 2,
            mode: ScheduleMode::Pipelined,
            grace_rounds: 2,
            network: NetworkConfig::paper_default(),
            fusion_flops: 0,
            replan_seconds: 0.05,
            energy_samples_per_round: 1,
            codec: PayloadCodec::F32,
            failures: Vec::new(),
        }
    }
}

impl StreamConfig {
    /// Switches to barrier scheduling (the pre-streaming behaviour).
    pub fn barrier(mut self) -> Self {
        self.mode = ScheduleMode::Barrier;
        self
    }

    /// Selects the wire codec the deployment ships batch frames with.
    pub fn with_codec(mut self, codec: PayloadCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Adds a scripted device death before the given global round.
    pub fn with_failure(mut self, device_id: usize, at_round: u64) -> Self {
        self.failures.push(FailureInjection {
            device_id,
            at_round,
        });
        self
    }
}

/// Everything a streaming run reports: fused outputs plus membership, health
/// and virtual-timing accounting.
#[derive(Debug)]
pub struct StreamReport {
    /// Fused output per input sample, in input order. Every sample appears
    /// exactly once — the scheduler errors out rather than dropping or
    /// double-fusing a sample across a repartition.
    pub outputs: Vec<Tensor>,
    /// Scheduling mode of the run.
    pub mode: ScheduleMode,
    /// Samples per round.
    pub round_size: usize,
    /// Wire codec the devices encoded their batch frames with.
    pub codec: PayloadCodec,
    /// Total rounds fused.
    pub rounds: usize,
    /// Membership epochs executed (1 + number of repartitions).
    pub epochs: usize,
    /// Most rounds simultaneously in flight (produced by some device but not
    /// yet fused), as observed by the fusion worker. This is the one
    /// scheduling-dependent statistic in the report — bounded by
    /// `pipeline_depth + 1`, but where it lands inside that bound depends on
    /// OS thread interleaving; every timing and replay number is
    /// deterministic.
    pub max_rounds_in_flight: usize,
    /// Heartbeat control frames observed.
    pub heartbeats_seen: u64,
    /// All control frames observed (join + leave + heartbeat).
    pub control_frames: usize,
    /// Feature-batch data frames observed.
    pub data_frames: usize,
    /// Encoded bytes shipped over the channel (data + control frames).
    pub bytes_on_wire: u64,
    /// Encoded bytes each device shipped, keyed by device id. Devices that
    /// joined in any epoch appear, including ones that later died.
    pub per_device_wire_bytes: BTreeMap<usize, u64>,
    /// Rounds each device delivered (heartbeats received from it), keyed by
    /// device id and accumulated across epochs.
    pub per_device_rounds: BTreeMap<usize, u64>,
    /// Devices declared dead, in detection order.
    pub devices_lost: Vec<usize>,
    /// Times the planner re-assigned sub-models onto survivors.
    pub repartitions: usize,
    /// Samples that were in flight at a death and had to be recomputed.
    pub samples_replayed: usize,
    /// Virtual seconds from a device's death to its sub-models producing
    /// fused output again: detection (the missed heartbeat plus the
    /// `grace_rounds` deadline) + re-planning + replaying the in-flight
    /// rounds. Zero when no device died.
    pub recovery_seconds: f64,
    /// Steady-state throughput of the final membership, from the analytic
    /// stream timing.
    pub steady_state_samples_per_second: f64,
    /// Virtual end-to-end seconds on the [`SimClock`].
    pub simulated_total_seconds: f64,
    /// The plan in force when the stream finished (re-assigned if devices
    /// died).
    pub final_plan: SplitPlan,
}

impl StreamReport {
    /// Argmax prediction per sample, for classification-style fusion outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if any output is empty.
    pub fn predictions(&self) -> Result<Vec<usize>> {
        self.outputs
            .iter()
            .map(|o| {
                o.argmax().map_err(|e| SchedError::Runtime {
                    message: format!("empty fusion output: {e}"),
                })
            })
            .collect()
    }
}

/// What one epoch hands back to the scheduler loop.
struct EpochOutcome {
    newly_dead: Vec<usize>,
    rounds_fused: usize,
    /// Unfused rounds that had received at least one frame (in flight at the
    /// death) — these are the replayed rounds.
    partial_rounds: Vec<u64>,
    heartbeats: u64,
    control_frames: usize,
    data_frames: usize,
    bytes_on_wire: u64,
    per_device_wire_bytes: BTreeMap<usize, u64>,
    per_device_rounds: BTreeMap<usize, u64>,
    max_in_flight: usize,
}

/// The streaming fault-tolerant scheduler.
#[derive(Debug, Clone)]
pub struct StreamScheduler {
    plan: SplitPlan,
    devices: Vec<DeviceSpec>,
    config: StreamConfig,
}

impl StreamScheduler {
    /// Creates a scheduler for `plan` deployed across `devices`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] for empty device lists,
    /// zero-sized rounds or zero pipeline depth.
    pub fn new(plan: SplitPlan, devices: Vec<DeviceSpec>, config: StreamConfig) -> Result<Self> {
        if devices.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "no devices".to_string(),
            });
        }
        if config.round_size == 0 {
            return Err(SchedError::InvalidConfig {
                message: "round size must be at least 1".to_string(),
            });
        }
        if config.pipeline_depth == 0 {
            return Err(SchedError::InvalidConfig {
                message: "pipeline depth must be at least 1".to_string(),
            });
        }
        Ok(StreamScheduler {
            plan,
            devices,
            config,
        })
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Runs the stream: every input sample is fused exactly once, across as
    /// many membership epochs as device deaths require.
    ///
    /// `executors[i]` computes sub-model `i`'s feature vector for one sample;
    /// there must be exactly one executor per sub-model in the plan.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidConfig`] for empty inputs or a mismatched
    /// executor count, [`SchedError::Runtime`] for executor/fusion failures
    /// or violated exactly-once invariants, [`SchedError::Partition`] when
    /// survivors cannot host the sub-models, and
    /// [`SchedError::AllDevicesLost`] when every device dies.
    pub fn run(
        &self,
        inputs: &[Tensor],
        mut executors: Vec<SubModelFn>,
        mut fusion: FusionFn,
    ) -> Result<StreamReport> {
        if inputs.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "no input samples".to_string(),
            });
        }
        if executors.len() != self.plan.sub_models.len() {
            return Err(SchedError::InvalidConfig {
                message: format!(
                    "{} executors for {} sub-models",
                    executors.len(),
                    self.plan.sub_models.len()
                ),
            });
        }
        let cfg = &self.config;
        let round_size = cfg.round_size;
        let total_rounds = inputs.len().div_ceil(round_size);
        let failures: BTreeMap<usize, u64> = cfg
            .failures
            .iter()
            .map(|f| (f.device_id, f.at_round))
            .collect();

        let mut current_plan = self.plan.clone();
        let mut current_devices = self.devices.clone();
        let mut pending: Vec<u64> = (0..total_rounds as u64).collect();
        let mut fused: Vec<Option<Tensor>> = vec![None; inputs.len()];
        let mut clock = SimClock::new();

        let mut report = StreamReport {
            outputs: Vec::new(),
            mode: cfg.mode,
            round_size,
            codec: cfg.codec,
            rounds: total_rounds,
            epochs: 0,
            max_rounds_in_flight: 0,
            heartbeats_seen: 0,
            control_frames: 0,
            data_frames: 0,
            bytes_on_wire: 0,
            per_device_wire_bytes: BTreeMap::new(),
            per_device_rounds: BTreeMap::new(),
            devices_lost: Vec::new(),
            repartitions: 0,
            samples_replayed: 0,
            recovery_seconds: 0.0,
            steady_state_samples_per_second: 0.0,
            simulated_total_seconds: 0.0,
            final_plan: current_plan.clone(),
        };

        loop {
            report.epochs += 1;
            let timing = self.timing(&current_plan, &current_devices)?;
            let outcome = run_epoch(
                &current_plan,
                &current_devices,
                &pending,
                round_size,
                cfg.effective_depth(),
                cfg.codec,
                inputs,
                &mut executors,
                &mut fusion,
                &mut fused,
                &failures,
            )?;

            report.heartbeats_seen += outcome.heartbeats;
            report.control_frames += outcome.control_frames;
            report.data_frames += outcome.data_frames;
            report.bytes_on_wire += outcome.bytes_on_wire;
            for (&device, &bytes) in &outcome.per_device_wire_bytes {
                *report.per_device_wire_bytes.entry(device).or_insert(0) += bytes;
            }
            for (&device, &rounds) in &outcome.per_device_rounds {
                *report.per_device_rounds.entry(device).or_insert(0) += rounds;
            }
            report.max_rounds_in_flight = report.max_rounds_in_flight.max(outcome.max_in_flight);
            clock.advance(timing.total_seconds(outcome.rounds_fused));

            pending.retain(|&round| round_unfused(&fused, round, round_size, inputs.len()));

            if outcome.newly_dead.is_empty() {
                if !pending.is_empty() {
                    return Err(SchedError::Runtime {
                        message: format!(
                            "epoch ended with {} unfused round(s) but no device death",
                            pending.len()
                        ),
                    });
                }
                report.steady_state_samples_per_second = timing.steady_state_samples_per_second();
                break;
            }

            // ---- A death: repartition onto the survivors and replay. -------
            report
                .devices_lost
                .extend(outcome.newly_dead.iter().copied());
            current_devices.retain(|d| !outcome.newly_dead.contains(&d.id));
            if current_devices.is_empty() {
                return Err(SchedError::AllDevicesLost {
                    lost: report.devices_lost.clone(),
                });
            }
            current_plan = current_plan
                .replan_for_survivors(&current_devices, cfg.energy_samples_per_round)?;
            report.repartitions += 1;
            report.samples_replayed += outcome
                .partial_rounds
                .iter()
                .map(|&r| round_len(r, round_size, inputs.len()))
                .sum::<usize>();

            // Detection costs one round interval for the missed heartbeat to
            // fall due plus `grace_rounds` intervals of deadline; then the
            // planner runs; then the in-flight rounds replay on the new
            // membership (their compute is charged to the next epoch's clock
            // advance, but they are part of the recovery window).
            let detection_seconds = (cfg.grace_rounds + 1) as f64 * timing.round_interval_seconds;
            let new_timing = self.timing(&current_plan, &current_devices)?;
            let replay_seconds =
                outcome.partial_rounds.len() as f64 * new_timing.round_interval_seconds;
            report.recovery_seconds += detection_seconds + cfg.replan_seconds + replay_seconds;
            clock.advance(detection_seconds + cfg.replan_seconds);
        }

        report.simulated_total_seconds = clock.now();
        report.final_plan = current_plan;
        report.outputs = fused
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| SchedError::Runtime {
                    message: format!("sample {i} was never fused"),
                })
            })
            .collect::<Result<Vec<Tensor>>>()?;
        Ok(report)
    }

    fn timing(&self, plan: &SplitPlan, devices: &[DeviceSpec]) -> Result<StreamTiming> {
        let mut model = LatencyModel::new(self.config.network).with_codec(self.config.codec);
        if self.config.fusion_flops > 0 {
            model = model.with_fusion_flops(self.config.fusion_flops);
        }
        Ok(model.estimate_stream(
            plan,
            devices,
            self.config.round_size,
            self.config.mode == ScheduleMode::Pipelined,
        )?)
    }
}

impl StreamConfig {
    /// Rounds in flight the mode actually allows: barrier forces 1.
    fn effective_depth(&self) -> usize {
        match self.mode {
            ScheduleMode::Barrier => 1,
            ScheduleMode::Pipelined => self.pipeline_depth,
        }
    }
}

/// Sample indices covered by the given global round.
fn round_span(round: u64, round_size: usize, total_samples: usize) -> std::ops::Range<usize> {
    let lo = round as usize * round_size;
    let hi = (lo + round_size).min(total_samples);
    lo..hi
}

fn round_len(round: u64, round_size: usize, total_samples: usize) -> usize {
    round_span(round, round_size, total_samples).len()
}

fn round_unfused(
    fused: &[Option<Tensor>],
    round: u64,
    round_size: usize,
    total_samples: usize,
) -> bool {
    round_span(round, round_size, total_samples).any(|sample| fused[sample].is_none())
}

/// One membership epoch: spawns a worker thread per active device, consumes
/// the per-device channels round by round on the calling thread, fuses each
/// completed round, and reports any death (a device whose channel
/// disconnected before it delivered all its rounds).
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    plan: &SplitPlan,
    devices: &[DeviceSpec],
    epoch_rounds: &[u64],
    round_size: usize,
    pipeline_depth: usize,
    codec: PayloadCodec,
    inputs: &[Tensor],
    executors: &mut [SubModelFn],
    fusion: &mut FusionFn,
    fused: &mut [Option<Tensor>],
    failures: &BTreeMap<usize, u64>,
) -> Result<EpochOutcome> {
    // Group the per-sub-model executors by hosting device. `iter_mut` hands
    // out disjoint `&mut` borrows, so each worker thread exclusively owns the
    // executors of its device for the duration of the epoch scope.
    let mut by_device: BTreeMap<usize, Vec<(usize, &mut SubModelFn)>> = BTreeMap::new();
    for (sub_index, executor) in executors.iter_mut().enumerate() {
        let device_id =
            plan.assignment
                .device_for(sub_index)
                .ok_or_else(|| SchedError::InvalidConfig {
                    message: format!("sub-model {sub_index} has no assigned device"),
                })?;
        if !devices.iter().any(|d| d.id == device_id) {
            return Err(SchedError::InvalidConfig {
                message: format!("sub-model {sub_index} assigned to unknown device {device_id}"),
            });
        }
        by_device
            .entry(device_id)
            .or_default()
            .push((sub_index, executor));
    }

    let num_sub_models = plan.sub_models.len();
    let total_samples = inputs.len();
    // Highest round count any device has produced this epoch. Purely
    // observational (it feeds the `max_rounds_in_flight` statistic, which is
    // scheduling-dependent by nature); timing and replay accounting never
    // read it, so they stay deterministic.
    let produced_max = AtomicU64::new(0);
    let produced_ref = &produced_max;

    crossbeam::scope(|scope| -> Result<EpochOutcome> {
        let mut receivers: BTreeMap<usize, channel::Receiver<DeviceToFusion>> = BTreeMap::new();
        // Drain in ascending device order (BTreeMap) so spawn order — and
        // with it the deterministic replay accounting — is stable.
        while let Some((device_id, execs)) = by_device.pop_first() {
            // Per-device bounded channel: `pipeline_depth` rounds of frames
            // (data frames for each hosted sub-model plus the heartbeat),
            // with two slots of slack for the join and leave announcements.
            // Once the buffer is full the device blocks in `send` — explicit
            // backpressure, and a hard bound on how far devices can skew.
            let capacity = (execs.len() + 1) * pipeline_depth.max(1) + 2;
            let (tx, rx) = channel::bounded::<DeviceToFusion>(capacity);
            receivers.insert(device_id, rx);
            let capacity_flops = devices
                .iter()
                .find(|d| d.id == device_id)
                .map_or(0.0, |d| d.flops_per_second);
            let dies_at = failures.get(&device_id).copied();
            scope.spawn(move |_| {
                run_device_worker(
                    device_id,
                    execs,
                    epoch_rounds,
                    round_size,
                    total_samples,
                    codec,
                    inputs,
                    capacity_flops,
                    dies_at,
                    produced_ref,
                    &tx,
                );
            });
        }

        collect_epoch(
            receivers,
            epoch_rounds,
            round_size,
            num_sub_models,
            total_samples,
            fusion,
            fused,
            produced_ref,
        )
    })
    .map_err(|_| SchedError::Runtime {
        message: "a device worker thread panicked".to_string(),
    })?
}

/// What travels from a device worker to the fusion worker: an encoded wire
/// frame, or an executor failure that must abort the stream.
type DeviceToFusion = std::result::Result<bytes::Bytes, String>;

/// One device's epoch loop: per round, compute + ship every hosted
/// sub-model's batch frame, then a heartbeat. A scripted death makes the
/// worker return silently — no leave frame, no further beacons — so the
/// fusion side observes exactly what a crashed device looks like: a channel
/// that goes quiet and then disconnects.
#[allow(clippy::too_many_arguments)]
fn run_device_worker(
    device_id: usize,
    mut execs: Vec<(usize, &mut SubModelFn)>,
    epoch_rounds: &[u64],
    round_size: usize,
    total_samples: usize,
    codec: PayloadCodec,
    inputs: &[Tensor],
    capacity_flops: f64,
    dies_at: Option<u64>,
    produced_max: &AtomicU64,
    tx: &channel::SyncSender<DeviceToFusion>,
) {
    // A closed channel means the collector bailed; stop quietly everywhere.
    if tx
        .send(Ok(ControlMessage::join(device_id, capacity_flops).encode()))
        .is_err()
    {
        return;
    }
    let mut completed = 0u64;
    for &round in epoch_rounds {
        if dies_at.is_some_and(|at| round >= at) {
            return; // scripted crash: silence, not a leave
        }
        let span = round_span(round, round_size, total_samples);
        for (sub_index, executor) in &mut execs {
            let mut batch: Option<FeatureBatchMessage> = None;
            for sample in span.clone() {
                let feature = match executor(&inputs[sample]) {
                    Ok(f) => f,
                    Err(message) => {
                        let _ = tx.send(Err(format!("device {device_id}: {message}")));
                        return;
                    }
                };
                let slot = batch
                    .get_or_insert_with(|| FeatureBatchMessage::new(*sub_index, feature.numel()));
                if let Err(e) = slot.push_tensor(sample, &feature) {
                    let _ = tx.send(Err(format!("device {device_id}: {e}")));
                    return;
                }
            }
            let Some(batch) = batch else { continue };
            if tx.send(Ok(batch.encode_with(codec))).is_err() {
                return;
            }
        }
        completed += 1;
        produced_max.fetch_max(completed, Ordering::Relaxed);
        if tx
            .send(Ok(ControlMessage::heartbeat(
                device_id,
                completed,
                capacity_flops,
            )
            .encode()))
            .is_err()
        {
            return;
        }
    }
    let _ = tx.send(Ok(ControlMessage::leave(device_id, completed).encode()));
}

/// The fusion worker's epoch loop: drain every device up to round *k*'s
/// heartbeat, fuse round *k*, repeat. A disconnect before a device's
/// heartbeat for the current round is that device's death.
#[allow(clippy::too_many_arguments)]
fn collect_epoch(
    receivers: BTreeMap<usize, channel::Receiver<DeviceToFusion>>,
    epoch_rounds: &[u64],
    round_size: usize,
    num_sub_models: usize,
    total_samples: usize,
    fusion: &mut FusionFn,
    fused: &mut [Option<Tensor>],
    produced_max: &AtomicU64,
) -> Result<EpochOutcome> {
    let mut tracker = HealthTracker::new();
    for &device in receivers.keys() {
        tracker.register(device);
    }
    // round -> sample -> (sub-model -> feature), ordered so fusion walks
    // samples in input order.
    let mut partial: BTreeMap<u64, BTreeMap<usize, BTreeMap<u32, Tensor>>> = BTreeMap::new();
    let mut outcome = EpochOutcome {
        newly_dead: Vec::new(),
        rounds_fused: 0,
        partial_rounds: Vec::new(),
        heartbeats: 0,
        control_frames: 0,
        data_frames: 0,
        bytes_on_wire: 0,
        per_device_wire_bytes: BTreeMap::new(),
        per_device_rounds: BTreeMap::new(),
        max_in_flight: 0,
    };

    'rounds: for (position, &round) in epoch_rounds.iter().enumerate() {
        let expected_sequence = position as u64 + 1;
        for (&device, rx) in &receivers {
            loop {
                match rx.recv() {
                    Ok(message) => {
                        let seen = ingest(
                            message,
                            device,
                            round_size,
                            total_samples,
                            &mut tracker,
                            &mut partial,
                            &mut outcome,
                        )?;
                        if matches!(seen, Seen::Heartbeat(seq) if seq >= expected_sequence) {
                            break;
                        }
                    }
                    Err(_) => {
                        // The device's sender dropped before this round's
                        // heartbeat: its deadline passed. Terminal.
                        tracker.declare_dead(device);
                        outcome.newly_dead.push(device);
                        break 'rounds;
                    }
                }
            }
        }
        // Every device delivered the round; the in-flight window is however
        // far the fastest producer has run ahead of fusion.
        let produced = produced_max.load(Ordering::Relaxed) as usize;
        outcome.max_in_flight = outcome
            .max_in_flight
            .max(produced.saturating_sub(outcome.rounds_fused));
        fuse_round(
            round,
            round_size,
            num_sub_models,
            total_samples,
            &mut partial,
            fusion,
            fused,
        )?;
        outcome.rounds_fused += 1;
    }

    if outcome.newly_dead.is_empty() {
        // Graceful tail: consume the leave announcements.
        for (&device, rx) in &receivers {
            for message in rx {
                ingest(
                    message,
                    device,
                    round_size,
                    total_samples,
                    &mut tracker,
                    &mut partial,
                    &mut outcome,
                )?;
            }
        }
    } else if outcome.rounds_fused < epoch_rounds.len() {
        // The replay set is what was in flight *at the fusion worker* when
        // the death was declared: exactly the round under collection (earlier
        // rounds were fused and removed, later rounds were never ingested —
        // any frames for them still queued in survivor channels are dropped
        // unread when the receivers fall at return, which also unblocks any
        // survivor still in `send`). Deriving this from the collector's
        // deterministic consumption order — never from how far worker
        // threads happened to race ahead — keeps `samples_replayed` and
        // `recovery_seconds` reproducible run to run and machine to machine.
        outcome.partial_rounds = vec![epoch_rounds[outcome.rounds_fused]];
    }
    for &device in receivers.keys() {
        outcome
            .per_device_rounds
            .insert(device, tracker.sequence_of(device));
    }
    Ok(outcome)
}

/// What one received message turned out to be.
enum Seen {
    Heartbeat(u64),
    Other,
}

/// Decodes and accounts one frame: control frames update the health tracker,
/// data frames are stashed for fusion.
fn ingest(
    message: DeviceToFusion,
    device: usize,
    round_size: usize,
    total_samples: usize,
    tracker: &mut HealthTracker,
    partial: &mut BTreeMap<u64, BTreeMap<usize, BTreeMap<u32, Tensor>>>,
    outcome: &mut EpochOutcome,
) -> Result<Seen> {
    let encoded = message.map_err(|message| SchedError::Runtime { message })?;
    outcome.bytes_on_wire += encoded.len() as u64;
    *outcome.per_device_wire_bytes.entry(device).or_insert(0) += encoded.len() as u64;
    match WireFrame::decode(encoded).map_err(SchedError::Edge)? {
        WireFrame::Control(control) => {
            outcome.control_frames += 1;
            match control.kind {
                ControlKind::Join => {
                    tracker.observe_join(
                        control.device_id as usize,
                        control.capacity_flops_per_second,
                    );
                    Ok(Seen::Other)
                }
                ControlKind::Heartbeat => {
                    outcome.heartbeats += 1;
                    tracker.observe_heartbeat(control.device_id as usize, control.sequence);
                    Ok(Seen::Heartbeat(control.sequence))
                }
                ControlKind::Leave => {
                    tracker.observe_leave(control.device_id as usize, control.sequence);
                    Ok(Seen::Other)
                }
            }
        }
        WireFrame::FeatureBatch(batch) => {
            outcome.data_frames += 1;
            let sub_model = batch.sub_model;
            for single in batch.into_messages() {
                let sample = single.sample_index as usize;
                if sample >= total_samples {
                    return Err(SchedError::Runtime {
                        message: format!(
                            "frame references sample {sample} beyond the stream of {total_samples}"
                        ),
                    });
                }
                let round = (sample / round_size) as u64;
                partial
                    .entry(round)
                    .or_default()
                    .entry(sample)
                    .or_default()
                    .insert(sub_model, single.into_tensor());
            }
            Ok(Seen::Other)
        }
        WireFrame::Feature(_) => Err(SchedError::Runtime {
            message: "device shipped a single-feature frame, expected batches".to_string(),
        }),
    }
}

/// Fuses `round`, which must be complete (every sample has every sub-model's
/// feature — guaranteed once every device delivered its heartbeat for the
/// round). Each output slot is written exactly once; a second write is a
/// hard error.
fn fuse_round(
    round: u64,
    round_size: usize,
    num_sub_models: usize,
    total_samples: usize,
    partial: &mut BTreeMap<u64, BTreeMap<usize, BTreeMap<u32, Tensor>>>,
    fusion: &mut FusionFn,
    fused: &mut [Option<Tensor>],
) -> Result<()> {
    let span = round_span(round, round_size, total_samples);
    let samples = partial.remove(&round).unwrap_or_default();
    if span.len() != samples.len()
        || samples
            .values()
            .any(|features| features.len() != num_sub_models)
    {
        return Err(SchedError::Runtime {
            message: format!(
                "round {round} incomplete after every device heartbeat: {}/{} samples present",
                samples.len(),
                span.len()
            ),
        });
    }
    for (sample, features) in samples {
        if fused[sample].is_some() {
            return Err(SchedError::Runtime {
                message: format!(
                    "sample {sample} would be fused twice (round {round} replayed after it was \
                     already complete)"
                ),
            });
        }
        let refs: Vec<&Tensor> = features.values().collect();
        let concatenated = Tensor::concat_last_axis(&refs).map_err(|e| SchedError::Runtime {
            message: format!("feature concatenation failed: {e}"),
        })?;
        let output = fusion(&concatenated).map_err(|message| SchedError::Runtime { message })?;
        fused[sample] = Some(output);
    }
    Ok(())
}
