use std::fmt;

use edvit_edge::EdgeError;
use edvit_partition::PartitionError;

/// Error type of the streaming scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The stream was configured inconsistently (zero-sized rounds, executor
    /// count not matching the plan, ...).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// A worker thread, an executor or the fusion function failed.
    Runtime {
        /// Human-readable description.
        message: String,
    },
    /// A wire frame failed to decode or verify (propagated from `edvit-edge`).
    Edge(EdgeError),
    /// Re-planning after membership churn failed (propagated from
    /// `edvit-partition`), e.g. the survivors cannot host every sub-model.
    Partition(PartitionError),
    /// Every device died before the stream finished; there is nothing left to
    /// repartition onto.
    AllDevicesLost {
        /// Device ids declared dead, in detection order.
        lost: Vec<usize>,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidConfig { message } => {
                write!(f, "invalid stream configuration: {message}")
            }
            SchedError::Runtime { message } => write!(f, "stream runtime failure: {message}"),
            SchedError::Edge(e) => write!(f, "stream wire failure: {e}"),
            SchedError::Partition(e) => write!(f, "stream re-plan failure: {e}"),
            SchedError::AllDevicesLost { lost } => write!(
                f,
                "every device died mid-stream (lost, in order: {lost:?}); nothing to repartition onto"
            ),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Edge(e) => Some(e),
            SchedError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EdgeError> for SchedError {
    fn from(e: EdgeError) -> Self {
        SchedError::Edge(e)
    }
}

impl From<PartitionError> for SchedError {
    fn from(e: PartitionError) -> Self {
        SchedError::Partition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SchedError::InvalidConfig {
            message: "round size 0".into()
        }
        .to_string()
        .contains("round size 0"));
        assert!(SchedError::Runtime {
            message: "fusion died".into()
        }
        .to_string()
        .contains("fusion died"));
        let edge: SchedError = EdgeError::Decode {
            message: "short".into(),
        }
        .into();
        assert!(edge.to_string().contains("short"));
        let partition: SchedError = PartitionError::Infeasible {
            reason: "too small".into(),
        }
        .into();
        assert!(partition.to_string().contains("too small"));
        // The From impls must land on the dedicated propagation variants, not
        // get flattened into Runtime.
        assert!(matches!(edge, SchedError::Edge(_)));
        assert!(matches!(partition, SchedError::Partition(_)));
        let lost = SchedError::AllDevicesLost { lost: vec![1, 0] };
        assert!(lost.to_string().contains("[1, 0]"));
        use std::error::Error;
        assert!(edge.source().is_some());
        assert!(lost.source().is_none());
    }
}
