use std::fmt;

use edvit_edge::EdgeError;
use edvit_partition::PartitionError;

/// Error type of the streaming scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The stream was configured inconsistently (zero-sized rounds, executor
    /// count not matching the plan, ...).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// A worker thread, an executor or the fusion function failed.
    Runtime {
        /// Human-readable description.
        message: String,
    },
    /// A wire frame failed to decode or verify (propagated from `edvit-edge`).
    Edge(EdgeError),
    /// Re-planning after membership churn failed (propagated from
    /// `edvit-partition`), e.g. the survivors cannot host every sub-model.
    Partition(PartitionError),
    /// Every device died before the stream finished; there is nothing left to
    /// repartition onto.
    AllDevicesLost {
        /// Device ids declared dead, in detection order.
        lost: Vec<usize>,
    },
    /// Degraded-mode fusion would have to drop more sub-models than the
    /// configured tolerance allows. The stream stops with a typed error
    /// instead of silently producing predictions from too few experts.
    DegradationLimit {
        /// Sub-model indices that could not be hosted, ascending.
        missing: Vec<usize>,
        /// The configured `max_missing_sub_models` tolerance that was
        /// exceeded.
        limit: usize,
    },
    /// A join was scripted for a device id that is still a live member of the
    /// stream. A rejoin must be a new identity-epoch of a dead or departed
    /// device, never a second copy of a live one.
    RejoinConflict {
        /// The conflicting device id.
        device: usize,
    },
    /// The transport backend could not be stood up or open a peer lane
    /// (e.g. the TCP backend failed to bind or connect its loopback sockets).
    /// Frame-level failures are *not* this variant — a torn or silent lane
    /// surfaces as a device death through the normal repartition path.
    Transport {
        /// Human-readable description from the transport layer.
        message: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidConfig { message } => {
                write!(f, "invalid stream configuration: {message}")
            }
            SchedError::Runtime { message } => write!(f, "stream runtime failure: {message}"),
            SchedError::Edge(e) => write!(f, "stream wire failure: {e}"),
            SchedError::Partition(e) => write!(f, "stream re-plan failure: {e}"),
            SchedError::AllDevicesLost { lost } => write!(
                f,
                "every device died mid-stream (lost, in order: {lost:?}); nothing to repartition onto"
            ),
            SchedError::DegradationLimit { missing, limit } => write!(
                f,
                "degraded replan would leave sub-models {missing:?} unhosted, \
                 exceeding the tolerance of {limit} missing sub-model(s)"
            ),
            SchedError::RejoinConflict { device } => write!(
                f,
                "device {device} is still a live member; a rejoin must follow a death or leave"
            ),
            SchedError::Transport { message } => {
                write!(f, "stream transport failure: {message}")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Edge(e) => Some(e),
            SchedError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EdgeError> for SchedError {
    fn from(e: EdgeError) -> Self {
        SchedError::Edge(e)
    }
}

impl From<PartitionError> for SchedError {
    fn from(e: PartitionError) -> Self {
        SchedError::Partition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SchedError::InvalidConfig {
            message: "round size 0".into()
        }
        .to_string()
        .contains("round size 0"));
        assert!(SchedError::Runtime {
            message: "fusion died".into()
        }
        .to_string()
        .contains("fusion died"));
        let edge: SchedError = EdgeError::Decode {
            message: "short".into(),
        }
        .into();
        assert!(edge.to_string().contains("short"));
        let partition: SchedError = PartitionError::Infeasible {
            reason: "too small".into(),
        }
        .into();
        assert!(partition.to_string().contains("too small"));
        // The From impls must land on the dedicated propagation variants, not
        // get flattened into Runtime.
        assert!(matches!(edge, SchedError::Edge(_)));
        assert!(matches!(partition, SchedError::Partition(_)));
        let lost = SchedError::AllDevicesLost { lost: vec![1, 0] };
        assert!(lost.to_string().contains("[1, 0]"));
        let degraded = SchedError::DegradationLimit {
            missing: vec![2, 3],
            limit: 1,
        };
        assert!(degraded.to_string().contains("[2, 3]"));
        assert!(degraded.to_string().contains("tolerance of 1"));
        let conflict = SchedError::RejoinConflict { device: 4 };
        assert!(conflict.to_string().contains("device 4"));
        let transport = SchedError::Transport {
            message: "bind failed: address in use".into(),
        };
        assert!(transport.to_string().contains("address in use"));
        use std::error::Error;
        assert!(edge.source().is_some());
        assert!(lost.source().is_none());
        assert!(degraded.source().is_none());
        assert!(conflict.source().is_none());
        assert!(transport.source().is_none());
    }
}
