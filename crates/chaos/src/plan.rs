//! Declarative, seeded fault plans and their compilation into scheduler
//! scripts.

use edvit_partition::{DeviceSpec, SplitPlan};
use edvit_sched::{
    FailureInjection, FaultScript, FrameFault, FrameSlot, JoinInjection, StreamConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{ChaosError, Result};

/// Corruption attempts scripted for [`FaultKind::PersistentCorruption`]:
/// comfortably past any sane retry budget, so the frame keeps failing until
/// the scheduler escalates to device death.
const PERSISTENT_ATTEMPTS: u32 = 16;

/// One declarative fault in a [`FaultPlan`]. Rounds are *global* stream round
/// ids, devices are [`DeviceSpec::id`]s of the deployment the plan compiles
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One data frame of the round arrives with a flipped payload bit (the
    /// CRC catches it); the re-requested copy is clean.
    CorruptFrame {
        /// Victim device id.
        device: usize,
        /// Global round whose frame is corrupted.
        round: u64,
    },
    /// Every delivery attempt of one data frame arrives corrupted, so the
    /// retry budget runs out and the link escalates to device death.
    PersistentCorruption {
        /// Victim device id.
        device: usize,
        /// Global round whose frame keeps failing.
        round: u64,
    },
    /// One data frame arrives truncated (decode failure); the re-requested
    /// copy is clean.
    TruncateFrame {
        /// Victim device id.
        device: usize,
        /// Global round whose frame is truncated.
        round: u64,
    },
    /// The link eats one data frame; the re-requested copy is clean.
    DropDataFrame {
        /// Victim device id.
        device: usize,
        /// Global round whose frame is eaten.
        round: u64,
    },
    /// One data frame is delivered twice; the copy must be absorbed by the
    /// receiver's first-delivery-wins stash.
    DuplicateFrame {
        /// Victim device id.
        device: usize,
        /// Global round whose frame is duplicated.
        round: u64,
    },
    /// The link eats (or delays past usefulness) one heartbeat beacon; the
    /// next fresh beacon or the device's leave closes the round.
    DropHeartbeat {
        /// Victim device id.
        device: usize,
        /// Global round whose beacon is lost.
        round: u64,
    },
    /// One heartbeat is delivered twice; the replayed copy must be rejected
    /// by sequence dedupe and never satisfy a deadline.
    ReplayHeartbeat {
        /// Victim device id.
        device: usize,
        /// Global round whose beacon is replayed.
        round: u64,
    },
    /// The device crashes: silence instead of processing `at_round`.
    Crash {
        /// Victim device id.
        device: usize,
        /// First global round the device will not process.
        at_round: u64,
    },
    /// The device crashes at `at_round` and rejoins `rejoin_after` rounds
    /// later as a new identity-epoch, offering its original capacity.
    CrashThenRejoin {
        /// Victim device id.
        device: usize,
        /// First global round the device will not process.
        at_round: u64,
        /// Rounds between the crash and the rejoin offer (≥ 1).
        rejoin_after: u64,
    },
    /// A flaky link: every round of the stream, this device's frames are
    /// independently corrupted with probability `corrupt_per_mille`/1000
    /// (each corruption recovers on retry).
    FlakyLink {
        /// Victim device id.
        device: usize,
        /// Per-round corruption probability in thousandths (0..=1000).
        corrupt_per_mille: u32,
    },
}

/// What a [`FaultPlan`] compiles into: the three scheduler-side injection
/// channels, ready to install on a [`StreamConfig`].
#[derive(Debug, Clone, Default)]
pub struct CompiledChaos {
    /// Frame-level faults, applied by the collector at the wire boundary.
    pub script: FaultScript,
    /// Scripted crashes.
    pub failures: Vec<FailureInjection>,
    /// Scripted (re)joins.
    pub joins: Vec<JoinInjection>,
}

impl CompiledChaos {
    /// Installs the compiled chaos on a stream configuration: the fault
    /// script replaces the config's, crashes and joins are appended.
    pub fn apply(self, config: StreamConfig) -> StreamConfig {
        let mut config = config.with_faults(self.script);
        config.failures.extend(self.failures);
        config.joins.extend(self.joins);
        config
    }
}

/// A declarative, seeded fault-injection plan.
///
/// The plan names *what* goes wrong ([`FaultKind`]) and the seed fixes every
/// remaining choice (which frame slot, which payload bit, which rounds a
/// flaky link fires on) through a [`ChaCha8Rng`] stream — so one `(plan,
/// seed, deployment)` triple always compiles to the bit-identical
/// [`CompiledChaos`], and a drill that found a bug replays exactly.
///
/// # Example
///
/// ```
/// use edvit_chaos::{FaultKind, FaultPlan};
/// use edvit_partition::{DeviceSpec, PlannerConfig, SplitPlanner};
/// use edvit_vit::ViTConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let devices = DeviceSpec::raspberry_pi_cluster(3);
/// let plan = SplitPlanner::new(PlannerConfig::default())
///     .plan(&ViTConfig::vit_base(10), &devices, 0)?;
/// let chaos = FaultPlan::new(7)
///     .with(FaultKind::CorruptFrame { device: 0, round: 2 })
///     .with(FaultKind::DropHeartbeat { device: 1, round: 1 })
///     .compile(&plan, &devices, 6)?;
/// assert_eq!(chaos.script.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// Creates an empty plan; `seed` fixes every randomized choice made
    /// during compilation.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends one declarative fault.
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The declared faults, in insertion order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Compiles the plan against a concrete deployment into the scheduler's
    /// injection channels. Compilation is total validation: every fault must
    /// name a device of the deployment (frame faults additionally one that
    /// hosts at least one sub-model) and rounds inside `0..total_rounds`, so
    /// a drill can never silently inject nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::InvalidPlan`] when any fault contradicts the
    /// deployment.
    pub fn compile(
        &self,
        plan: &SplitPlan,
        devices: &[DeviceSpec],
        total_rounds: u64,
    ) -> Result<CompiledChaos> {
        if total_rounds == 0 {
            return Err(ChaosError::InvalidPlan {
                message: "the stream has zero rounds; nothing to inject into".to_string(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut compiled = CompiledChaos::default();
        for fault in &self.faults {
            match *fault {
                FaultKind::CorruptFrame { device, round } => {
                    let slot =
                        self.data_slot(plan, devices, device, round, total_rounds, &mut rng)?;
                    compiled.script.push(
                        device,
                        round,
                        slot,
                        FrameFault::CorruptBit {
                            bit: rng.gen::<u32>(),
                        },
                    );
                }
                FaultKind::PersistentCorruption { device, round } => {
                    let slot =
                        self.data_slot(plan, devices, device, round, total_rounds, &mut rng)?;
                    for _ in 0..PERSISTENT_ATTEMPTS {
                        compiled.script.push(
                            device,
                            round,
                            slot,
                            FrameFault::CorruptBit {
                                bit: rng.gen::<u32>(),
                            },
                        );
                    }
                }
                FaultKind::TruncateFrame { device, round } => {
                    let slot =
                        self.data_slot(plan, devices, device, round, total_rounds, &mut rng)?;
                    compiled.script.push(
                        device,
                        round,
                        slot,
                        FrameFault::Truncate {
                            keep: rng.gen::<u32>(),
                        },
                    );
                }
                FaultKind::DropDataFrame { device, round } => {
                    let slot =
                        self.data_slot(plan, devices, device, round, total_rounds, &mut rng)?;
                    compiled.script.push(device, round, slot, FrameFault::Drop);
                }
                FaultKind::DuplicateFrame { device, round } => {
                    let slot =
                        self.data_slot(plan, devices, device, round, total_rounds, &mut rng)?;
                    compiled
                        .script
                        .push(device, round, slot, FrameFault::Duplicate);
                }
                FaultKind::DropHeartbeat { device, round } => {
                    self.check_frame_target(plan, devices, device, round, total_rounds)?;
                    compiled
                        .script
                        .push(device, round, FrameSlot::Heartbeat, FrameFault::Drop);
                }
                FaultKind::ReplayHeartbeat { device, round } => {
                    self.check_frame_target(plan, devices, device, round, total_rounds)?;
                    compiled.script.push(
                        device,
                        round,
                        FrameSlot::Heartbeat,
                        FrameFault::Duplicate,
                    );
                }
                FaultKind::Crash { device, at_round } => {
                    self.check_device(devices, device)?;
                    self.check_round(at_round, total_rounds, "crash")?;
                    compiled.failures.push(FailureInjection {
                        device_id: device,
                        at_round,
                    });
                }
                FaultKind::CrashThenRejoin {
                    device,
                    at_round,
                    rejoin_after,
                } => {
                    let spec = self.check_device(devices, device)?;
                    self.check_round(at_round, total_rounds, "crash")?;
                    if rejoin_after == 0 {
                        return Err(ChaosError::InvalidPlan {
                            message: format!(
                                "device {device} cannot rejoin in the same round it crashes"
                            ),
                        });
                    }
                    let rejoin_round = at_round.saturating_add(rejoin_after);
                    self.check_round(rejoin_round, total_rounds, "rejoin")?;
                    compiled.failures.push(FailureInjection {
                        device_id: device,
                        at_round,
                    });
                    compiled.joins.push(JoinInjection {
                        device: spec.clone(),
                        at_round: rejoin_round,
                    });
                }
                FaultKind::FlakyLink {
                    device,
                    corrupt_per_mille,
                } => {
                    if corrupt_per_mille > 1000 {
                        return Err(ChaosError::InvalidPlan {
                            message: format!(
                                "flaky link on device {device}: {corrupt_per_mille}‰ is not a \
                                 probability (0..=1000)"
                            ),
                        });
                    }
                    let hosted = self.hosted_count(plan, devices, device)?;
                    for round in 0..total_rounds {
                        if rng.gen_range(0..1000u32) < corrupt_per_mille {
                            let slot = FrameSlot::Data(rng.gen_range(0..hosted as u32));
                            compiled.script.push(
                                device,
                                round,
                                slot,
                                FrameFault::CorruptBit {
                                    bit: rng.gen::<u32>(),
                                },
                            );
                        }
                    }
                }
            }
        }
        Ok(compiled)
    }

    fn check_device<'a>(&self, devices: &'a [DeviceSpec], device: usize) -> Result<&'a DeviceSpec> {
        devices
            .iter()
            .find(|d| d.id == device)
            .ok_or_else(|| ChaosError::InvalidPlan {
                message: format!("device {device} is not part of the deployment"),
            })
    }

    fn check_round(&self, round: u64, total_rounds: u64, what: &str) -> Result<()> {
        if round >= total_rounds {
            return Err(ChaosError::InvalidPlan {
                message: format!(
                    "{what} at round {round} lies past the stream's {total_rounds} round(s)"
                ),
            });
        }
        Ok(())
    }

    fn hosted_count(
        &self,
        plan: &SplitPlan,
        devices: &[DeviceSpec],
        device: usize,
    ) -> Result<usize> {
        self.check_device(devices, device)?;
        let hosted = plan.assignment.sub_models_on(device).len();
        if hosted == 0 {
            return Err(ChaosError::InvalidPlan {
                message: format!("device {device} hosts no sub-models; it ships no data frames"),
            });
        }
        Ok(hosted)
    }

    fn check_frame_target(
        &self,
        plan: &SplitPlan,
        devices: &[DeviceSpec],
        device: usize,
        round: u64,
        total_rounds: u64,
    ) -> Result<()> {
        self.hosted_count(plan, devices, device)?;
        self.check_round(round, total_rounds, "frame fault")
    }

    /// Picks (seeded) which of the device's data frames the fault lands on.
    fn data_slot(
        &self,
        plan: &SplitPlan,
        devices: &[DeviceSpec],
        device: usize,
        round: u64,
        total_rounds: u64,
        rng: &mut ChaCha8Rng,
    ) -> Result<FrameSlot> {
        let hosted = self.hosted_count(plan, devices, device)?;
        self.check_round(round, total_rounds, "frame fault")?;
        Ok(FrameSlot::Data(rng.gen_range(0..hosted as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_partition::{PlannerConfig, SplitPlanner};
    use edvit_vit::ViTConfig;

    fn deployment() -> (SplitPlan, Vec<DeviceSpec>) {
        let devices = DeviceSpec::raspberry_pi_cluster(3);
        let plan = SplitPlanner::new(PlannerConfig::default())
            .plan(&ViTConfig::vit_base(10), &devices, 0)
            .unwrap();
        (plan, devices)
    }

    #[test]
    fn compilation_is_deterministic_per_seed_and_differs_across_seeds() {
        let (plan, devices) = deployment();
        let declared = |seed| {
            FaultPlan::new(seed)
                .with(FaultKind::CorruptFrame {
                    device: 0,
                    round: 1,
                })
                .with(FaultKind::FlakyLink {
                    device: 1,
                    corrupt_per_mille: 400,
                })
        };
        let a = declared(3).compile(&plan, &devices, 8).unwrap();
        let b = declared(3).compile(&plan, &devices, 8).unwrap();
        let c = declared(4).compile(&plan, &devices, 8).unwrap();
        assert_eq!(a.script, b.script);
        // Different seed, different slots/bits/flaky rounds (the flaky link
        // makes a collision across seeds astronomically unlikely).
        assert_ne!(a.script, c.script);
    }

    #[test]
    fn crash_then_rejoin_compiles_into_failure_plus_join() {
        let (plan, devices) = deployment();
        let chaos = FaultPlan::new(0)
            .with(FaultKind::CrashThenRejoin {
                device: 2,
                at_round: 3,
                rejoin_after: 2,
            })
            .compile(&plan, &devices, 8)
            .unwrap();
        assert!(chaos.script.is_empty());
        assert_eq!(
            chaos.failures,
            vec![FailureInjection {
                device_id: 2,
                at_round: 3
            }]
        );
        assert_eq!(chaos.joins.len(), 1);
        assert_eq!(chaos.joins[0].device.id, 2);
        assert_eq!(chaos.joins[0].at_round, 5);
    }

    #[test]
    fn invalid_plans_fail_compilation_loudly() {
        let (plan, devices) = deployment();
        // Unknown device.
        let err = FaultPlan::new(0)
            .with(FaultKind::CorruptFrame {
                device: 9,
                round: 0,
            })
            .compile(&plan, &devices, 4)
            .unwrap_err();
        assert!(matches!(err, ChaosError::InvalidPlan { .. }));
        assert!(err.to_string().contains("device 9"));
        // Round past the stream.
        assert!(matches!(
            FaultPlan::new(0)
                .with(FaultKind::Crash {
                    device: 0,
                    at_round: 4
                })
                .compile(&plan, &devices, 4),
            Err(ChaosError::InvalidPlan { .. })
        ));
        // Rejoin past the stream.
        assert!(matches!(
            FaultPlan::new(0)
                .with(FaultKind::CrashThenRejoin {
                    device: 0,
                    at_round: 2,
                    rejoin_after: 9,
                })
                .compile(&plan, &devices, 4),
            Err(ChaosError::InvalidPlan { .. })
        ));
        // Rejoin in the crash round.
        assert!(matches!(
            FaultPlan::new(0)
                .with(FaultKind::CrashThenRejoin {
                    device: 0,
                    at_round: 2,
                    rejoin_after: 0,
                })
                .compile(&plan, &devices, 8),
            Err(ChaosError::InvalidPlan { .. })
        ));
        // Probability over 1000 per mille.
        assert!(matches!(
            FaultPlan::new(0)
                .with(FaultKind::FlakyLink {
                    device: 0,
                    corrupt_per_mille: 1001,
                })
                .compile(&plan, &devices, 4),
            Err(ChaosError::InvalidPlan { .. })
        ));
        // Zero-round stream.
        assert!(matches!(
            FaultPlan::new(0).compile(&plan, &devices, 0),
            Err(ChaosError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn flaky_link_respects_the_per_mille_dial() {
        let (plan, devices) = deployment();
        let never = FaultPlan::new(1)
            .with(FaultKind::FlakyLink {
                device: 0,
                corrupt_per_mille: 0,
            })
            .compile(&plan, &devices, 64)
            .unwrap();
        assert!(never.script.is_empty());
        let always = FaultPlan::new(1)
            .with(FaultKind::FlakyLink {
                device: 0,
                corrupt_per_mille: 1000,
            })
            .compile(&plan, &devices, 64)
            .unwrap();
        assert_eq!(always.script.len(), 64);
    }

    #[test]
    fn apply_installs_all_three_channels_on_a_stream_config() {
        let (plan, devices) = deployment();
        let chaos = FaultPlan::new(5)
            .with(FaultKind::DuplicateFrame {
                device: 1,
                round: 0,
            })
            .with(FaultKind::CrashThenRejoin {
                device: 0,
                at_round: 1,
                rejoin_after: 1,
            })
            .compile(&plan, &devices, 4)
            .unwrap();
        let config = chaos.apply(StreamConfig::default());
        assert_eq!(config.faults.len(), 1);
        assert_eq!(config.failures.len(), 1);
        assert_eq!(config.joins.len(), 1);
    }
}
