//! Deterministic fault-injection plans for the ED-ViT streaming scheduler.
//!
//! `edvit-chaos` is the *policy* half of fault injection. The scheduler
//! (`edvit-sched`) exposes three purely mechanical injection channels — a
//! [`FaultScript`](edvit_sched::FaultScript) of per-frame wire mutations,
//! scripted crashes, and scripted joins — and stays entirely free of RNG
//! state. This crate layers a declarative vocabulary on top: a [`FaultPlan`]
//! names *what* goes wrong (a corrupted frame, a lost heartbeat, a crash that
//! rejoins, a flaky link) and a single seed fixes every remaining choice
//! through a ChaCha8 stream.
//!
//! The result: one `(plan, seed, deployment)` triple always compiles to the
//! bit-identical [`CompiledChaos`], and — because the scheduler runs on
//! virtual [`SimClock`](edvit_sched::SimClock) time — an entire chaos drill
//! replays machine-independently. A drill that found a bug is a regression
//! test, not an anecdote.
//!
//! Compilation validates the plan against the concrete deployment (devices
//! exist, frame faults target devices that actually ship data frames, rounds
//! lie inside the stream), so a plan can never silently inject nothing.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod plan;

pub use error::ChaosError;
pub use plan::{CompiledChaos, FaultKind, FaultPlan};

/// Convenience alias for chaos results.
pub type Result<T> = std::result::Result<T, ChaosError>;
