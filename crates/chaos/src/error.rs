use std::fmt;

/// Errors a chaos plan can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosError {
    /// The declarative plan does not fit the deployment it was compiled
    /// against: unknown device, device hosting nothing, out-of-range round,
    /// impossible probability, and similar contradictions. A plan that
    /// cannot inject what it promises must fail loudly at compile time, not
    /// silently no-op at run time.
    InvalidPlan {
        /// Human-readable description of the contradiction.
        message: String,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::InvalidPlan { message } => {
                write!(f, "invalid chaos plan: {message}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_contradiction() {
        let err = ChaosError::InvalidPlan {
            message: "device 9 is not part of the deployment".to_string(),
        };
        assert_eq!(
            err.to_string(),
            "invalid chaos plan: device 9 is not part of the deployment"
        );
        assert!(matches!(err, ChaosError::InvalidPlan { .. }));
    }
}
