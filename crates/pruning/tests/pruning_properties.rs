//! Property-based tests of structured-pruning invariants: pruned models are
//! never larger than their parents, keep the requested widths, and still
//! produce finite outputs.

use edvit_datasets::{DatasetKind, SyntheticConfig, SyntheticGenerator};
use edvit_pruning::{ImportanceMethod, PrunerConfig, StructuredPruner};
use edvit_tensor::init::TensorRng;
use edvit_vit::{PrunedViTConfig, ViTConfig, VisionTransformer};
use proptest::prelude::*;

fn tiny_model_and_data(seed: u64) -> (VisionTransformer, edvit_datasets::Dataset, ViTConfig) {
    let mut config = ViTConfig::tiny_test();
    config.num_classes = 4;
    let model = VisionTransformer::new(&config, &mut TensorRng::new(seed)).unwrap();
    let mut dcfg = SyntheticConfig::tiny(DatasetKind::Cifar10Like);
    dcfg.class_limit = Some(4);
    dcfg.samples_per_class = 4;
    let dataset = SyntheticGenerator::new(seed).generate(&dcfg).unwrap();
    (model, dataset, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pruned_sub_models_shrink_monotonically(seed in 0u64..50, classes_pick in 0usize..4) {
        let (model, dataset, config) = tiny_model_and_data(seed);
        let pruner = StructuredPruner::new(PrunerConfig {
            method: ImportanceMethod::Magnitude,
            other_fraction: 0.0,
            retrain: None,
            seed,
        });
        let classes = vec![classes_pick];
        let mut previous = usize::MAX;
        for hp in 1..config.heads {
            let plan = PrunedViTConfig::new(config.clone(), hp).unwrap();
            let sub = pruner.prune_sub_model(&model, &dataset, &classes, &plan).unwrap();
            let params = sub.model.parameter_count();
            prop_assert!(params < previous, "hp={hp}: {params} !< {previous}");
            prop_assert!(params < model.parameter_count());
            // Structural widths follow the plan.
            prop_assert_eq!(sub.model.embed_dim(), plan.embed_dim());
            prop_assert_eq!(sub.model.blocks()[0].attn().head_dim(), plan.head_dim());
            prop_assert_eq!(sub.model.blocks()[0].ffn_hidden(), plan.ffn_hidden());
            previous = params;
        }
    }

    #[test]
    fn pruned_models_produce_finite_logits(seed in 0u64..50, hp in 1usize..4) {
        let (model, dataset, config) = tiny_model_and_data(seed);
        let pruner = StructuredPruner::new(PrunerConfig {
            method: ImportanceMethod::Magnitude,
            other_fraction: 0.25,
            retrain: None,
            seed,
        });
        let plan = PrunedViTConfig::new(config, hp).unwrap();
        let sub = pruner.prune_sub_model(&model, &dataset, &[0, 2], &plan).unwrap();
        let mut pruned = sub.model;
        let mut rng = TensorRng::new(seed + 1);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        let logits = pruned.forward_images(&x).unwrap();
        prop_assert!(logits.all_finite());
        prop_assert_eq!(logits.dims()[1], sub.mapping.num_local_labels());
    }

    #[test]
    fn mapping_round_trips_between_local_and_global(seed in 0u64..100) {
        let (model, dataset, config) = tiny_model_and_data(seed);
        let pruner = StructuredPruner::new(PrunerConfig {
            method: ImportanceMethod::Magnitude,
            other_fraction: 0.5,
            retrain: None,
            seed,
        });
        let classes = vec![3, 1];
        let plan = PrunedViTConfig::new(config, 2).unwrap();
        let sub = pruner.prune_sub_model(&model, &dataset, &classes, &plan).unwrap();
        for (local, &global) in classes.iter().enumerate() {
            prop_assert_eq!(sub.mapping.local_label(global), Some(local));
            prop_assert_eq!(sub.mapping.global_class(local), Some(global));
        }
        // Classes outside the subset map to the "other" bucket.
        prop_assert_eq!(sub.mapping.local_label(0), sub.mapping.other_label);
    }
}
