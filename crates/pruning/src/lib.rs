//! # edvit-pruning
//!
//! Class-wise structured pruning of Vision Transformers (Algorithm 2 and
//! Fig. 2 of the ED-ViT paper).
//!
//! A sub-model responsible for a class subset `C_i` is produced from the
//! trained original model in three stages, each keeping the most important
//! fraction `s = (h − hp) / h` of a prunable component group:
//!
//! 1. **residual channels** (the embedding width `d` shared by the patch
//!    embedding, every block and the head),
//! 2. **per-head query/key/value dimensions** inside the MHSA modules,
//! 3. **FFN hidden units**.
//!
//! Importance is measured per component by the KL divergence between the
//! original model's output distribution and the distribution after removing
//! the component (on a calibration batch drawn from `C_i`), exactly as the
//! paper prescribes; a cheaper weight-magnitude criterion is available for
//! large sweeps. After pruning the sub-model is re-trained on its resampled
//! class subset.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod importance;
mod pruner;

pub use error::PruningError;
pub use importance::{channel_importance, ffn_importance, head_dim_importance, ImportanceMethod};
pub use pruner::{PrunedSubModel, PrunerConfig, StructuredPruner};

/// Convenience result alias for pruning operations.
pub type Result<T> = std::result::Result<T, PruningError>;
