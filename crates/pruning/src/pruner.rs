//! The three-stage structured pruner (Algorithm 2) and per-sub-model
//! retraining.

use edvit_datasets::{ClassSubsetMapping, Dataset};
use edvit_tensor::init::TensorRng;
use edvit_vit::{
    training::{train_classifier, TrainConfig, TrainReport},
    PrunedViTConfig, VisionTransformer,
};

use crate::{
    channel_importance, ffn_importance, head_dim_importance, importance::top_k_indices,
    ImportanceMethod, PruningError, Result,
};

/// Configuration of the structured pruner.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunerConfig {
    /// Importance criterion shared by all three stages.
    pub method: ImportanceMethod,
    /// Fraction of out-of-subset ("other") samples added to the sub-model's
    /// training set so it learns to reject inputs it is not responsible for.
    pub other_fraction: f32,
    /// Fine-tuning configuration applied after the three pruning stages
    /// (`None` skips retraining — the "(w/o) retrain" ablation row).
    pub retrain: Option<TrainConfig>,
    /// Seed for class resampling and head re-initialization.
    pub seed: u64,
}

impl Default for PrunerConfig {
    fn default() -> Self {
        PrunerConfig {
            method: ImportanceMethod::Magnitude,
            other_fraction: 0.3,
            retrain: Some(TrainConfig {
                epochs: 4,
                batch_size: 16,
                learning_rate: 1e-3,
                lr_decay: 0.9,
                seed: 0,
            }),
            seed: 0,
        }
    }
}

/// A pruned, class-specific sub-model ready for deployment on an edge device.
#[derive(Debug, Clone)]
pub struct PrunedSubModel {
    /// The weight-sliced (and optionally fine-tuned) model. Its head has
    /// `|C_i| + 1` outputs: the subset classes plus an "other" bucket.
    pub model: VisionTransformer,
    /// Mapping between the sub-model's local labels and global classes.
    pub mapping: ClassSubsetMapping,
    /// The structural pruning plan this model realizes.
    pub plan: PrunedViTConfig,
    /// Training report of the fine-tuning phase (empty when retraining was
    /// disabled).
    pub retrain_report: Option<TrainReport>,
}

impl PrunedSubModel {
    /// Measured parameter memory of the sub-model in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.model.memory_bytes()
    }

    /// Global classes this sub-model is responsible for.
    pub fn classes(&self) -> &[usize] {
        &self.mapping.subset
    }
}

/// Algorithm 2: `prune(Model₀, X, y, C_i, hp_i)` followed by retraining.
#[derive(Debug, Clone)]
pub struct StructuredPruner {
    config: PrunerConfig,
}

impl StructuredPruner {
    /// Creates a pruner with the given configuration.
    pub fn new(config: PrunerConfig) -> Self {
        StructuredPruner { config }
    }

    /// The pruner configuration.
    pub fn config(&self) -> &PrunerConfig {
        &self.config
    }

    /// Produces the class-specific sub-model for `classes`, pruned according
    /// to `plan` (which fixes the retention factor `s`), from the trained
    /// `original` model and the full training `dataset`.
    ///
    /// # Errors
    ///
    /// Returns an error when the class subset is empty or inconsistent with
    /// the dataset, or when any pruning stage fails.
    pub fn prune_sub_model(
        &self,
        original: &VisionTransformer,
        dataset: &Dataset,
        classes: &[usize],
        plan: &PrunedViTConfig,
    ) -> Result<PrunedSubModel> {
        if classes.is_empty() {
            return Err(PruningError::InvalidRequest {
                message: "a sub-model needs at least one class".to_string(),
            });
        }
        // Resample the training data for this class subset (Algorithm 2, line 1).
        let (sub_dataset, mapping) = dataset.resample_for_classes(
            classes,
            self.config.other_fraction,
            self.config.seed ^ classes.iter().sum::<usize>() as u64,
        )?;

        // Stage 1: residual channels (PruneShortConnection).
        let keep_channels = {
            let scores = channel_importance(original, &sub_dataset, &self.config.method)?;
            let target = plan.embed_dim().min(original.embed_dim()).max(1);
            top_k_indices(&scores, target)
        };
        let stage1 = original.prune_embed_channels(&keep_channels)?;

        // Stage 2: MHSA per-head dimensions (PruneMHSA).
        let stage2 = {
            let scores = head_dim_importance(&stage1, &sub_dataset, &self.config.method)?;
            let current_head_dim = scores.first().map_or(0, std::vec::Vec::len);
            let target = plan.head_dim().min(current_head_dim).max(1);
            let keep_per_head: Vec<Vec<usize>> = scores
                .iter()
                .map(|per_head| top_k_indices(per_head, target))
                .collect();
            stage1.prune_head_dims(&keep_per_head)?
        };

        // Stage 3: FFN hidden units (PruneFFN).
        let stage3 = {
            let scores = ffn_importance(&stage2, &sub_dataset, &self.config.method)?;
            let target = plan.ffn_hidden().min(scores.len()).max(1);
            let keep = top_k_indices(&scores, target);
            stage2.prune_ffn_hidden(&keep)?
        };

        // Replace the head with one covering the subset (+ "other") and
        // fine-tune on the resampled data (Algorithm 2, line 5).
        let mut model = stage3;
        let mut rng = TensorRng::new(self.config.seed.wrapping_add(0x5EED));
        model.replace_head(mapping.num_local_labels(), &mut rng);
        let retrain_report = match &self.config.retrain {
            Some(train_config) => Some(train_classifier(
                &mut model,
                sub_dataset.images(),
                sub_dataset.labels(),
                train_config,
            )?),
            None => None,
        };

        Ok(PrunedSubModel {
            model,
            mapping,
            plan: plan.clone(),
            retrain_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_datasets::{DatasetKind, SyntheticConfig, SyntheticGenerator};
    use edvit_vit::{ViTConfig, ViTError};

    fn setup() -> (VisionTransformer, Dataset, ViTConfig) {
        let mut config = ViTConfig::tiny_test();
        config.num_classes = 4;
        let model = VisionTransformer::new(&config, &mut TensorRng::new(0)).unwrap();
        let mut dcfg = SyntheticConfig::tiny(DatasetKind::Cifar10Like);
        dcfg.class_limit = Some(4);
        dcfg.samples_per_class = 6;
        let dataset = SyntheticGenerator::new(1).generate(&dcfg).unwrap();
        (model, dataset, config)
    }

    fn fast_pruner(retrain: bool) -> StructuredPruner {
        StructuredPruner::new(PrunerConfig {
            method: ImportanceMethod::Magnitude,
            other_fraction: 0.25,
            retrain: retrain.then_some(TrainConfig {
                epochs: 2,
                batch_size: 8,
                learning_rate: 2e-3,
                lr_decay: 0.9,
                seed: 1,
            }),
            seed: 2,
        })
    }

    #[test]
    fn pruned_sub_model_is_smaller_and_runs() {
        let (model, dataset, config) = setup();
        let plan = PrunedViTConfig::new(config, 2).unwrap(); // keep half the width
        let pruner = fast_pruner(true);
        let sub = pruner
            .prune_sub_model(&model, &dataset, &[0, 1], &plan)
            .unwrap();
        assert!(sub.memory_bytes() < model.memory_bytes());
        assert_eq!(sub.classes(), &[0, 1]);
        assert_eq!(sub.model.embed_dim(), plan.embed_dim());
        assert_eq!(sub.model.num_classes(), 3); // two classes + "other"
        assert!(sub.retrain_report.is_some());
        // The pruned model still produces finite logits.
        let mut m = sub.model;
        let mut rng = TensorRng::new(5);
        let x = rng.randn(&[2, 3, 16, 16], 0.0, 1.0);
        let logits = m.forward_images(&x).unwrap();
        assert!(logits.all_finite());
        assert_eq!(logits.dims(), &[2, 3]);
    }

    #[test]
    fn retraining_can_be_disabled() {
        let (model, dataset, config) = setup();
        let plan = PrunedViTConfig::new(config, 1).unwrap();
        let pruner = fast_pruner(false);
        let sub = pruner
            .prune_sub_model(&model, &dataset, &[2], &plan)
            .unwrap();
        assert!(sub.retrain_report.is_none());
        assert_eq!(sub.mapping.other_label, Some(1));
        assert!(pruner.config().retrain.is_none());
    }

    #[test]
    fn kl_method_also_works_end_to_end() {
        let (model, dataset, config) = setup();
        let plan = PrunedViTConfig::new(config, 2).unwrap();
        let pruner = StructuredPruner::new(PrunerConfig {
            method: ImportanceMethod::KlDivergence {
                calibration_samples: 3,
            },
            other_fraction: 0.0,
            retrain: None,
            seed: 3,
        });
        let sub = pruner
            .prune_sub_model(&model, &dataset, &[0, 3], &plan)
            .unwrap();
        assert_eq!(sub.model.embed_dim(), plan.embed_dim());
        // No "other" bucket requested -> head covers just the subset.
        assert_eq!(sub.model.num_classes(), 2);
        assert_eq!(sub.mapping.other_label, None);
    }

    #[test]
    fn deeper_pruning_gives_smaller_models() {
        let (model, dataset, config) = setup();
        let pruner = fast_pruner(false);
        let light = pruner
            .prune_sub_model(
                &model,
                &dataset,
                &[0, 1],
                &PrunedViTConfig::new(config.clone(), 1).unwrap(),
            )
            .unwrap();
        let heavy = pruner
            .prune_sub_model(
                &model,
                &dataset,
                &[0, 1],
                &PrunedViTConfig::new(config, 3).unwrap(),
            )
            .unwrap();
        assert!(heavy.memory_bytes() < light.memory_bytes());
        assert_eq!(heavy.plan.pruned_heads(), 3);
    }

    #[test]
    fn empty_class_subset_is_rejected() {
        let (model, dataset, config) = setup();
        let plan = PrunedViTConfig::new(config, 1).unwrap();
        let err = fast_pruner(false)
            .prune_sub_model(&model, &dataset, &[], &plan)
            .unwrap_err();
        assert!(matches!(err, PruningError::InvalidRequest { .. }));
    }

    #[test]
    fn out_of_range_class_is_rejected() {
        let (model, dataset, config) = setup();
        let plan = PrunedViTConfig::new(config, 1).unwrap();
        let err = fast_pruner(false)
            .prune_sub_model(&model, &dataset, &[99], &plan)
            .unwrap_err();
        assert!(matches!(err, PruningError::Dataset(_)));
    }

    #[test]
    fn plan_mismatch_is_clamped_not_panicking() {
        // A plan built from a *different* (larger) base config must not panic;
        // targets are clamped to what the model actually has.
        let (model, dataset, _config) = setup();
        let big_base = ViTConfig::vit_small(4);
        let plan = PrunedViTConfig::new(big_base, 3).unwrap();
        let result = fast_pruner(false).prune_sub_model(&model, &dataset, &[0], &plan);
        match result {
            Ok(sub) => assert!(sub.model.embed_dim() <= 32),
            Err(PruningError::Vit(ViTError::InvalidPruning { .. })) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
