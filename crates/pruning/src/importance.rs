//! Importance scoring of prunable components.
//!
//! The paper scores a component group by the Kullback–Leibler divergence
//! between the original model's output distribution `P` and the distribution
//! `Q` of the model with the component removed, on a calibration batch —
//! components whose removal bends the output distribution the least are
//! pruned first. A weight-magnitude criterion is provided as a cheap
//! alternative for large sweeps; both produce "higher = more important"
//! scores so the selection logic is shared.

use edvit_datasets::Dataset;
use edvit_tensor::{stats, Tensor};
use edvit_vit::VisionTransformer;

use crate::{PruningError, Result};

/// How component importance is measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImportanceMethod {
    /// The paper's criterion: KL divergence on a calibration batch of at most
    /// this many samples.
    KlDivergence {
        /// Maximum number of calibration samples drawn from the dataset.
        calibration_samples: usize,
    },
    /// L1 weight magnitude of the component — orders of magnitude faster and
    /// a common proxy; used by the large parameter sweeps.
    Magnitude,
}

impl Default for ImportanceMethod {
    fn default() -> Self {
        ImportanceMethod::KlDivergence {
            calibration_samples: 16,
        }
    }
}

fn calibration_images(dataset: &Dataset, limit: usize) -> Result<Tensor> {
    if dataset.is_empty() {
        return Err(PruningError::InvalidRequest {
            message: "calibration dataset is empty".to_string(),
        });
    }
    let take = limit.clamp(1, dataset.len());
    let indices: Vec<usize> = (0..take).collect();
    Ok(dataset.images().gather_rows(&indices)?)
}

fn output_distribution(model: &mut VisionTransformer, images: &Tensor) -> Result<Tensor> {
    let logits = model.forward_images(images)?;
    Ok(logits.softmax_last_axis()?)
}

/// Makes a functionally-identical copy of a model via an identity channel
/// selection (the model type is deliberately not `Clone`).
fn clone_model(model: &VisionTransformer) -> Result<VisionTransformer> {
    let keep: Vec<usize> = (0..model.embed_dim()).collect();
    Ok(model.prune_embed_channels(&keep)?)
}

/// Importance of each residual (embedding) channel; higher is more important.
///
/// # Errors
///
/// Returns an error when the calibration dataset is empty or the model cannot
/// be evaluated.
pub fn channel_importance(
    model: &VisionTransformer,
    calibration: &Dataset,
    method: &ImportanceMethod,
) -> Result<Vec<f32>> {
    let d = model.embed_dim();
    match method {
        ImportanceMethod::Magnitude => {
            let mut scores = vec![0.0f32; d];
            // Patch-embedding projection columns.
            let proj = model.patch_embed().projection().weight().value();
            let cols = proj.dims()[1];
            for row in proj.data().chunks(cols) {
                for (score, v) in scores.iter_mut().zip(row) {
                    *score += v.abs();
                }
            }
            // LayerNorm scale magnitudes accumulate channel relevance.
            for block in model.blocks() {
                for (i, score) in scores.iter_mut().enumerate() {
                    *score += block.ln1().gamma().value().data()[i].abs()
                        + block.ln2().gamma().value().data()[i].abs();
                }
            }
            for (i, score) in scores.iter_mut().enumerate() {
                *score += model.final_ln().gamma().value().data()[i].abs();
            }
            Ok(scores)
        }
        ImportanceMethod::KlDivergence {
            calibration_samples,
        } => {
            let images = calibration_images(calibration, *calibration_samples)?;
            let mut reference_model = clone_model(model)?;
            let reference = output_distribution(&mut reference_model, &images)?;
            let mut scores = vec![0.0f32; d];
            for (channel, score) in scores.iter_mut().enumerate() {
                let keep: Vec<usize> = (0..d).filter(|&c| c != channel).collect();
                let mut ablated = model.prune_embed_channels(&keep)?;
                let probs = output_distribution(&mut ablated, &images)?;
                *score = stats::batch_kl_divergence(&reference, &probs)?;
            }
            Ok(scores)
        }
    }
}

/// Importance of every per-head inner dimension, indexed `[head][dim]`;
/// higher is more important.
///
/// For the KL criterion a dimension is ablated simultaneously in every head
/// (the pruned model keeps heads rectangular, as the paper's uniform `s × h`
/// reduction does), so all heads share the same score vector.
///
/// # Errors
///
/// Returns an error when the calibration dataset is empty or the model cannot
/// be evaluated.
pub fn head_dim_importance(
    model: &VisionTransformer,
    calibration: &Dataset,
    method: &ImportanceMethod,
) -> Result<Vec<Vec<f32>>> {
    let first_block = model
        .blocks()
        .first()
        .ok_or_else(|| PruningError::InvalidRequest {
            message: "model has no blocks".to_string(),
        })?;
    let heads = first_block.attn().heads();
    let head_dim = first_block.attn().head_dim();
    match method {
        ImportanceMethod::Magnitude => {
            let mut scores = vec![vec![0.0f32; head_dim]; heads];
            for block in model.blocks() {
                let attn = block.attn();
                let inner = heads * head_dim;
                for (proj, transposed) in [
                    (attn.q_proj(), false),
                    (attn.k_proj(), false),
                    (attn.v_proj(), false),
                    (attn.out_proj(), true),
                ] {
                    let w = proj.weight().value();
                    let (rows, cols) = (w.dims()[0], w.dims()[1]);
                    for r in 0..rows {
                        for c in 0..cols {
                            let inner_index = if transposed { r } else { c };
                            debug_assert!(inner_index < inner);
                            let h = inner_index / head_dim;
                            let dim = inner_index % head_dim;
                            scores[h][dim] += w.data()[r * cols + c].abs();
                        }
                    }
                }
            }
            Ok(scores)
        }
        ImportanceMethod::KlDivergence {
            calibration_samples,
        } => {
            let images = calibration_images(calibration, *calibration_samples)?;
            let mut reference_model = clone_model(model)?;
            let reference = output_distribution(&mut reference_model, &images)?;
            let mut shared = vec![0.0f32; head_dim];
            for (dim, score) in shared.iter_mut().enumerate() {
                let keep_per_head: Vec<Vec<usize>> = (0..heads)
                    .map(|_| (0..head_dim).filter(|&i| i != dim).collect())
                    .collect();
                if keep_per_head[0].is_empty() {
                    // A single-dimension head cannot be ablated; give it the
                    // maximum importance instead.
                    *score = f32::INFINITY;
                    continue;
                }
                let mut ablated = model.prune_head_dims(&keep_per_head)?;
                let probs = output_distribution(&mut ablated, &images)?;
                *score = stats::batch_kl_divergence(&reference, &probs)?;
            }
            Ok(vec![shared; heads])
        }
    }
}

/// Importance of every FFN hidden unit; higher is more important.
///
/// # Errors
///
/// Returns an error when the calibration dataset is empty or the model cannot
/// be evaluated.
pub fn ffn_importance(
    model: &VisionTransformer,
    calibration: &Dataset,
    method: &ImportanceMethod,
) -> Result<Vec<f32>> {
    let first_block = model
        .blocks()
        .first()
        .ok_or_else(|| PruningError::InvalidRequest {
            message: "model has no blocks".to_string(),
        })?;
    let hidden = first_block.ffn_hidden();
    match method {
        ImportanceMethod::Magnitude => {
            let mut scores = vec![0.0f32; hidden];
            for block in model.blocks() {
                let fc1 = block.ffn().linears()[0].weight().value();
                let fc2 = block.ffn().linears()[1].weight().value();
                let c1 = fc1.dims()[1];
                for row in fc1.data().chunks(c1) {
                    for (score, v) in scores.iter_mut().zip(row) {
                        *score += v.abs();
                    }
                }
                let c2 = fc2.dims()[1];
                for (score, row) in scores.iter_mut().zip(fc2.data().chunks(c2)) {
                    *score += row.iter().map(|v| v.abs()).sum::<f32>();
                }
            }
            Ok(scores)
        }
        ImportanceMethod::KlDivergence {
            calibration_samples,
        } => {
            let images = calibration_images(calibration, *calibration_samples)?;
            let mut reference_model = clone_model(model)?;
            let reference = output_distribution(&mut reference_model, &images)?;
            let mut scores = vec![0.0f32; hidden];
            for (unit, score) in scores.iter_mut().enumerate() {
                let keep: Vec<usize> = (0..hidden).filter(|&u| u != unit).collect();
                let mut ablated = model.prune_ffn_hidden(&keep)?;
                let probs = output_distribution(&mut ablated, &images)?;
                *score = stats::batch_kl_divergence(&reference, &probs)?;
            }
            Ok(scores)
        }
    }
}

/// Selects the indices of the `keep` highest-scoring components, returned in
/// ascending index order (so weight slicing preserves the original ordering).
pub(crate) fn top_k_indices(scores: &[f32], keep: usize) -> Vec<usize> {
    let mut indexed: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut kept: Vec<usize> = indexed.into_iter().take(keep).map(|(i, _)| i).collect();
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_datasets::{DatasetKind, SyntheticConfig, SyntheticGenerator};
    use edvit_nn::Layer;
    use edvit_tensor::init::TensorRng;
    use edvit_vit::ViTConfig;

    fn tiny_setup() -> (VisionTransformer, Dataset) {
        let mut config = ViTConfig::tiny_test();
        config.num_classes = 4;
        let model = VisionTransformer::new(&config, &mut TensorRng::new(0)).unwrap();
        let mut dcfg = SyntheticConfig::tiny(DatasetKind::Cifar10Like);
        dcfg.class_limit = Some(4);
        dcfg.samples_per_class = 3;
        let dataset = SyntheticGenerator::new(1).generate(&dcfg).unwrap();
        (model, dataset)
    }

    #[test]
    fn top_k_indices_orders_and_sorts() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 4), vec![0, 1, 2, 3]);
        assert_eq!(top_k_indices(&scores, 0), Vec::<usize>::new());
    }

    #[test]
    fn magnitude_scores_have_right_shapes() {
        let (model, dataset) = tiny_setup();
        let m = ImportanceMethod::Magnitude;
        let channels = channel_importance(&model, &dataset, &m).unwrap();
        assert_eq!(channels.len(), 32);
        assert!(channels.iter().all(|&s| s > 0.0));
        let heads = head_dim_importance(&model, &dataset, &m).unwrap();
        assert_eq!(heads.len(), 4);
        assert_eq!(heads[0].len(), 8);
        let ffn = ffn_importance(&model, &dataset, &m).unwrap();
        assert_eq!(ffn.len(), 64);
    }

    #[test]
    fn kl_scores_have_right_shapes_and_are_nonnegative() {
        let (model, dataset) = tiny_setup();
        let m = ImportanceMethod::KlDivergence {
            calibration_samples: 4,
        };
        let channels = channel_importance(&model, &dataset, &m).unwrap();
        assert_eq!(channels.len(), 32);
        assert!(channels.iter().all(|&s| s >= 0.0));
        let heads = head_dim_importance(&model, &dataset, &m).unwrap();
        assert_eq!(heads.len(), 4);
        assert!(heads[0].iter().all(|&s| s >= 0.0));
        // All heads share the ablate-everywhere score under KL.
        assert_eq!(heads[0], heads[1]);
        let ffn = ffn_importance(&model, &dataset, &m).unwrap();
        assert_eq!(ffn.len(), 64);
    }

    #[test]
    fn kl_scoring_identifies_an_obviously_important_channel() {
        // Make channel 0 of the classification head huge: ablating it must
        // change the output distribution more than ablating a typical channel.
        let (model, dataset) = tiny_setup();
        let mut boosted = model
            .prune_embed_channels(&(0..32).collect::<Vec<_>>())
            .unwrap();
        for p in boosted.parameters_mut() {
            if p.name().contains("linear.weight") && p.value().dims() == [32, 4] {
                // This is the head weight. Make channel 0 dominate class 0's
                // logit (an asymmetric boost — a uniform boost across classes
                // would cancel inside the softmax).
                p.value_mut().data_mut()[0] = 8.0;
            }
        }
        let m = ImportanceMethod::KlDivergence {
            calibration_samples: 4,
        };
        let scores = channel_importance(&boosted, &dataset, &m).unwrap();
        let mean: f32 = scores.iter().sum::<f32>() / scores.len() as f32;
        assert!(
            scores[0] > mean,
            "boosted channel should score above the mean: {} vs {mean}",
            scores[0]
        );
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let (model, dataset) = tiny_setup();
        let empty = dataset.subset(&[]).unwrap();
        let m = ImportanceMethod::KlDivergence {
            calibration_samples: 4,
        };
        assert!(channel_importance(&model, &empty, &m).is_err());
        assert!(ffn_importance(&model, &empty, &m).is_err());
        assert!(head_dim_importance(&model, &empty, &m).is_err());
    }

    #[test]
    fn default_method_is_kl() {
        assert!(matches!(
            ImportanceMethod::default(),
            ImportanceMethod::KlDivergence { .. }
        ));
    }
}
