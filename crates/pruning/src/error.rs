use std::fmt;

use edvit_datasets::DatasetError;
use edvit_nn::NnError;
use edvit_tensor::TensorError;
use edvit_vit::ViTError;

/// Error type for the structured-pruning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PruningError {
    /// A model-level operation failed.
    Vit(ViTError),
    /// A layer-level operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A dataset operation failed.
    Dataset(DatasetError),
    /// The pruning request itself is invalid (keep nothing, keep more than
    /// exists, ...).
    InvalidRequest {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for PruningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruningError::Vit(e) => write!(f, "model error: {e}"),
            PruningError::Nn(e) => write!(f, "layer error: {e}"),
            PruningError::Tensor(e) => write!(f, "tensor error: {e}"),
            PruningError::Dataset(e) => write!(f, "dataset error: {e}"),
            PruningError::InvalidRequest { message } => {
                write!(f, "invalid pruning request: {message}")
            }
        }
    }
}

impl std::error::Error for PruningError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PruningError::Vit(e) => Some(e),
            PruningError::Nn(e) => Some(e),
            PruningError::Tensor(e) => Some(e),
            PruningError::Dataset(e) => Some(e),
            PruningError::InvalidRequest { .. } => None,
        }
    }
}

impl From<ViTError> for PruningError {
    fn from(e: ViTError) -> Self {
        PruningError::Vit(e)
    }
}

impl From<NnError> for PruningError {
    fn from(e: NnError) -> Self {
        PruningError::Nn(e)
    }
}

impl From<TensorError> for PruningError {
    fn from(e: TensorError) -> Self {
        PruningError::Tensor(e)
    }
}

impl From<DatasetError> for PruningError {
    fn from(e: DatasetError) -> Self {
        PruningError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PruningError = ViTError::InvalidConfig {
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("x"));
        let e: PruningError = NnError::MissingForwardCache { layer: "l" }.into();
        assert!(matches!(e, PruningError::Nn(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: PruningError = TensorError::EmptyInput { op: "o" }.into();
        assert!(matches!(e, PruningError::Tensor(_)));
        assert!(e.to_string().contains("o"));
        let e: PruningError = DatasetError::Empty { what: "subset" }.into();
        assert!(e.to_string().contains("subset"));
        let e = PruningError::InvalidRequest {
            message: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
