//! Golden-file test pinning the Prometheus text exposition format.
//!
//! A fixed event sequence must render byte-identically to the checked-in
//! golden. Regenerate with `UPDATE_GOLDEN=1 cargo test -p edvit-metrics`
//! after an intentional format change, and review the diff.

use edvit_metrics::{MetricsSink, ReplanCause, RunEvent};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.prom");

/// A miniature failover drill touching every metric family: frames, bytes,
/// anomalies, retries, a degraded fusion, a death + replan, and a serving
/// round with sheds and a depth change.
fn fixture() -> MetricsSink {
    let sink = MetricsSink::recording();
    sink.record(
        0.0,
        RunEvent::StreamStarted {
            rounds: 4,
            round_size: 2,
            samples: 8,
            devices: 2,
        },
    );
    sink.record(0.0, RunEvent::EpochStarted { epoch: 1 });
    for device in 0..2u64 {
        sink.record(
            0.0,
            RunEvent::Delivery {
                device,
                bytes: 96 + device,
            },
        );
        sink.record(0.0, RunEvent::ControlFrame { device });
        sink.record(
            0.0,
            RunEvent::Heartbeat {
                device,
                sequence: 1,
            },
        );
        sink.record(0.0, RunEvent::DataFrame { device });
    }
    sink.record(0.0, RunEvent::StaleHeartbeat { device: 0 });
    sink.record(0.0, RunEvent::StaleControlFrame { device: 1 });
    sink.record(0.0, RunEvent::CorruptFrame { device: 1 });
    sink.record(0.0, RunEvent::DuplicateFrame { device: 0 });
    sink.record(0.0, RunEvent::DroppedHeartbeat { device: 1 });
    sink.record(
        0.0,
        RunEvent::Retry {
            device: 1,
            attempt: 1,
        },
    );
    sink.record(0.0, RunEvent::RetryCost { seconds: 0.25 });
    sink.record(
        0.5,
        RunEvent::RoundFused {
            round: 0,
            samples: 2,
            degraded: false,
        },
    );
    sink.record(
        1.0,
        RunEvent::RoundFused {
            round: 1,
            samples: 2,
            degraded: true,
        },
    );
    sink.record(1.0, RunEvent::DeviceDead { device: 1 });
    sink.record(
        1.0,
        RunEvent::Replan {
            cause: ReplanCause::Death,
            missing: vec![3],
        },
    );
    sink.record(
        1.0,
        RunEvent::RoundsReplayed {
            rounds: 1,
            samples: 2,
        },
    );
    sink.record(1.0, RunEvent::Recovery { seconds: 0.75 });
    sink.record(
        1.5,
        RunEvent::DeviceJoined {
            device: 1,
            rejoin: true,
        },
    );
    sink.record(
        1.5,
        RunEvent::Replan {
            cause: ReplanCause::Join,
            missing: vec![],
        },
    );
    sink.record(
        2.0,
        RunEvent::EpochEnded {
            epoch: 1,
            max_in_flight: 2,
        },
    );
    sink.record(
        2.0,
        RunEvent::StreamEnded {
            steady_state_samples_per_second: 4.0,
        },
    );
    sink.record(
        0.0,
        RunEvent::ServeStarted {
            tenants: 2,
            capacity: 2,
            initial_depth: 2,
            offered_rate_per_second: 3.5,
        },
    );
    sink.record(
        0.0,
        RunEvent::TenantRegistered {
            tenant: 0,
            name: "interactive".to_string(),
        },
    );
    sink.record(0.1, RunEvent::RequestAdmitted { tenant: 0, id: 0 });
    sink.record(
        0.1,
        RunEvent::QueueDepth {
            tenant: 0,
            depth: 1,
        },
    );
    sink.record(0.2, RunEvent::RequestAdmitted { tenant: 1, id: 1 });
    sink.record(
        0.2,
        RunEvent::QueueDepth {
            tenant: 1,
            depth: 1,
        },
    );
    sink.record(0.2, RunEvent::RequestShedOverflow { tenant: 1, id: 2 });
    sink.record(
        0.3,
        RunEvent::RequestDispatched {
            tenant: 0,
            id: 0,
            arrival_seconds: 0.1,
        },
    );
    sink.record(0.3, RunEvent::RequestShedDeadline { tenant: 1, id: 1 });
    sink.record(
        0.3,
        RunEvent::DepthChanged {
            round: 0,
            from: 2,
            to: 3,
        },
    );
    sink.record(
        0.3,
        RunEvent::ServeCrash {
            device: 0,
            round: 0,
        },
    );
    sink.record(0.3, RunEvent::ServeRecovery { seconds: 0.6 });
    sink.record(
        0.3,
        RunEvent::ServeRound {
            round: 0,
            start_seconds: 0.3,
            completion_seconds: 0.9,
            size: 1,
        },
    );
    sink.record(0.9, RunEvent::ServeEnded);
    sink.record(
        0.0,
        RunEvent::BatchStarted {
            devices: 2,
            samples: 4,
        },
    );
    sink.record(
        1.0,
        RunEvent::BatchEnded {
            frames: 8,
            bytes_on_wire: 1024,
            simulated_seconds: 1.0,
        },
    );
    sink
}

#[test]
fn exposition_matches_golden() {
    let text = fixture().expose();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &text).expect("write golden");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("read golden");
    assert_eq!(
        text, golden,
        "exposition drifted from the golden file; \
         run with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn exposition_is_deterministic_across_identical_runs() {
    assert_eq!(fixture().expose(), fixture().expose());
}
