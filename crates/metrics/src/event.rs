//! The typed run-journal events and their deterministic line codec.
//!
//! Every event is one line of text: `t=<virtual seconds> <EventName>
//! key=value ...`. Numbers use Rust's `Display`, whose shortest-round-trip
//! guarantee makes `f64` values survive the text round trip *bitwise* — the
//! property the offline replay leans on. Strings are double-quoted with
//! `\\`, `\"` and `\n` escapes; `u64` lists are comma-joined.
//!
//! The `Serialize`/`Deserialize` derives mark the types for the workspace's
//! vendored serde surface; the wire format itself is this hand-rolled line
//! codec, exactly as for the control frames in `edvit-edge`.

use serde::{Deserialize, Serialize};

use crate::error::{MetricsError, Result};

/// Why the scheduler re-ran the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplanCause {
    /// A scripted mid-stream join changed the membership.
    Join,
    /// A device death forced a repartition onto the survivors.
    Death,
}

impl ReplanCause {
    /// The journal token for this cause (`"join"` / `"death"`), also used as
    /// a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplanCause::Join => "join",
            ReplanCause::Death => "death",
        }
    }

    fn parse(s: &str, line: usize) -> Result<Self> {
        match s {
            "join" => Ok(ReplanCause::Join),
            "death" => Ok(ReplanCause::Death),
            other => Err(MetricsError::Parse {
                line,
                message: format!("unknown replan cause `{other}`"),
            }),
        }
    }
}

/// One typed observation from a run. Stream events come from the streaming
/// scheduler's fusion worker, serve events from the admission queue and the
/// serving drill, batch events from the one-shot cluster runtime; all three
/// families can share one journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    // ---- Streaming scheduler ------------------------------------------
    /// The stream began: its layout and initial membership.
    StreamStarted {
        /// Total rounds in the layout.
        rounds: u64,
        /// Configured (nominal) samples per round.
        round_size: u64,
        /// Total input samples.
        samples: u64,
        /// Devices in the initial membership.
        devices: u64,
    },
    /// A membership epoch opened (1-based).
    EpochStarted {
        /// Epoch ordinal.
        epoch: u64,
    },
    /// Encoded bytes arrived from (or were shipped by) a device — including
    /// corrupted, duplicated and eaten frames: they travelled too.
    Delivery {
        /// Sending device id.
        device: u64,
        /// Encoded frame length in bytes.
        bytes: u64,
    },
    /// A control frame (join, heartbeat or leave) was observed.
    ControlFrame {
        /// Sending device id.
        device: u64,
    },
    /// A feature-batch data frame was observed.
    DataFrame {
        /// Sending device id.
        device: u64,
    },
    /// A heartbeat beacon was observed (fresh or stale).
    Heartbeat {
        /// Beating device id.
        device: u64,
        /// Rounds the device claims to have completed this epoch.
        sequence: u64,
    },
    /// The sequence deduper rejected a control frame as a replay.
    StaleControlFrame {
        /// Sending device id.
        device: u64,
    },
    /// The health tracker ignored a heartbeat as stale.
    StaleHeartbeat {
        /// Beating device id.
        device: u64,
    },
    /// A delivery failed: corrupt, truncated, or a data frame the link ate.
    CorruptFrame {
        /// Sending device id.
        device: u64,
    },
    /// A data frame's payload duplicated already-stashed samples.
    DuplicateFrame {
        /// Sending device id.
        device: u64,
    },
    /// The link ate a heartbeat beacon (not retried).
    DroppedHeartbeat {
        /// Beating device id.
        device: u64,
    },
    /// A data-frame re-request was issued.
    Retry {
        /// Device whose frame is re-requested.
        device: u64,
        /// Attempt ordinal (1-based).
        attempt: u64,
    },
    /// Virtual seconds one epoch spent in retry backoff (pre-summed, in the
    /// scheduler's own summation order, so replay accumulates bitwise).
    RetryCost {
        /// Backoff seconds charged to the clock.
        seconds: f64,
    },
    /// A round was fused.
    RoundFused {
        /// Global round id.
        round: u64,
        /// Samples the round carried.
        samples: u64,
        /// Whether missing sub-models were zero-filled.
        degraded: bool,
    },
    /// A membership epoch closed.
    EpochEnded {
        /// Epoch ordinal.
        epoch: u64,
        /// Most rounds simultaneously in flight this epoch.
        max_in_flight: u64,
    },
    /// Rounds one device delivered within the closing epoch (every receiver
    /// gets one, including zero-round entries).
    DeviceRounds {
        /// Device id.
        device: u64,
        /// Rounds delivered (highest fresh heartbeat sequence).
        rounds: u64,
    },
    /// A device was declared dead.
    DeviceDead {
        /// The dead device id.
        device: u64,
    },
    /// A device was admitted mid-stream.
    DeviceJoined {
        /// The joining device id.
        device: u64,
        /// Whether this was a rejoin (new identity-epoch of a terminal id).
        rejoin: bool,
    },
    /// The planner re-assigned sub-models.
    Replan {
        /// What triggered it.
        cause: ReplanCause,
        /// Sub-models the new plan leaves unhosted (empty at full fidelity).
        missing: Vec<u64>,
    },
    /// In-flight rounds were scheduled for replay after a death.
    RoundsReplayed {
        /// Rounds replayed.
        rounds: u64,
        /// Samples those rounds carried.
        samples: u64,
    },
    /// Virtual seconds charged to one death's recovery window (pre-summed:
    /// detection + replan + replay).
    Recovery {
        /// Recovery seconds.
        seconds: f64,
    },
    /// The stream finished; the timestamp is the virtual end-to-end time.
    StreamEnded {
        /// Steady-state throughput of the final membership.
        steady_state_samples_per_second: f64,
    },

    // ---- Serving front-door -------------------------------------------
    /// A serving drill began.
    ServeStarted {
        /// Number of tenants.
        tenants: u64,
        /// Round capacity the batcher fills up to.
        capacity: u64,
        /// Pipeline depth the drill starts at (post-clamp).
        initial_depth: u64,
        /// Configured open-loop arrival rate.
        offered_rate_per_second: f64,
    },
    /// One tenant's admission contract was registered.
    TenantRegistered {
        /// Tenant index.
        tenant: u64,
        /// Tenant display name.
        name: String,
    },
    /// A request arrived at admission.
    RequestAdmitted {
        /// Tenant index.
        tenant: u64,
        /// Request id.
        id: u64,
    },
    /// A tenant queue's depth after an enqueue.
    QueueDepth {
        /// Tenant index.
        tenant: u64,
        /// Requests now queued for the tenant.
        depth: u64,
    },
    /// A request was shed on arrival (queue full).
    RequestShedOverflow {
        /// Tenant index.
        tenant: u64,
        /// Request id.
        id: u64,
    },
    /// A queued request was dropped at dispatch (deadline expired).
    RequestShedDeadline {
        /// Tenant index.
        tenant: u64,
        /// Request id.
        id: u64,
    },
    /// A request was handed to a round.
    RequestDispatched {
        /// Tenant index.
        tenant: u64,
        /// Request id.
        id: u64,
        /// When the request arrived, for latency reconstruction.
        arrival_seconds: f64,
    },
    /// The adaptive controller changed the pipeline depth.
    DepthChanged {
        /// Round ordinal the transition took effect before.
        round: u64,
        /// Depth before.
        from: u64,
        /// Depth after.
        to: u64,
    },
    /// A scripted device crash fired mid-drill.
    ServeCrash {
        /// The crashed device id.
        device: u64,
        /// Round ordinal the crash hit.
        round: u64,
    },
    /// Virtual seconds one mid-drill crash charged to recovery (pre-summed).
    ServeRecovery {
        /// Recovery seconds.
        seconds: f64,
    },
    /// The batcher formed and priced one round; the requests dispatched since
    /// the previous round ride in it, in batch order.
    ServeRound {
        /// Round ordinal.
        round: u64,
        /// Virtual dispatch time.
        start_seconds: f64,
        /// Virtual completion time.
        completion_seconds: f64,
        /// Requests the round carried.
        size: u64,
    },
    /// The serving drill finished; the timestamp is the last completion.
    ServeEnded,

    // ---- One-shot batch runtime ---------------------------------------
    /// A one-shot cluster batch run began.
    BatchStarted {
        /// Devices in the run.
        devices: u64,
        /// Samples in the batch.
        samples: u64,
    },
    /// A one-shot cluster batch run finished.
    BatchEnded {
        /// Frames shipped.
        frames: u64,
        /// Encoded bytes shipped.
        bytes_on_wire: u64,
        /// Virtual communication seconds of the bottleneck device.
        simulated_seconds: f64,
    },
}

/// One journal entry: an event plus its virtual-clock timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Virtual seconds on the run's `SimClock` when the event was recorded.
    pub at: f64,
    /// The event.
    pub event: RunEvent,
}

// ---- encoding -----------------------------------------------------------

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push(' ');
    out.push_str(key);
    out.push_str("=\"");
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn push_list_field(out: &mut String, key: &str, values: &[u64]) {
    out.push(' ');
    out.push_str(key);
    out.push('=');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

macro_rules! push_display {
    ($out:expr, $($key:literal = $value:expr),+) => {{
        $( $out.push_str(&format!(concat!(" ", $key, "={}"), $value)); )+
    }};
}

impl EventRecord {
    /// Encodes the record as one journal line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("t={} {}", self.at, self.event.name());
        match &self.event {
            RunEvent::StreamStarted {
                rounds,
                round_size,
                samples,
                devices,
            } => push_display!(
                out,
                "rounds" = rounds,
                "round_size" = round_size,
                "samples" = samples,
                "devices" = devices
            ),
            RunEvent::EpochStarted { epoch } => push_display!(out, "epoch" = epoch),
            RunEvent::Delivery { device, bytes } => {
                push_display!(out, "device" = device, "bytes" = bytes);
            }
            RunEvent::ControlFrame { device }
            | RunEvent::DataFrame { device }
            | RunEvent::StaleControlFrame { device }
            | RunEvent::StaleHeartbeat { device }
            | RunEvent::CorruptFrame { device }
            | RunEvent::DuplicateFrame { device }
            | RunEvent::DroppedHeartbeat { device }
            | RunEvent::DeviceDead { device } => push_display!(out, "device" = device),
            RunEvent::Heartbeat { device, sequence } => {
                push_display!(out, "device" = device, "sequence" = sequence);
            }
            RunEvent::Retry { device, attempt } => {
                push_display!(out, "device" = device, "attempt" = attempt);
            }
            RunEvent::RetryCost { seconds }
            | RunEvent::Recovery { seconds }
            | RunEvent::ServeRecovery { seconds } => push_display!(out, "seconds" = seconds),
            RunEvent::RoundFused {
                round,
                samples,
                degraded,
            } => push_display!(
                out,
                "round" = round,
                "samples" = samples,
                "degraded" = degraded
            ),
            RunEvent::EpochEnded {
                epoch,
                max_in_flight,
            } => push_display!(out, "epoch" = epoch, "max_in_flight" = max_in_flight),
            RunEvent::DeviceRounds { device, rounds } => {
                push_display!(out, "device" = device, "rounds" = rounds);
            }
            RunEvent::DeviceJoined { device, rejoin } => {
                push_display!(out, "device" = device, "rejoin" = rejoin);
            }
            RunEvent::Replan { cause, missing } => {
                push_display!(out, "cause" = cause.as_str());
                push_list_field(&mut out, "missing", missing);
            }
            RunEvent::RoundsReplayed { rounds, samples } => {
                push_display!(out, "rounds" = rounds, "samples" = samples);
            }
            RunEvent::StreamEnded {
                steady_state_samples_per_second,
            } => push_display!(out, "steady_state" = steady_state_samples_per_second),
            RunEvent::ServeStarted {
                tenants,
                capacity,
                initial_depth,
                offered_rate_per_second,
            } => push_display!(
                out,
                "tenants" = tenants,
                "capacity" = capacity,
                "initial_depth" = initial_depth,
                "offered_rate" = offered_rate_per_second
            ),
            RunEvent::TenantRegistered { tenant, name } => {
                push_display!(out, "tenant" = tenant);
                push_str_field(&mut out, "name", name);
            }
            RunEvent::RequestAdmitted { tenant, id }
            | RunEvent::RequestShedOverflow { tenant, id }
            | RunEvent::RequestShedDeadline { tenant, id } => {
                push_display!(out, "tenant" = tenant, "id" = id);
            }
            RunEvent::QueueDepth { tenant, depth } => {
                push_display!(out, "tenant" = tenant, "depth" = depth);
            }
            RunEvent::RequestDispatched {
                tenant,
                id,
                arrival_seconds,
            } => push_display!(
                out,
                "tenant" = tenant,
                "id" = id,
                "arrival" = arrival_seconds
            ),
            RunEvent::DepthChanged { round, from, to } => {
                push_display!(out, "round" = round, "from" = from, "to" = to);
            }
            RunEvent::ServeCrash { device, round } => {
                push_display!(out, "device" = device, "round" = round);
            }
            RunEvent::ServeRound {
                round,
                start_seconds,
                completion_seconds,
                size,
            } => push_display!(
                out,
                "round" = round,
                "start" = start_seconds,
                "completion" = completion_seconds,
                "size" = size
            ),
            RunEvent::ServeEnded => {}
            RunEvent::BatchStarted { devices, samples } => {
                push_display!(out, "devices" = devices, "samples" = samples);
            }
            RunEvent::BatchEnded {
                frames,
                bytes_on_wire,
                simulated_seconds,
            } => push_display!(
                out,
                "frames" = frames,
                "bytes_on_wire" = bytes_on_wire,
                "simulated_seconds" = simulated_seconds
            ),
        }
        out
    }

    /// Decodes one journal line. `line_number` is 1-based, for error context.
    pub fn from_line(line: &str, line_number: usize) -> Result<Self> {
        let fields = Fields::tokenize(line, line_number)?;
        let at = fields.f64("t")?;
        let event = RunEvent::from_fields(&fields)?;
        Ok(EventRecord { at, event })
    }
}

impl RunEvent {
    /// The event's journal name.
    pub fn name(&self) -> &'static str {
        match self {
            RunEvent::StreamStarted { .. } => "StreamStarted",
            RunEvent::EpochStarted { .. } => "EpochStarted",
            RunEvent::Delivery { .. } => "Delivery",
            RunEvent::ControlFrame { .. } => "ControlFrame",
            RunEvent::DataFrame { .. } => "DataFrame",
            RunEvent::Heartbeat { .. } => "Heartbeat",
            RunEvent::StaleControlFrame { .. } => "StaleControlFrame",
            RunEvent::StaleHeartbeat { .. } => "StaleHeartbeat",
            RunEvent::CorruptFrame { .. } => "CorruptFrame",
            RunEvent::DuplicateFrame { .. } => "DuplicateFrame",
            RunEvent::DroppedHeartbeat { .. } => "DroppedHeartbeat",
            RunEvent::Retry { .. } => "Retry",
            RunEvent::RetryCost { .. } => "RetryCost",
            RunEvent::RoundFused { .. } => "RoundFused",
            RunEvent::EpochEnded { .. } => "EpochEnded",
            RunEvent::DeviceRounds { .. } => "DeviceRounds",
            RunEvent::DeviceDead { .. } => "DeviceDead",
            RunEvent::DeviceJoined { .. } => "DeviceJoined",
            RunEvent::Replan { .. } => "Replan",
            RunEvent::RoundsReplayed { .. } => "RoundsReplayed",
            RunEvent::Recovery { .. } => "Recovery",
            RunEvent::StreamEnded { .. } => "StreamEnded",
            RunEvent::ServeStarted { .. } => "ServeStarted",
            RunEvent::TenantRegistered { .. } => "TenantRegistered",
            RunEvent::RequestAdmitted { .. } => "RequestAdmitted",
            RunEvent::QueueDepth { .. } => "QueueDepth",
            RunEvent::RequestShedOverflow { .. } => "RequestShedOverflow",
            RunEvent::RequestShedDeadline { .. } => "RequestShedDeadline",
            RunEvent::RequestDispatched { .. } => "RequestDispatched",
            RunEvent::DepthChanged { .. } => "DepthChanged",
            RunEvent::ServeCrash { .. } => "ServeCrash",
            RunEvent::ServeRecovery { .. } => "ServeRecovery",
            RunEvent::ServeRound { .. } => "ServeRound",
            RunEvent::ServeEnded => "ServeEnded",
            RunEvent::BatchStarted { .. } => "BatchStarted",
            RunEvent::BatchEnded { .. } => "BatchEnded",
        }
    }

    fn from_fields(f: &Fields<'_>) -> Result<Self> {
        Ok(match f.name {
            "StreamStarted" => RunEvent::StreamStarted {
                rounds: f.u64("rounds")?,
                round_size: f.u64("round_size")?,
                samples: f.u64("samples")?,
                devices: f.u64("devices")?,
            },
            "EpochStarted" => RunEvent::EpochStarted {
                epoch: f.u64("epoch")?,
            },
            "Delivery" => RunEvent::Delivery {
                device: f.u64("device")?,
                bytes: f.u64("bytes")?,
            },
            "ControlFrame" => RunEvent::ControlFrame {
                device: f.u64("device")?,
            },
            "DataFrame" => RunEvent::DataFrame {
                device: f.u64("device")?,
            },
            "Heartbeat" => RunEvent::Heartbeat {
                device: f.u64("device")?,
                sequence: f.u64("sequence")?,
            },
            "StaleControlFrame" => RunEvent::StaleControlFrame {
                device: f.u64("device")?,
            },
            "StaleHeartbeat" => RunEvent::StaleHeartbeat {
                device: f.u64("device")?,
            },
            "CorruptFrame" => RunEvent::CorruptFrame {
                device: f.u64("device")?,
            },
            "DuplicateFrame" => RunEvent::DuplicateFrame {
                device: f.u64("device")?,
            },
            "DroppedHeartbeat" => RunEvent::DroppedHeartbeat {
                device: f.u64("device")?,
            },
            "Retry" => RunEvent::Retry {
                device: f.u64("device")?,
                attempt: f.u64("attempt")?,
            },
            "RetryCost" => RunEvent::RetryCost {
                seconds: f.f64("seconds")?,
            },
            "RoundFused" => RunEvent::RoundFused {
                round: f.u64("round")?,
                samples: f.u64("samples")?,
                degraded: f.bool("degraded")?,
            },
            "EpochEnded" => RunEvent::EpochEnded {
                epoch: f.u64("epoch")?,
                max_in_flight: f.u64("max_in_flight")?,
            },
            "DeviceRounds" => RunEvent::DeviceRounds {
                device: f.u64("device")?,
                rounds: f.u64("rounds")?,
            },
            "DeviceDead" => RunEvent::DeviceDead {
                device: f.u64("device")?,
            },
            "DeviceJoined" => RunEvent::DeviceJoined {
                device: f.u64("device")?,
                rejoin: f.bool("rejoin")?,
            },
            "Replan" => RunEvent::Replan {
                cause: ReplanCause::parse(f.raw("cause")?, f.line)?,
                missing: f.list("missing")?,
            },
            "RoundsReplayed" => RunEvent::RoundsReplayed {
                rounds: f.u64("rounds")?,
                samples: f.u64("samples")?,
            },
            "Recovery" => RunEvent::Recovery {
                seconds: f.f64("seconds")?,
            },
            "StreamEnded" => RunEvent::StreamEnded {
                steady_state_samples_per_second: f.f64("steady_state")?,
            },
            "ServeStarted" => RunEvent::ServeStarted {
                tenants: f.u64("tenants")?,
                capacity: f.u64("capacity")?,
                initial_depth: f.u64("initial_depth")?,
                offered_rate_per_second: f.f64("offered_rate")?,
            },
            "TenantRegistered" => RunEvent::TenantRegistered {
                tenant: f.u64("tenant")?,
                name: f.string("name")?,
            },
            "RequestAdmitted" => RunEvent::RequestAdmitted {
                tenant: f.u64("tenant")?,
                id: f.u64("id")?,
            },
            "QueueDepth" => RunEvent::QueueDepth {
                tenant: f.u64("tenant")?,
                depth: f.u64("depth")?,
            },
            "RequestShedOverflow" => RunEvent::RequestShedOverflow {
                tenant: f.u64("tenant")?,
                id: f.u64("id")?,
            },
            "RequestShedDeadline" => RunEvent::RequestShedDeadline {
                tenant: f.u64("tenant")?,
                id: f.u64("id")?,
            },
            "RequestDispatched" => RunEvent::RequestDispatched {
                tenant: f.u64("tenant")?,
                id: f.u64("id")?,
                arrival_seconds: f.f64("arrival")?,
            },
            "DepthChanged" => RunEvent::DepthChanged {
                round: f.u64("round")?,
                from: f.u64("from")?,
                to: f.u64("to")?,
            },
            "ServeCrash" => RunEvent::ServeCrash {
                device: f.u64("device")?,
                round: f.u64("round")?,
            },
            "ServeRecovery" => RunEvent::ServeRecovery {
                seconds: f.f64("seconds")?,
            },
            "ServeRound" => RunEvent::ServeRound {
                round: f.u64("round")?,
                start_seconds: f.f64("start")?,
                completion_seconds: f.f64("completion")?,
                size: f.u64("size")?,
            },
            "ServeEnded" => RunEvent::ServeEnded,
            "BatchStarted" => RunEvent::BatchStarted {
                devices: f.u64("devices")?,
                samples: f.u64("samples")?,
            },
            "BatchEnded" => RunEvent::BatchEnded {
                frames: f.u64("frames")?,
                bytes_on_wire: f.u64("bytes_on_wire")?,
                simulated_seconds: f.f64("simulated_seconds")?,
            },
            other => {
                return Err(MetricsError::Parse {
                    line: f.line,
                    message: format!("unknown event `{other}`"),
                })
            }
        })
    }
}

// ---- decoding -----------------------------------------------------------

/// One tokenized field value: plain text or an unescaped quoted string.
enum Token {
    Plain(String),
    Quoted(String),
}

/// The tokenized fields of one journal line, with typed getters.
struct Fields<'a> {
    line: usize,
    name: &'a str,
    entries: Vec<(String, Token)>,
}

impl<'a> Fields<'a> {
    fn tokenize(text: &'a str, line: usize) -> Result<Self> {
        let err = |message: String| MetricsError::Parse { line, message };
        let mut chars = text.char_indices().peekable();
        let mut entries: Vec<(String, Token)> = Vec::new();
        let mut name: Option<&'a str> = None;
        while let Some(&(start, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            // A bare token (no `=`) is the event name.
            let mut end = text.len();
            let mut eq: Option<usize> = None;
            for (i, c) in chars.clone() {
                if c == '=' {
                    eq = Some(i);
                    break;
                }
                if c.is_whitespace() {
                    end = i;
                    break;
                }
            }
            let Some(eq) = eq else {
                if name.replace(&text[start..end]).is_some() {
                    return Err(err("two event names on one line".to_string()));
                }
                while chars.peek().is_some_and(|&(i, _)| i < end) {
                    chars.next();
                }
                continue;
            };
            let key = text[start..eq].to_string();
            if key.is_empty() || key.chars().any(char::is_whitespace) {
                return Err(err(format!("malformed field near `{}`", &text[start..eq])));
            }
            // Skip past the `=`.
            while chars.next().is_some_and(|(i, _)| i < eq) {}
            let token = if chars.peek().is_some_and(|&(_, c)| c == '"') {
                chars.next();
                let mut value = String::new();
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some((_, '\\')) => value.push('\\'),
                            Some((_, '"')) => value.push('"'),
                            Some((_, 'n')) => value.push('\n'),
                            other => {
                                return Err(err(format!(
                                    "bad escape `\\{}` in field `{key}`",
                                    other.map_or(String::new(), |(_, c)| c.to_string())
                                )))
                            }
                        },
                        other => value.push(other),
                    }
                }
                if !closed {
                    return Err(err(format!("unterminated string in field `{key}`")));
                }
                Token::Quoted(value)
            } else {
                let mut value = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    value.push(c);
                    chars.next();
                }
                Token::Plain(value)
            };
            entries.push((key, token));
        }
        let name = name.ok_or_else(|| MetricsError::Parse {
            line,
            message: "missing event name".to_string(),
        })?;
        Ok(Fields {
            line,
            name,
            entries,
        })
    }

    fn raw(&self, key: &str) -> Result<&str> {
        match self.entries.iter().find(|(k, _)| k == key) {
            Some((_, Token::Plain(v))) => Ok(v),
            Some((_, Token::Quoted(_))) => Err(MetricsError::Parse {
                line: self.line,
                message: format!("field `{key}` must not be quoted"),
            }),
            None => Err(MetricsError::Parse {
                line: self.line,
                message: format!("missing field `{key}`"),
            }),
        }
    }

    fn u64(&self, key: &str) -> Result<u64> {
        self.raw(key)?.parse().map_err(|_| MetricsError::Parse {
            line: self.line,
            message: format!("field `{key}` is not a u64"),
        })
    }

    fn f64(&self, key: &str) -> Result<f64> {
        self.raw(key)?.parse().map_err(|_| MetricsError::Parse {
            line: self.line,
            message: format!("field `{key}` is not an f64"),
        })
    }

    fn bool(&self, key: &str) -> Result<bool> {
        self.raw(key)?.parse().map_err(|_| MetricsError::Parse {
            line: self.line,
            message: format!("field `{key}` is not a bool"),
        })
    }

    fn list(&self, key: &str) -> Result<Vec<u64>> {
        let raw = self.raw(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|part| {
                part.parse().map_err(|_| MetricsError::Parse {
                    line: self.line,
                    message: format!("field `{key}` has a non-u64 element"),
                })
            })
            .collect()
    }

    fn string(&self, key: &str) -> Result<String> {
        match self.entries.iter().find(|(k, _)| k == key) {
            Some((_, Token::Quoted(v))) => Ok(v.clone()),
            Some((_, Token::Plain(_))) => Err(MetricsError::Parse {
                line: self.line,
                message: format!("field `{key}` must be quoted"),
            }),
            None => Err(MetricsError::Parse {
                line: self.line,
                message: format!("missing field `{key}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: EventRecord) {
        let line = record.to_line();
        let back = EventRecord::from_line(&line, 1).expect(&line);
        assert_eq!(back.at.to_bits(), record.at.to_bits(), "{line}");
        assert_eq!(back, record, "{line}");
    }

    #[test]
    fn every_variant_round_trips_through_its_line() {
        let samples = vec![
            RunEvent::StreamStarted {
                rounds: 8,
                round_size: 2,
                samples: 16,
                devices: 4,
            },
            RunEvent::EpochStarted { epoch: 1 },
            RunEvent::Delivery {
                device: 3,
                bytes: 4096,
            },
            RunEvent::ControlFrame { device: 0 },
            RunEvent::DataFrame { device: 1 },
            RunEvent::Heartbeat {
                device: 2,
                sequence: 7,
            },
            RunEvent::StaleControlFrame { device: 1 },
            RunEvent::StaleHeartbeat { device: 0 },
            RunEvent::CorruptFrame { device: 2 },
            RunEvent::DuplicateFrame { device: 3 },
            RunEvent::DroppedHeartbeat { device: 1 },
            RunEvent::Retry {
                device: 2,
                attempt: 1,
            },
            RunEvent::RetryCost { seconds: 0.1 + 0.2 },
            RunEvent::RoundFused {
                round: 5,
                samples: 2,
                degraded: true,
            },
            RunEvent::EpochEnded {
                epoch: 2,
                max_in_flight: 3,
            },
            RunEvent::DeviceRounds {
                device: 9,
                rounds: 0,
            },
            RunEvent::DeviceDead { device: 2 },
            RunEvent::DeviceJoined {
                device: 5,
                rejoin: true,
            },
            RunEvent::Replan {
                cause: ReplanCause::Death,
                missing: vec![1, 3],
            },
            RunEvent::Replan {
                cause: ReplanCause::Join,
                missing: Vec::new(),
            },
            RunEvent::RoundsReplayed {
                rounds: 1,
                samples: 2,
            },
            RunEvent::Recovery { seconds: 1.25 },
            RunEvent::StreamEnded {
                steady_state_samples_per_second: 123.456_789,
            },
            RunEvent::ServeStarted {
                tenants: 2,
                capacity: 4,
                initial_depth: 2,
                offered_rate_per_second: 0.3,
            },
            RunEvent::TenantRegistered {
                tenant: 0,
                name: "edge \"cam\"\\north\n".to_string(),
            },
            RunEvent::RequestAdmitted { tenant: 0, id: 17 },
            RunEvent::QueueDepth {
                tenant: 1,
                depth: 4,
            },
            RunEvent::RequestShedOverflow { tenant: 1, id: 18 },
            RunEvent::RequestShedDeadline { tenant: 0, id: 19 },
            RunEvent::RequestDispatched {
                tenant: 0,
                id: 20,
                arrival_seconds: 2.5,
            },
            RunEvent::DepthChanged {
                round: 3,
                from: 2,
                to: 4,
            },
            RunEvent::ServeCrash {
                device: 1,
                round: 2,
            },
            RunEvent::ServeRecovery { seconds: 0.75 },
            RunEvent::ServeRound {
                round: 0,
                start_seconds: 0.0,
                completion_seconds: 1.5,
                size: 4,
            },
            RunEvent::ServeEnded,
            RunEvent::BatchStarted {
                devices: 4,
                samples: 8,
            },
            RunEvent::BatchEnded {
                frames: 4,
                bytes_on_wire: 65536,
                simulated_seconds: 0.875,
            },
        ];
        for (i, event) in samples.into_iter().enumerate() {
            round_trip(EventRecord {
                at: i as f64 * 0.3,
                event,
            });
        }
    }

    #[test]
    fn extreme_floats_round_trip_bitwise() {
        for value in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1.0 / 3.0,
            f64::MAX,
            6.021_023e-19,
        ] {
            round_trip(EventRecord {
                at: value,
                event: RunEvent::RetryCost { seconds: value },
            });
        }
        // NaN compares unequal; check the bits directly.
        let record = EventRecord {
            at: 0.0,
            event: RunEvent::RetryCost { seconds: f64::NAN },
        };
        let back = EventRecord::from_line(&record.to_line(), 1).unwrap();
        let RunEvent::RetryCost { seconds } = back.event else {
            panic!("wrong variant");
        };
        assert!(seconds.is_nan());
    }

    #[test]
    fn malformed_lines_are_typed_parse_errors() {
        for bad in [
            "",
            "t=1.0",
            "t=1.0 NoSuchEvent",
            "t=abc Delivery device=0 bytes=1",
            "t=1.0 Delivery device=0",
            "t=1.0 Delivery device=-1 bytes=2",
            "t=1.0 TenantRegistered tenant=0 name=unquoted",
            "t=1.0 TenantRegistered tenant=0 name=\"open",
            "t=1.0 TenantRegistered tenant=0 name=\"bad\\q\"",
            "t=1.0 Replan cause=nope missing=",
            "t=1.0 Replan cause=death missing=1,x",
            "t=1.0 Delivery Delivery device=0 bytes=1",
        ] {
            let err = EventRecord::from_line(bad, 7).unwrap_err();
            assert!(
                matches!(err, MetricsError::Parse { line: 7, .. }),
                "`{bad}` gave {err:?}"
            );
        }
    }
}
