//! Typed errors for journal parsing and offline replay.

use std::fmt;

/// Errors the metrics crate can produce.
///
/// Recording never fails (a disabled sink is a no-op, an enabled one only
/// appends); errors arise when a serialized journal is read back or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// A journal line failed to parse.
    Parse {
        /// 1-based line number in the journal text.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A structurally valid journal could not be replayed into counters
    /// (e.g. it never recorded a run-started event).
    Replay {
        /// What the replay was missing.
        message: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::Parse { line, message } => {
                write!(f, "journal line {line}: {message}")
            }
            MetricsError::Replay { message } => write!(f, "journal replay: {message}"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MetricsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let parse = MetricsError::Parse {
            line: 3,
            message: "missing field `device`".to_string(),
        };
        assert_eq!(parse.to_string(), "journal line 3: missing field `device`");
        let replay = MetricsError::Replay {
            message: "no StreamStarted event".to_string(),
        };
        assert_eq!(replay.to_string(), "journal replay: no StreamStarted event");
        assert_ne!(parse, replay);
    }
}
