//! The event-sourced run journal and its offline replay.
//!
//! A [`RunJournal`] is an append-only sequence of [`EventRecord`]s. Replay
//! folds the events back into [`StreamCounters`] / [`ServeCounters`] — exact
//! mirrors of the accounting fields of `StreamReport` and `ServeReport` —
//! using the *same arithmetic in the same order* as the live schedulers, so
//! a journal from an instrumented run reconstructs every counter **bitwise**
//! (`f64`s compared by bit pattern, not epsilon). That property is what makes
//! the journal a post-mortem artifact: any divergence between a replay and
//! the live report is a counter bug in one of them, never float noise.
//!
//! One journal can hold all three event families (stream, serve, batch);
//! each replay folds its own family and ignores the others, so a serving run
//! that embeds a streaming execution pass replays both ways from one file.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{MetricsError, Result};
use crate::event::{EventRecord, RunEvent};

/// Nearest-rank percentile of an ascending-sorted slice; 0.0 when empty.
/// Duplicates the serving report's arithmetic exactly — replay must price
/// percentiles the same way the live report does.
fn percentile(sorted_ascending: &[f64], q: f64) -> f64 {
    if sorted_ascending.is_empty() {
        return 0.0;
    }
    let n = sorted_ascending.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted_ascending[rank.saturating_sub(1).min(n - 1)]
}

fn f64_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// The accounting fields of a `StreamReport`, reconstructed by replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamCounters {
    /// Total rounds in the layout.
    pub rounds: usize,
    /// Configured samples per round.
    pub round_size: usize,
    /// Membership epochs executed.
    pub epochs: usize,
    /// Most rounds simultaneously in flight.
    pub max_rounds_in_flight: usize,
    /// Heartbeat control frames observed.
    pub heartbeats_seen: u64,
    /// All control frames observed.
    pub control_frames: usize,
    /// Feature-batch data frames observed.
    pub data_frames: usize,
    /// Encoded bytes shipped over the channel.
    pub bytes_on_wire: u64,
    /// Encoded bytes per sending device.
    pub per_device_wire_bytes: BTreeMap<usize, u64>,
    /// Rounds delivered per device, accumulated across epochs.
    pub per_device_rounds: BTreeMap<usize, u64>,
    /// Devices declared dead, in detection order.
    pub devices_lost: Vec<usize>,
    /// Devices admitted mid-stream, in admission order.
    pub devices_joined: Vec<usize>,
    /// Admissions that were rejoins.
    pub rejoins: usize,
    /// Planner re-runs.
    pub repartitions: usize,
    /// Samples recomputed after deaths.
    pub samples_replayed: usize,
    /// Data-frame re-requests issued.
    pub retries: u64,
    /// Virtual seconds spent in retry backoff.
    pub retry_seconds: f64,
    /// Failed deliveries observed.
    pub corrupt_frames: u64,
    /// Duplicate data frames observed.
    pub duplicate_frames: u64,
    /// Heartbeat beacons the link ate.
    pub dropped_heartbeats: u64,
    /// Control frames rejected as replays.
    pub stale_control_frames: u64,
    /// Heartbeats the health tracker ignored as stale.
    pub stale_heartbeats: u64,
    /// Rounds fused in degraded mode, in fusion order.
    pub degraded_rounds: Vec<u64>,
    /// Sub-models unhosted by the final membership.
    pub missing_sub_models: Vec<usize>,
    /// Virtual seconds charged to crash recovery.
    pub recovery_seconds: f64,
    /// Steady-state throughput of the final membership.
    pub steady_state_samples_per_second: f64,
    /// Realized throughput (samples over virtual end-to-end time).
    pub effective_samples_per_second: f64,
    /// Virtual end-to-end seconds.
    pub simulated_total_seconds: f64,
}

impl StreamCounters {
    /// Field names whose values differ from `other`, comparing floats by bit
    /// pattern. Empty means bitwise-identical accounting.
    pub fn diff(&self, other: &StreamCounters) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut check = |name, equal: bool| {
            if !equal {
                out.push(name);
            }
        };
        check("rounds", self.rounds == other.rounds);
        check("round_size", self.round_size == other.round_size);
        check("epochs", self.epochs == other.epochs);
        check(
            "max_rounds_in_flight",
            self.max_rounds_in_flight == other.max_rounds_in_flight,
        );
        check(
            "heartbeats_seen",
            self.heartbeats_seen == other.heartbeats_seen,
        );
        check(
            "control_frames",
            self.control_frames == other.control_frames,
        );
        check("data_frames", self.data_frames == other.data_frames);
        check("bytes_on_wire", self.bytes_on_wire == other.bytes_on_wire);
        check(
            "per_device_wire_bytes",
            self.per_device_wire_bytes == other.per_device_wire_bytes,
        );
        check(
            "per_device_rounds",
            self.per_device_rounds == other.per_device_rounds,
        );
        check("devices_lost", self.devices_lost == other.devices_lost);
        check(
            "devices_joined",
            self.devices_joined == other.devices_joined,
        );
        check("rejoins", self.rejoins == other.rejoins);
        check("repartitions", self.repartitions == other.repartitions);
        check(
            "samples_replayed",
            self.samples_replayed == other.samples_replayed,
        );
        check("retries", self.retries == other.retries);
        check(
            "retry_seconds",
            f64_eq(self.retry_seconds, other.retry_seconds),
        );
        check(
            "corrupt_frames",
            self.corrupt_frames == other.corrupt_frames,
        );
        check(
            "duplicate_frames",
            self.duplicate_frames == other.duplicate_frames,
        );
        check(
            "dropped_heartbeats",
            self.dropped_heartbeats == other.dropped_heartbeats,
        );
        check(
            "stale_control_frames",
            self.stale_control_frames == other.stale_control_frames,
        );
        check(
            "stale_heartbeats",
            self.stale_heartbeats == other.stale_heartbeats,
        );
        check(
            "degraded_rounds",
            self.degraded_rounds == other.degraded_rounds,
        );
        check(
            "missing_sub_models",
            self.missing_sub_models == other.missing_sub_models,
        );
        check(
            "recovery_seconds",
            f64_eq(self.recovery_seconds, other.recovery_seconds),
        );
        check(
            "steady_state_samples_per_second",
            f64_eq(
                self.steady_state_samples_per_second,
                other.steady_state_samples_per_second,
            ),
        );
        check(
            "effective_samples_per_second",
            f64_eq(
                self.effective_samples_per_second,
                other.effective_samples_per_second,
            ),
        );
        check(
            "simulated_total_seconds",
            f64_eq(self.simulated_total_seconds, other.simulated_total_seconds),
        );
        out
    }

    /// Whether every counter matches `other` bitwise.
    pub fn bitwise_eq(&self, other: &StreamCounters) -> bool {
        self.diff(other).is_empty()
    }
}

/// One tenant's row of a `ServeReport`, reconstructed by replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantRow {
    /// Tenant display name.
    pub name: String,
    /// Requests that arrived.
    pub admitted: u64,
    /// Requests served to completion (dispatched).
    pub completed: u64,
    /// Requests shed on arrival.
    pub shed_overflow: u64,
    /// Requests dropped at dispatch.
    pub shed_deadline: u64,
    /// Deepest the tenant's queue grew.
    pub max_queue_depth: usize,
    /// Median round-trip latency.
    pub p50_latency_seconds: f64,
    /// 99th-percentile round-trip latency.
    pub p99_latency_seconds: f64,
}

/// One adaptive pipeline-depth transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthStep {
    /// Round ordinal the transition took effect before.
    pub round: u64,
    /// Depth before.
    pub from: usize,
    /// Depth after.
    pub to: usize,
}

/// The accounting fields of a `ServeReport`, reconstructed by replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Per-tenant rows, in tenant index order.
    pub tenants: Vec<TenantRow>,
    /// Requests that arrived across all tenants.
    pub admitted: u64,
    /// Requests served to completion across all tenants.
    pub completed: u64,
    /// Requests shed across all tenants.
    pub shed: u64,
    /// Rounds the batcher formed.
    pub rounds_formed: usize,
    /// Rounds dispatched below capacity.
    pub partial_rounds: usize,
    /// Every depth transition, in round order.
    pub depth_changes: Vec<DepthStep>,
    /// Pipeline depth the drill started at (post-clamp).
    pub initial_depth: usize,
    /// Pipeline depth after the last round.
    pub final_depth: usize,
    /// Median round-trip latency over all completions.
    pub p50_latency_seconds: f64,
    /// 99th-percentile round-trip latency over all completions.
    pub p99_latency_seconds: f64,
    /// Configured open-loop offered load.
    pub offered_rate_per_second: f64,
    /// Completions per virtual second achieved.
    pub served_samples_per_second: f64,
    /// Virtual time of the last completion.
    pub simulated_total_seconds: f64,
    /// Virtual seconds charged to mid-drill crash recovery.
    pub recovery_seconds: f64,
    /// Devices lost mid-drill, in crash order.
    pub devices_lost: Vec<usize>,
}

impl ServeCounters {
    /// Field names whose values differ from `other`, floats compared by bit
    /// pattern. Tenant rows are compared field by field the same way.
    pub fn diff(&self, other: &ServeCounters) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut check = |name, equal: bool| {
            if !equal {
                out.push(name);
            }
        };
        let tenants_eq = self.tenants.len() == other.tenants.len()
            && self.tenants.iter().zip(&other.tenants).all(|(a, b)| {
                a.name == b.name
                    && a.admitted == b.admitted
                    && a.completed == b.completed
                    && a.shed_overflow == b.shed_overflow
                    && a.shed_deadline == b.shed_deadline
                    && a.max_queue_depth == b.max_queue_depth
                    && f64_eq(a.p50_latency_seconds, b.p50_latency_seconds)
                    && f64_eq(a.p99_latency_seconds, b.p99_latency_seconds)
            });
        check("tenants", tenants_eq);
        check("admitted", self.admitted == other.admitted);
        check("completed", self.completed == other.completed);
        check("shed", self.shed == other.shed);
        check("rounds_formed", self.rounds_formed == other.rounds_formed);
        check(
            "partial_rounds",
            self.partial_rounds == other.partial_rounds,
        );
        check("depth_changes", self.depth_changes == other.depth_changes);
        check("initial_depth", self.initial_depth == other.initial_depth);
        check("final_depth", self.final_depth == other.final_depth);
        check(
            "p50_latency_seconds",
            f64_eq(self.p50_latency_seconds, other.p50_latency_seconds),
        );
        check(
            "p99_latency_seconds",
            f64_eq(self.p99_latency_seconds, other.p99_latency_seconds),
        );
        check(
            "offered_rate_per_second",
            f64_eq(self.offered_rate_per_second, other.offered_rate_per_second),
        );
        check(
            "served_samples_per_second",
            f64_eq(
                self.served_samples_per_second,
                other.served_samples_per_second,
            ),
        );
        check(
            "simulated_total_seconds",
            f64_eq(self.simulated_total_seconds, other.simulated_total_seconds),
        );
        check(
            "recovery_seconds",
            f64_eq(self.recovery_seconds, other.recovery_seconds),
        );
        check("devices_lost", self.devices_lost == other.devices_lost);
        out
    }

    /// Whether every counter matches `other` bitwise.
    pub fn bitwise_eq(&self, other: &ServeCounters) -> bool {
        self.diff(other).is_empty()
    }
}

/// The append-only event journal of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunJournal {
    events: Vec<EventRecord>,
}

impl RunJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        RunJournal::default()
    }

    /// Appends one event at virtual time `at`.
    pub fn push(&mut self, at: f64, event: RunEvent) {
        self.events.push(EventRecord { at, event });
    }

    /// The recorded events, in append order.
    pub fn records(&self) -> &[EventRecord] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the journal: one event per line, trailing newline.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for record in &self.events {
            out.push_str(&record.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a journal back from its text form. Blank lines and `#` comment
    /// lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Parse`] with the offending 1-based line number.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut events = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            events.push(EventRecord::from_line(trimmed, index + 1)?);
        }
        Ok(RunJournal { events })
    }

    /// Replays the journal's streaming events into [`StreamCounters`],
    /// ignoring serve and batch events.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Replay`] when the journal holds no complete
    /// stream run (missing `StreamStarted` or `StreamEnded`).
    pub fn replay_stream(&self) -> Result<StreamCounters> {
        let mut c = StreamCounters::default();
        let mut samples: u64 = 0;
        let mut started = false;
        let mut ended = false;
        for record in &self.events {
            match &record.event {
                RunEvent::StreamStarted {
                    rounds,
                    round_size,
                    samples: total,
                    devices: _,
                } => {
                    started = true;
                    c.rounds = *rounds as usize;
                    c.round_size = *round_size as usize;
                    samples = *total;
                }
                RunEvent::EpochStarted { .. } => c.epochs += 1,
                RunEvent::Delivery { device, bytes } => {
                    c.bytes_on_wire += bytes;
                    *c.per_device_wire_bytes.entry(*device as usize).or_insert(0) += bytes;
                }
                RunEvent::ControlFrame { .. } => c.control_frames += 1,
                RunEvent::DataFrame { .. } => c.data_frames += 1,
                RunEvent::Heartbeat { .. } => c.heartbeats_seen += 1,
                RunEvent::StaleControlFrame { .. } => c.stale_control_frames += 1,
                RunEvent::StaleHeartbeat { .. } => c.stale_heartbeats += 1,
                RunEvent::CorruptFrame { .. } => c.corrupt_frames += 1,
                RunEvent::DuplicateFrame { .. } => c.duplicate_frames += 1,
                RunEvent::DroppedHeartbeat { .. } => c.dropped_heartbeats += 1,
                RunEvent::Retry { .. } => c.retries += 1,
                RunEvent::RetryCost { seconds } => c.retry_seconds += seconds,
                RunEvent::RoundFused {
                    round,
                    degraded: true,
                    ..
                } => c.degraded_rounds.push(*round),
                RunEvent::RoundFused { .. } => {}
                RunEvent::EpochEnded { max_in_flight, .. } => {
                    c.max_rounds_in_flight = c.max_rounds_in_flight.max(*max_in_flight as usize);
                }
                RunEvent::DeviceRounds { device, rounds } => {
                    *c.per_device_rounds.entry(*device as usize).or_insert(0) += rounds;
                }
                RunEvent::DeviceDead { device } => c.devices_lost.push(*device as usize),
                RunEvent::DeviceJoined { device, rejoin } => {
                    c.devices_joined.push(*device as usize);
                    if *rejoin {
                        c.rejoins += 1;
                    }
                }
                RunEvent::Replan { missing, .. } => {
                    c.repartitions += 1;
                    c.missing_sub_models = missing.iter().map(|&m| m as usize).collect();
                }
                RunEvent::RoundsReplayed { samples, .. } => {
                    c.samples_replayed += *samples as usize;
                }
                RunEvent::Recovery { seconds } => c.recovery_seconds += seconds,
                RunEvent::StreamEnded {
                    steady_state_samples_per_second,
                } => {
                    ended = true;
                    c.steady_state_samples_per_second = *steady_state_samples_per_second;
                    c.simulated_total_seconds = record.at;
                }
                // Serve and batch events belong to the other replays.
                _ => {}
            }
        }
        if !started {
            return Err(MetricsError::Replay {
                message: "no StreamStarted event in the journal".to_string(),
            });
        }
        if !ended {
            return Err(MetricsError::Replay {
                message: "journal records a stream that never ended".to_string(),
            });
        }
        // Mirror the live division exactly, including the idle-stream branch.
        c.effective_samples_per_second = if c.simulated_total_seconds > 0.0 {
            samples as f64 / c.simulated_total_seconds
        } else {
            f64::INFINITY
        };
        Ok(c)
    }

    /// Replays the journal's serving events into [`ServeCounters`], ignoring
    /// stream and batch events.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Replay`] when the journal holds no complete
    /// serving drill, names an out-of-range tenant, or carries a round whose
    /// size disagrees with its dispatch events.
    pub fn replay_serve(&self) -> Result<ServeCounters> {
        let mut c = ServeCounters::default();
        let mut capacity: usize = 0;
        let mut started = false;
        let mut ended = false;
        // Requests dispatched since the last formed round: (tenant, arrival).
        let mut pending: Vec<(usize, f64)> = Vec::new();
        let mut per_tenant: Vec<Vec<f64>> = Vec::new();
        let mut all: Vec<f64> = Vec::new();
        let tenant_err = |t: usize| MetricsError::Replay {
            message: format!("event names tenant {t} beyond the registered set"),
        };
        for record in &self.events {
            match &record.event {
                RunEvent::ServeStarted {
                    tenants,
                    capacity: cap,
                    initial_depth,
                    offered_rate_per_second,
                } => {
                    started = true;
                    capacity = *cap as usize;
                    c.initial_depth = *initial_depth as usize;
                    c.offered_rate_per_second = *offered_rate_per_second;
                    c.tenants = vec![TenantRow::default(); *tenants as usize];
                    per_tenant = vec![Vec::new(); *tenants as usize];
                }
                RunEvent::TenantRegistered { tenant, name } => {
                    let t = *tenant as usize;
                    let row = c.tenants.get_mut(t).ok_or_else(|| tenant_err(t))?;
                    row.name.clone_from(name);
                }
                RunEvent::RequestAdmitted { tenant, .. } => {
                    let t = *tenant as usize;
                    c.tenants.get_mut(t).ok_or_else(|| tenant_err(t))?.admitted += 1;
                }
                RunEvent::QueueDepth { tenant, depth } => {
                    let t = *tenant as usize;
                    let row = c.tenants.get_mut(t).ok_or_else(|| tenant_err(t))?;
                    row.max_queue_depth = row.max_queue_depth.max(*depth as usize);
                }
                RunEvent::RequestShedOverflow { tenant, .. } => {
                    let t = *tenant as usize;
                    c.tenants
                        .get_mut(t)
                        .ok_or_else(|| tenant_err(t))?
                        .shed_overflow += 1;
                }
                RunEvent::RequestShedDeadline { tenant, .. } => {
                    let t = *tenant as usize;
                    c.tenants
                        .get_mut(t)
                        .ok_or_else(|| tenant_err(t))?
                        .shed_deadline += 1;
                }
                RunEvent::RequestDispatched {
                    tenant,
                    arrival_seconds,
                    ..
                } => {
                    let t = *tenant as usize;
                    c.tenants.get_mut(t).ok_or_else(|| tenant_err(t))?.completed += 1;
                    pending.push((t, *arrival_seconds));
                }
                RunEvent::DepthChanged { round, from, to } => {
                    c.depth_changes.push(DepthStep {
                        round: *round,
                        from: *from as usize,
                        to: *to as usize,
                    });
                }
                RunEvent::ServeCrash { device, .. } => {
                    c.devices_lost.push(*device as usize);
                }
                RunEvent::ServeRecovery { seconds } => c.recovery_seconds += seconds,
                RunEvent::ServeRound {
                    completion_seconds,
                    size,
                    ..
                } => {
                    if pending.len() != *size as usize {
                        return Err(MetricsError::Replay {
                            message: format!(
                                "round of size {size} but {} dispatch events precede it",
                                pending.len()
                            ),
                        });
                    }
                    c.rounds_formed += 1;
                    if (*size as usize) < capacity {
                        c.partial_rounds += 1;
                    }
                    // Same fold the live drill uses for `end_seconds`.
                    c.simulated_total_seconds =
                        f64::max(c.simulated_total_seconds, *completion_seconds);
                    for &(tenant, arrival) in &pending {
                        let latency = completion_seconds - arrival;
                        per_tenant
                            .get_mut(tenant)
                            .ok_or_else(|| tenant_err(tenant))?
                            .push(latency);
                        all.push(latency);
                    }
                    pending.clear();
                }
                RunEvent::ServeEnded => ended = true,
                // Stream and batch events belong to the other replays.
                _ => {}
            }
        }
        if !started {
            return Err(MetricsError::Replay {
                message: "no ServeStarted event in the journal".to_string(),
            });
        }
        if !ended {
            return Err(MetricsError::Replay {
                message: "journal records a serving drill that never ended".to_string(),
            });
        }
        all.sort_by(f64::total_cmp);
        for lats in &mut per_tenant {
            lats.sort_by(f64::total_cmp);
        }
        for (row, lats) in c.tenants.iter_mut().zip(&per_tenant) {
            row.p50_latency_seconds = percentile(lats, 0.50);
            row.p99_latency_seconds = percentile(lats, 0.99);
        }
        c.admitted = c.tenants.iter().map(|t| t.admitted).sum();
        c.completed = c.tenants.iter().map(|t| t.completed).sum();
        c.shed = c
            .tenants
            .iter()
            .map(|t| t.shed_overflow + t.shed_deadline)
            .sum();
        c.p50_latency_seconds = percentile(&all, 0.50);
        c.p99_latency_seconds = percentile(&all, 0.99);
        c.served_samples_per_second = if c.simulated_total_seconds > 0.0 {
            c.completed as f64 / c.simulated_total_seconds
        } else {
            0.0
        };
        c.final_depth = c
            .depth_changes
            .last()
            .map_or(c.initial_depth, |step| step.to);
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplanCause;

    fn stream_fixture() -> RunJournal {
        let mut j = RunJournal::new();
        j.push(
            0.0,
            RunEvent::StreamStarted {
                rounds: 4,
                round_size: 2,
                samples: 8,
                devices: 2,
            },
        );
        j.push(0.0, RunEvent::EpochStarted { epoch: 1 });
        for device in 0..2u64 {
            j.push(
                0.0,
                RunEvent::Delivery {
                    device,
                    bytes: 100 + device,
                },
            );
            j.push(0.0, RunEvent::ControlFrame { device });
            j.push(
                0.0,
                RunEvent::Heartbeat {
                    device,
                    sequence: 1,
                },
            );
            j.push(0.0, RunEvent::DataFrame { device });
        }
        j.push(
            0.0,
            RunEvent::Retry {
                device: 1,
                attempt: 1,
            },
        );
        j.push(0.0, RunEvent::RetryCost { seconds: 0.25 });
        j.push(
            0.0,
            RunEvent::RoundFused {
                round: 0,
                samples: 2,
                degraded: true,
            },
        );
        j.push(
            1.0,
            RunEvent::EpochEnded {
                epoch: 1,
                max_in_flight: 2,
            },
        );
        j.push(
            1.0,
            RunEvent::DeviceRounds {
                device: 0,
                rounds: 4,
            },
        );
        j.push(
            1.0,
            RunEvent::DeviceRounds {
                device: 1,
                rounds: 0,
            },
        );
        j.push(1.0, RunEvent::DeviceDead { device: 1 });
        j.push(
            1.0,
            RunEvent::Replan {
                cause: ReplanCause::Death,
                missing: vec![2],
            },
        );
        j.push(
            1.0,
            RunEvent::RoundsReplayed {
                rounds: 1,
                samples: 2,
            },
        );
        j.push(1.0, RunEvent::Recovery { seconds: 0.5 });
        j.push(
            2.0,
            RunEvent::StreamEnded {
                steady_state_samples_per_second: 4.0,
            },
        );
        j
    }

    #[test]
    fn stream_replay_folds_every_counter() {
        let c = stream_fixture().replay_stream().unwrap();
        assert_eq!(c.rounds, 4);
        assert_eq!(c.round_size, 2);
        assert_eq!(c.epochs, 1);
        assert_eq!(c.heartbeats_seen, 2);
        assert_eq!(c.control_frames, 2);
        assert_eq!(c.data_frames, 2);
        assert_eq!(c.bytes_on_wire, 201);
        assert_eq!(c.per_device_wire_bytes[&0], 100);
        assert_eq!(c.per_device_wire_bytes[&1], 101);
        assert_eq!(c.per_device_rounds[&0], 4);
        assert_eq!(c.per_device_rounds[&1], 0);
        assert_eq!(c.devices_lost, vec![1]);
        assert_eq!(c.retries, 1);
        assert_eq!(c.retry_seconds, 0.25);
        assert_eq!(c.degraded_rounds, vec![0]);
        assert_eq!(c.missing_sub_models, vec![2]);
        assert_eq!(c.repartitions, 1);
        assert_eq!(c.samples_replayed, 2);
        assert_eq!(c.recovery_seconds, 0.5);
        assert_eq!(c.max_rounds_in_flight, 2);
        assert_eq!(c.simulated_total_seconds, 2.0);
        assert_eq!(c.effective_samples_per_second, 4.0);
        let again = stream_fixture().replay_stream().unwrap();
        assert!(c.bitwise_eq(&again));
        assert!(c.diff(&again).is_empty());
    }

    #[test]
    fn journal_text_round_trips_and_replays_identically() {
        let journal = stream_fixture();
        let text = journal.to_text();
        let back = RunJournal::from_text(&text).unwrap();
        assert_eq!(back, journal);
        assert_eq!(back.len(), journal.len());
        assert!(!back.is_empty());
        assert!(journal
            .replay_stream()
            .unwrap()
            .bitwise_eq(&back.replay_stream().unwrap()));
        // Comments and blank lines are tolerated.
        let annotated = format!("# post-mortem dump\n\n{text}");
        assert_eq!(RunJournal::from_text(&annotated).unwrap(), journal);
    }

    #[test]
    fn incomplete_journals_are_replay_errors() {
        let empty = RunJournal::new();
        assert!(matches!(
            empty.replay_stream(),
            Err(MetricsError::Replay { .. })
        ));
        assert!(matches!(
            empty.replay_serve(),
            Err(MetricsError::Replay { .. })
        ));
        let mut truncated = RunJournal::new();
        truncated.push(
            0.0,
            RunEvent::StreamStarted {
                rounds: 1,
                round_size: 1,
                samples: 1,
                devices: 1,
            },
        );
        assert!(matches!(
            truncated.replay_stream(),
            Err(MetricsError::Replay { .. })
        ));
        // A bad line surfaces as a parse error with its line number.
        let err = RunJournal::from_text("t=0 StreamStarted rounds=1\n").unwrap_err();
        assert!(matches!(err, MetricsError::Parse { line: 1, .. }));
    }

    #[test]
    fn serve_replay_reconstructs_tenant_rows_and_depth_chain() {
        let mut j = RunJournal::new();
        j.push(
            0.0,
            RunEvent::ServeStarted {
                tenants: 2,
                capacity: 2,
                initial_depth: 2,
                offered_rate_per_second: 3.5,
            },
        );
        j.push(
            0.0,
            RunEvent::TenantRegistered {
                tenant: 0,
                name: "interactive".to_string(),
            },
        );
        j.push(
            0.0,
            RunEvent::TenantRegistered {
                tenant: 1,
                name: "batch".to_string(),
            },
        );
        for id in 0..3u64 {
            j.push(0.1, RunEvent::RequestAdmitted { tenant: 0, id });
        }
        j.push(
            0.1,
            RunEvent::QueueDepth {
                tenant: 0,
                depth: 2,
            },
        );
        j.push(0.1, RunEvent::RequestShedOverflow { tenant: 0, id: 2 });
        j.push(0.2, RunEvent::RequestAdmitted { tenant: 1, id: 3 });
        j.push(
            0.2,
            RunEvent::QueueDepth {
                tenant: 1,
                depth: 1,
            },
        );
        j.push(
            0.3,
            RunEvent::RequestDispatched {
                tenant: 0,
                id: 0,
                arrival_seconds: 0.1,
            },
        );
        j.push(
            0.3,
            RunEvent::RequestDispatched {
                tenant: 1,
                id: 3,
                arrival_seconds: 0.2,
            },
        );
        j.push(
            0.3,
            RunEvent::DepthChanged {
                round: 0,
                from: 2,
                to: 3,
            },
        );
        j.push(
            0.3,
            RunEvent::ServeCrash {
                device: 1,
                round: 0,
            },
        );
        j.push(0.3, RunEvent::ServeRecovery { seconds: 0.4 });
        j.push(
            0.3,
            RunEvent::ServeRound {
                round: 0,
                start_seconds: 0.3,
                completion_seconds: 1.3,
                size: 2,
            },
        );
        j.push(
            0.9,
            RunEvent::RequestDispatched {
                tenant: 0,
                id: 1,
                arrival_seconds: 0.1,
            },
        );
        j.push(0.9, RunEvent::RequestShedDeadline { tenant: 0, id: 9 });
        j.push(
            0.9,
            RunEvent::ServeRound {
                round: 1,
                start_seconds: 0.9,
                completion_seconds: 1.9,
                size: 1,
            },
        );
        j.push(1.9, RunEvent::ServeEnded);
        let c = j.replay_serve().unwrap();
        assert_eq!(c.tenants[0].name, "interactive");
        assert_eq!(c.tenants[0].admitted, 3);
        assert_eq!(c.tenants[0].completed, 2);
        assert_eq!(c.tenants[0].shed_overflow, 1);
        assert_eq!(c.tenants[0].shed_deadline, 1);
        assert_eq!(c.tenants[0].max_queue_depth, 2);
        assert_eq!(c.tenants[1].completed, 1);
        assert_eq!(c.admitted, 4);
        assert_eq!(c.completed, 3);
        assert_eq!(c.shed, 2);
        assert_eq!(c.rounds_formed, 2);
        assert_eq!(c.partial_rounds, 1);
        assert_eq!(c.initial_depth, 2);
        assert_eq!(c.final_depth, 3);
        assert_eq!(c.depth_changes.len(), 1);
        assert_eq!(c.devices_lost, vec![1]);
        assert_eq!(c.recovery_seconds, 0.4);
        assert_eq!(c.simulated_total_seconds, 1.9);
        // p50 over [1.1, 1.2, 1.8] sorted.
        assert_eq!(c.p50_latency_seconds, 1.2);
        assert!(c.bitwise_eq(&j.replay_serve().unwrap()));
    }

    #[test]
    fn serve_replay_rejects_inconsistent_rounds_and_unknown_tenants() {
        let mut j = RunJournal::new();
        j.push(
            0.0,
            RunEvent::ServeStarted {
                tenants: 1,
                capacity: 2,
                initial_depth: 1,
                offered_rate_per_second: 1.0,
            },
        );
        j.push(0.0, RunEvent::RequestAdmitted { tenant: 5, id: 0 });
        assert!(matches!(j.replay_serve(), Err(MetricsError::Replay { .. })));
        let mut j = RunJournal::new();
        j.push(
            0.0,
            RunEvent::ServeStarted {
                tenants: 1,
                capacity: 2,
                initial_depth: 1,
                offered_rate_per_second: 1.0,
            },
        );
        j.push(
            0.0,
            RunEvent::ServeRound {
                round: 0,
                start_seconds: 0.0,
                completion_seconds: 1.0,
                size: 3,
            },
        );
        j.push(1.0, RunEvent::ServeEnded);
        assert!(matches!(j.replay_serve(), Err(MetricsError::Replay { .. })));
    }
}
