//! A dependency-free registry of counters, gauges and fixed-bucket
//! histograms with deterministic Prometheus-style text exposition.
//!
//! Determinism is the contract: families are exposed in lexicographic name
//! order, series within a family in lexicographic label order, histogram
//! buckets in ascending bound order with a trailing `+Inf`. Two registries
//! fed the same updates in the same order expose byte-identical text, which
//! is what the golden exposition test pins.
//!
//! All timestamps around this registry are *virtual* (the scheduler's
//! `SimClock`); the registry itself never reads a clock of any kind.

use std::collections::BTreeMap;

/// Default latency buckets in virtual seconds: two per decade from 1 ms to
/// 10 s, the range edge-cluster rounds actually land in.
pub const LATENCY_BUCKETS: [f64; 9] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0];

/// What kind of metric a family is, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Last-write-wins instantaneous value.
    Gauge,
    /// Fixed-bucket cumulative histogram.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One fixed-bucket histogram series.
#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; exposition sums them
    /// into the cumulative `le` form.
    counts: Vec<u64>,
    /// Observations above the last bound (the `+Inf` bucket).
    overflow: u64,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.sum += value;
        self.count += 1;
    }
}

/// A series key: sorted `(label, value)` pairs.
type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, Default, PartialEq)]
struct Family {
    kind: Option<MetricKind>,
    help: Option<String>,
    counters: BTreeMap<Labels, f64>,
    gauges: BTreeMap<Labels, f64>,
    histograms: BTreeMap<Labels, Histogram>,
}

/// The registry: a name-keyed map of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
    /// Histogram bounds per family, installed by [`MetricsRegistry::describe`]
    /// (falling back to [`LATENCY_BUCKETS`]).
    bounds: BTreeMap<String, Vec<f64>>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// Escapes a label value for exposition: backslash, double quote and
/// newline, per the Prometheus text format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a help string: backslash and newline only (quotes are legal).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_series(name: &str, labels: &Labels, suffix: &str, extra: Option<(&str, &str)>) -> String {
    let mut rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        rendered.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if rendered.is_empty() {
        format!("{name}{suffix}")
    } else {
        format!("{name}{suffix}{{{}}}", rendered.join(","))
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers family metadata: kind, help text and (for histograms) the
    /// bucket bounds. Idempotent; later calls overwrite the metadata.
    pub fn describe(&mut self, name: &str, kind: MetricKind, help: &str, buckets: Option<&[f64]>) {
        let family = self.families.entry(name.to_string()).or_default();
        family.kind = Some(kind);
        family.help = Some(help.to_string());
        if let Some(bounds) = buckets {
            self.bounds.insert(name.to_string(), bounds.to_vec());
        }
    }

    /// Adds `by` to a counter series, creating it at zero first.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], by: f64) {
        let family = self.families.entry(name.to_string()).or_default();
        family.kind.get_or_insert(MetricKind::Counter);
        *family.counters.entry(sorted_labels(labels)).or_insert(0.0) += by;
    }

    /// Sets a gauge series to `value`.
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let family = self.families.entry(name.to_string()).or_default();
        family.kind.get_or_insert(MetricKind::Gauge);
        family.gauges.insert(sorted_labels(labels), value);
    }

    /// Raises a gauge series to `value` if it is above the current reading —
    /// the high-water-mark idiom queue depths use.
    pub fn set_max(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let family = self.families.entry(name.to_string()).or_default();
        family.kind.get_or_insert(MetricKind::Gauge);
        let slot = family.gauges.entry(sorted_labels(labels)).or_insert(value);
        if value > *slot {
            *slot = value;
        }
    }

    /// Observes `value` into a histogram series, using the family's described
    /// buckets or [`LATENCY_BUCKETS`] when none were described.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let bounds = self
            .bounds
            .get(name)
            .cloned()
            .unwrap_or_else(|| LATENCY_BUCKETS.to_vec());
        let family = self.families.entry(name.to_string()).or_default();
        family.kind.get_or_insert(MetricKind::Histogram);
        family
            .histograms
            .entry(sorted_labels(labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Renders the registry as Prometheus text exposition format, version
    /// 0.0.4: `# HELP` / `# TYPE` headers then one line per series, families
    /// and series both in deterministic sorted order.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            if let Some(help) = &family.help {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            }
            if let Some(kind) = family.kind {
                out.push_str(&format!("# TYPE {name} {}\n", kind.exposition_name()));
            }
            for (labels, value) in &family.counters {
                out.push_str(&format!(
                    "{} {value}\n",
                    render_series(name, labels, "", None)
                ));
            }
            for (labels, value) in &family.gauges {
                out.push_str(&format!(
                    "{} {value}\n",
                    render_series(name, labels, "", None)
                ));
            }
            for (labels, histogram) in &family.histograms {
                let mut cumulative = 0u64;
                for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
                    cumulative += count;
                    let le = format!("{bound}");
                    out.push_str(&format!(
                        "{} {cumulative}\n",
                        render_series(name, labels, "_bucket", Some(("le", &le)))
                    ));
                }
                cumulative += histogram.overflow;
                out.push_str(&format!(
                    "{} {cumulative}\n",
                    render_series(name, labels, "_bucket", Some(("le", "+Inf")))
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    render_series(name, labels, "_sum", None),
                    histogram.sum
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    render_series(name, labels, "_count", None),
                    histogram.count
                ));
            }
        }
        out
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.families
            .get(name)
            .and_then(|f| f.counters.get(&sorted_labels(labels)))
            .copied()
            .unwrap_or(0.0)
    }

    /// Current value of a gauge series (`None` when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.families
            .get(name)
            .and_then(|f| f.gauges.get(&sorted_labels(labels)))
            .copied()
    }

    /// `(count, sum)` of a histogram series ((0, 0.0) when absent).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> (u64, f64) {
        self.families
            .get(name)
            .and_then(|f| f.histograms.get(&sorted_labels(labels)))
            .map_or((0, 0.0), |h| (h.count, h.sum))
    }

    /// True when nothing has been recorded or described.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_series_are_label_keyed() {
        let mut r = MetricsRegistry::new();
        r.add("frames_total", &[("device", "0")], 1.0);
        r.add("frames_total", &[("device", "0")], 2.0);
        r.add("frames_total", &[("device", "1")], 5.0);
        assert_eq!(r.counter("frames_total", &[("device", "0")]), 3.0);
        assert_eq!(r.counter("frames_total", &[("device", "1")]), 5.0);
        assert_eq!(r.counter("frames_total", &[("device", "9")]), 0.0);
        assert!(!r.is_empty());
    }

    #[test]
    fn gauges_last_write_and_high_water_variants() {
        let mut r = MetricsRegistry::new();
        r.set("depth", &[], 2.0);
        r.set("depth", &[], 1.0);
        assert_eq!(r.gauge("depth", &[]), Some(1.0));
        r.set_max("peak", &[], 3.0);
        r.set_max("peak", &[], 2.0);
        assert_eq!(r.gauge("peak", &[]), Some(3.0));
        assert_eq!(r.gauge("absent", &[]), None);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let mut r = MetricsRegistry::new();
        r.describe("lat", MetricKind::Histogram, "latency", Some(&[0.1, 1.0]));
        r.observe("lat", &[], 0.05);
        r.observe("lat", &[], 0.5);
        r.observe("lat", &[], 5.0);
        let text = r.expose();
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_count 3\n"));
        assert_eq!(r.histogram("lat", &[]), (3, 5.55));
        assert_eq!(r.histogram("absent", &[]), (0, 0.0));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = MetricsRegistry::new();
        r.add("odd", &[("name", "a\"b\\c\nd")], 1.0);
        let text = r.expose();
        assert!(text.contains("odd{name=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn exposition_order_is_deterministic() {
        let mut a = MetricsRegistry::new();
        a.add("zz", &[], 1.0);
        a.add("aa", &[("t", "1")], 1.0);
        a.add("aa", &[("t", "0")], 1.0);
        let mut b = MetricsRegistry::new();
        b.add("aa", &[("t", "0")], 1.0);
        b.add("zz", &[], 1.0);
        b.add("aa", &[("t", "1")], 1.0);
        assert_eq!(a.expose(), b.expose());
        let text = a.expose();
        let aa = text.find("aa{t=\"0\"}").unwrap();
        let aa1 = text.find("aa{t=\"1\"}").unwrap();
        let zz = text.find("zz ").unwrap();
        assert!(aa < aa1 && aa1 < zz);
    }
}
