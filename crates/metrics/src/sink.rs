//! The recording handle instrumented code holds: a [`MetricsSink`].
//!
//! A sink is either *disabled* — the default, a `None` that makes every
//! `record` call a branch-and-return no-op so the hot paths pay nothing —
//! or *recording*, in which case each event is appended to a [`RunJournal`]
//! and folded into a [`MetricsRegistry`] at the same time. Cloning a
//! recording sink shares the underlying store, which is how one sink threads
//! through scheduler, admission queue and transport and still produces a
//! single ordered journal.

use std::sync::{Arc, Mutex, PoisonError};

use crate::event::RunEvent;
use crate::journal::RunJournal;
use crate::registry::{MetricKind, MetricsRegistry, LATENCY_BUCKETS};

#[derive(Debug, Default)]
struct SinkInner {
    registry: MetricsRegistry,
    journal: RunJournal,
}

/// A shareable event sink; see the module docs for the two states.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    inner: Option<Arc<Mutex<SinkInner>>>,
}

/// Two sinks are equal when both are disabled or both share one store.
/// (Needed so config structs that embed a sink can keep deriving
/// `PartialEq`; content comparison would race with concurrent recorders.)
impl PartialEq for MetricsSink {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl MetricsSink {
    /// The no-op sink instrumented code defaults to.
    pub fn disabled() -> Self {
        MetricsSink::default()
    }

    /// A live sink with an empty registry and journal. The registry comes
    /// pre-described so exposition carries `# HELP` / `# TYPE` headers.
    pub fn recording() -> Self {
        let mut registry = MetricsRegistry::new();
        describe_families(&mut registry);
        MetricsSink {
            inner: Some(Arc::new(Mutex::new(SinkInner {
                registry,
                journal: RunJournal::new(),
            }))),
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event at virtual time `at`: journals it and updates the
    /// registry. A no-op on a disabled sink.
    pub fn record(&self, at: f64, event: RunEvent) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut guard = inner.lock().unwrap_or_else(PoisonError::into_inner);
        apply_event(&mut guard.registry, &event);
        guard.journal.push(at, event);
    }

    /// Prometheus text exposition of the registry; empty when disabled.
    pub fn expose(&self) -> String {
        match &self.inner {
            Some(inner) => inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .registry
                .expose(),
            None => String::new(),
        }
    }

    /// A snapshot of the journal so far; empty when disabled.
    pub fn journal(&self) -> RunJournal {
        match &self.inner {
            Some(inner) => inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .journal
                .clone(),
            None => RunJournal::new(),
        }
    }
}

fn describe_families(r: &mut MetricsRegistry) {
    r.describe(
        "edvit_heartbeats_total",
        MetricKind::Counter,
        "Heartbeat control frames observed by the fusion worker",
        None,
    );
    r.describe(
        "edvit_frames_total",
        MetricKind::Counter,
        "Frames observed, by kind (control/data)",
        None,
    );
    r.describe(
        "edvit_wire_bytes_total",
        MetricKind::Counter,
        "Encoded bytes on the wire, by sending device",
        None,
    );
    r.describe(
        "edvit_frame_anomalies_total",
        MetricKind::Counter,
        "Faulted or rejected deliveries, by kind",
        None,
    );
    r.describe(
        "edvit_retries_total",
        MetricKind::Counter,
        "Data-frame re-requests issued",
        None,
    );
    r.describe(
        "edvit_retry_seconds_total",
        MetricKind::Counter,
        "Virtual seconds spent in retry backoff",
        None,
    );
    r.describe(
        "edvit_rounds_fused_total",
        MetricKind::Counter,
        "Rounds fused, by degraded flag",
        None,
    );
    r.describe(
        "edvit_epochs_total",
        MetricKind::Counter,
        "Membership epochs executed",
        None,
    );
    r.describe(
        "edvit_devices_lost_total",
        MetricKind::Counter,
        "Devices declared dead",
        None,
    );
    r.describe(
        "edvit_devices_joined_total",
        MetricKind::Counter,
        "Devices admitted mid-stream, by rejoin flag",
        None,
    );
    r.describe(
        "edvit_replans_total",
        MetricKind::Counter,
        "Planner re-runs, by cause",
        None,
    );
    r.describe(
        "edvit_samples_replayed_total",
        MetricKind::Counter,
        "Samples recomputed after device deaths",
        None,
    );
    r.describe(
        "edvit_recovery_seconds_total",
        MetricKind::Counter,
        "Virtual seconds charged to crash recovery",
        None,
    );
    r.describe(
        "edvit_requests_total",
        MetricKind::Counter,
        "Serving requests, by tenant and outcome",
        None,
    );
    r.describe(
        "edvit_queue_depth_peak",
        MetricKind::Gauge,
        "Deepest each tenant queue grew",
        None,
    );
    r.describe(
        "edvit_pipeline_depth",
        MetricKind::Gauge,
        "Current adaptive pipeline depth",
        None,
    );
    r.describe(
        "edvit_serve_rounds_total",
        MetricKind::Counter,
        "Rounds the serving batcher dispatched",
        None,
    );
    r.describe(
        "edvit_round_latency_seconds",
        MetricKind::Histogram,
        "Virtual wall time from round start to fused completion",
        Some(&LATENCY_BUCKETS),
    );
    r.describe(
        "edvit_batches_total",
        MetricKind::Counter,
        "One-shot batch executions",
        None,
    );
    r.describe(
        "edvit_batch_samples_total",
        MetricKind::Counter,
        "Samples pushed through one-shot batch executions",
        None,
    );
}

/// Folds one event into the registry. Pure function of (event) so the
/// registry stays a deterministic projection of the journal.
fn apply_event(r: &mut MetricsRegistry, event: &RunEvent) {
    match event {
        RunEvent::Delivery { device, bytes } => {
            r.add(
                "edvit_wire_bytes_total",
                &[("device", &device.to_string())],
                *bytes as f64,
            );
        }
        RunEvent::ControlFrame { .. } => {
            r.add("edvit_frames_total", &[("kind", "control")], 1.0);
        }
        RunEvent::DataFrame { .. } => {
            r.add("edvit_frames_total", &[("kind", "data")], 1.0);
        }
        RunEvent::Heartbeat { .. } => {
            r.add("edvit_heartbeats_total", &[], 1.0);
        }
        RunEvent::StaleControlFrame { .. } => {
            r.add(
                "edvit_frame_anomalies_total",
                &[("kind", "stale_control")],
                1.0,
            );
        }
        RunEvent::StaleHeartbeat { .. } => {
            r.add(
                "edvit_frame_anomalies_total",
                &[("kind", "stale_heartbeat")],
                1.0,
            );
        }
        RunEvent::CorruptFrame { .. } => {
            r.add("edvit_frame_anomalies_total", &[("kind", "corrupt")], 1.0);
        }
        RunEvent::DuplicateFrame { .. } => {
            r.add("edvit_frame_anomalies_total", &[("kind", "duplicate")], 1.0);
        }
        RunEvent::DroppedHeartbeat { .. } => {
            r.add(
                "edvit_frame_anomalies_total",
                &[("kind", "dropped_heartbeat")],
                1.0,
            );
        }
        RunEvent::Retry { .. } => {
            r.add("edvit_retries_total", &[], 1.0);
        }
        RunEvent::RetryCost { seconds } => {
            r.add("edvit_retry_seconds_total", &[], *seconds);
        }
        RunEvent::RoundFused { degraded, .. } => {
            let flag = if *degraded { "true" } else { "false" };
            r.add("edvit_rounds_fused_total", &[("degraded", flag)], 1.0);
        }
        RunEvent::EpochStarted { .. } => {
            r.add("edvit_epochs_total", &[], 1.0);
        }
        RunEvent::DeviceDead { .. } => {
            r.add("edvit_devices_lost_total", &[], 1.0);
        }
        RunEvent::DeviceJoined { rejoin, .. } => {
            let flag = if *rejoin { "true" } else { "false" };
            r.add("edvit_devices_joined_total", &[("rejoin", flag)], 1.0);
        }
        RunEvent::Replan { cause, .. } => {
            r.add("edvit_replans_total", &[("cause", cause.as_str())], 1.0);
        }
        RunEvent::RoundsReplayed { samples, .. } => {
            r.add("edvit_samples_replayed_total", &[], *samples as f64);
        }
        RunEvent::Recovery { seconds } | RunEvent::ServeRecovery { seconds } => {
            r.add("edvit_recovery_seconds_total", &[], *seconds);
        }
        RunEvent::ServeStarted { initial_depth, .. } => {
            r.set("edvit_pipeline_depth", &[], *initial_depth as f64);
        }
        RunEvent::RequestAdmitted { tenant, .. } => {
            r.add(
                "edvit_requests_total",
                &[("tenant", &tenant.to_string()), ("outcome", "admitted")],
                1.0,
            );
        }
        RunEvent::QueueDepth { tenant, depth } => {
            r.set_max(
                "edvit_queue_depth_peak",
                &[("tenant", &tenant.to_string())],
                *depth as f64,
            );
        }
        RunEvent::RequestShedOverflow { tenant, .. } => {
            r.add(
                "edvit_requests_total",
                &[
                    ("tenant", &tenant.to_string()),
                    ("outcome", "shed_overflow"),
                ],
                1.0,
            );
        }
        RunEvent::RequestShedDeadline { tenant, .. } => {
            r.add(
                "edvit_requests_total",
                &[
                    ("tenant", &tenant.to_string()),
                    ("outcome", "shed_deadline"),
                ],
                1.0,
            );
        }
        RunEvent::RequestDispatched { tenant, .. } => {
            r.add(
                "edvit_requests_total",
                &[("tenant", &tenant.to_string()), ("outcome", "dispatched")],
                1.0,
            );
        }
        RunEvent::DepthChanged { to, .. } => {
            r.set("edvit_pipeline_depth", &[], *to as f64);
        }
        RunEvent::ServeCrash { .. } => {
            r.add("edvit_devices_lost_total", &[], 1.0);
        }
        RunEvent::ServeRound {
            start_seconds,
            completion_seconds,
            ..
        } => {
            r.add("edvit_serve_rounds_total", &[], 1.0);
            r.observe(
                "edvit_round_latency_seconds",
                &[],
                completion_seconds - start_seconds,
            );
        }
        RunEvent::BatchStarted { samples, .. } => {
            r.add("edvit_batches_total", &[], 1.0);
            r.add("edvit_batch_samples_total", &[], *samples as f64);
        }
        // Lifecycle markers that carry no registry-shaped data; the journal
        // still keeps them for replay.
        RunEvent::StreamStarted { .. }
        | RunEvent::EpochEnded { .. }
        | RunEvent::DeviceRounds { .. }
        | RunEvent::StreamEnded { .. }
        | RunEvent::TenantRegistered { .. }
        | RunEvent::ServeEnded
        | RunEvent::BatchEnded { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_cheap_no_op() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(
            0.0,
            RunEvent::Heartbeat {
                device: 0,
                sequence: 1,
            },
        );
        assert!(sink.journal().is_empty());
        assert_eq!(sink.expose(), "");
        assert_eq!(sink, MetricsSink::default());
    }

    #[test]
    fn recording_sink_journals_and_exposes() {
        let sink = MetricsSink::recording();
        assert!(sink.is_enabled());
        sink.record(0.0, RunEvent::ControlFrame { device: 3 });
        sink.record(0.1, RunEvent::DataFrame { device: 3 });
        sink.record(
            0.1,
            RunEvent::Delivery {
                device: 3,
                bytes: 128,
            },
        );
        sink.record(
            0.2,
            RunEvent::ServeRound {
                round: 0,
                start_seconds: 0.1,
                completion_seconds: 0.2,
                size: 2,
            },
        );
        let journal = sink.journal();
        assert_eq!(journal.len(), 4);
        let text = sink.expose();
        assert!(text.contains("edvit_frames_total{kind=\"control\"} 1\n"));
        assert!(text.contains("edvit_frames_total{kind=\"data\"} 1\n"));
        assert!(text.contains("edvit_wire_bytes_total{device=\"3\"} 128\n"));
        assert!(text.contains("# TYPE edvit_round_latency_seconds histogram\n"));
        assert!(text.contains("edvit_round_latency_seconds_count 1\n"));
    }

    #[test]
    fn clones_share_one_store_and_compare_by_identity() {
        let sink = MetricsSink::recording();
        let clone = sink.clone();
        clone.record(
            0.0,
            RunEvent::Retry {
                device: 1,
                attempt: 1,
            },
        );
        assert_eq!(sink.journal().len(), 1);
        assert_eq!(sink, clone);
        assert_ne!(sink, MetricsSink::recording());
        assert_ne!(sink, MetricsSink::disabled());
    }

    #[test]
    fn registry_is_a_projection_of_the_journal() {
        let sink = MetricsSink::recording();
        for device in 0..4u64 {
            sink.record(
                0.0,
                RunEvent::Delivery {
                    device,
                    bytes: 10 * (device + 1),
                },
            );
            sink.record(
                0.0,
                RunEvent::QueueDepth {
                    tenant: device,
                    depth: device + 2,
                },
            );
        }
        sink.record(
            0.0,
            RunEvent::Replan {
                cause: crate::event::ReplanCause::Death,
                missing: vec![1, 2],
            },
        );
        let text = sink.expose();
        assert!(text.contains("edvit_wire_bytes_total{device=\"2\"} 30\n"));
        assert!(text.contains("edvit_queue_depth_peak{tenant=\"3\"} 5\n"));
        assert!(text.contains("edvit_replans_total{cause=\"death\"} 1\n"));
    }
}
