//! Runtime observability for the edge-ViT workspace.
//!
//! Two complementary artifacts, produced by one [`MetricsSink`] handle:
//!
//! - a [`MetricsRegistry`] of counters, gauges and fixed-bucket histograms
//!   with deterministic Prometheus-style text exposition ([`MetricsRegistry::expose`]),
//!   for at-a-glance dashboards; and
//! - an event-sourced [`RunJournal`] of typed [`RunEvent`]s, serializable to
//!   a line-oriented text form and replayable *offline* into
//!   [`StreamCounters`] / [`ServeCounters`] that reconstruct every
//!   accounting field of the live `StreamReport` / `ServeReport` **bitwise**
//!   ([`RunJournal::replay_stream`], [`RunJournal::replay_serve`]).
//!
//! Instrumented code holds a [`MetricsSink`], which defaults to a disabled
//! no-op; `MetricsSink::recording()` turns it on. All timestamps are virtual
//! (the schedulers' simulated clock) — this crate never reads wall time.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod event;
pub mod journal;
pub mod registry;
pub mod sink;

pub use error::{MetricsError, Result};
pub use event::{EventRecord, ReplanCause, RunEvent};
pub use journal::{DepthStep, RunJournal, ServeCounters, StreamCounters, TenantRow};
pub use registry::{MetricKind, MetricsRegistry, LATENCY_BUCKETS};
pub use sink::MetricsSink;
