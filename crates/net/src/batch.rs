//! One-shot batch inference over loopback TCP: the socket-backed twin of
//! [`edvit_edge::ClusterRuntime::run`].
//!
//! Device workers are still threads (the *process* boundary lives in
//! `examples/cluster_proc.rs`), but every frame crosses a real socket: each
//! worker dials the coordinator, announces itself with a `Join` control
//! frame, ships its one encoded feature-batch frame and departs with a
//! `Leave`. The report mirrors the in-process runtime's accounting exactly —
//! `payload_bytes`, `per_device_wire_bytes` and
//! `simulated_communication_seconds` are priced on the data frames alone, so
//! they match the sim run bit for bit; `bytes_on_wire` additionally counts
//! the join/leave control frames that actually crossed the wire (one
//! [`edvit_edge::wire::CONTROL_FRAME_LEN`]-byte frame each way per device).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use edvit_edge::{
    EdgeError, FeatureBatchMessage, FusionFn, NetworkConfig, PayloadCodec, RuntimeReport,
    SubModelFn, WireFrame,
};
use edvit_tensor::Tensor;

use crate::cluster::{Coordinator, WorkerClient};
use crate::framing::{read_envelope, Envelope};

/// Runs one batch of samples through the sub-model executors with every frame
/// carried over a loopback TCP socket, fusing per-sample features in
/// sub-model order — the TCP backend behind the unified
/// `run_distributed(.., transport: Tcp)` entry point.
///
/// Outputs are bitwise identical to
/// [`edvit_edge::ClusterRuntime::run`] with the same codec: the socket
/// carries the exact encoded frames the channel would.
///
/// # Errors
///
/// Returns [`EdgeError::InvalidConfig`] for empty inputs or executor lists,
/// and [`EdgeError::Runtime`] when a socket, executor or the fusion function
/// fails.
pub fn run_batch_over_tcp(
    inputs: &[Tensor],
    executors: Vec<SubModelFn>,
    mut fusion: FusionFn,
    codec: PayloadCodec,
    network: &NetworkConfig,
) -> edvit_edge::Result<RuntimeReport> {
    if inputs.is_empty() {
        return Err(EdgeError::InvalidConfig {
            message: "no input samples".to_string(),
        });
    }
    if executors.is_empty() {
        return Err(EdgeError::InvalidConfig {
            message: "no sub-model executors".to_string(),
        });
    }
    let started = Instant::now();
    let num_sub_models = executors.len();
    let shared_inputs: Arc<Vec<Tensor>> = Arc::new(inputs.to_vec());
    let coordinator = Coordinator::bind().map_err(runtime_err)?;
    let addr = coordinator.local_addr();
    let (timing_tx, timing_rx) = channel::unbounded::<(usize, f64)>();
    let (err_tx, err_rx) = channel::unbounded::<String>();

    struct Collected {
        per_sample: BTreeMap<u32, BTreeMap<u32, Tensor>>,
        frames: usize,
        payload_bytes: u64,
        bytes_on_wire: u64,
        per_device_wire_bytes: Vec<u64>,
        slowest_frame_seconds: f64,
    }

    let collected = crossbeam::scope(|scope| -> edvit_edge::Result<Collected> {
        for (sub_model_index, mut executor) in executors.into_iter().enumerate() {
            let timing_tx = timing_tx.clone();
            let err_tx = err_tx.clone();
            let inputs = Arc::clone(&shared_inputs);
            scope.spawn(move |_| {
                let client = match WorkerClient::connect(&addr, sub_model_index, 1.0) {
                    Ok(client) => client,
                    Err(e) => {
                        let _ = err_tx.send(format!("device {sub_model_index}: {e}"));
                        return;
                    }
                };
                let device_started = Instant::now();
                let encoded = encode_device_batch(sub_model_index, &mut executor, &inputs, codec);
                let _ = timing_tx.send((sub_model_index, device_started.elapsed().as_secs_f64()));
                match encoded {
                    Ok(frame) => {
                        // A dead socket means the collector already failed;
                        // stop quietly, exactly as the channel workers do.
                        let mut client = client;
                        if client.send_frame(&frame).is_ok() {
                            let _ = client.leave();
                        }
                    }
                    Err(message) => {
                        let _ = client.fail(message);
                    }
                }
            });
        }
        drop(timing_tx);
        drop(err_tx);

        // Collect on this thread while the workers run, so a batch frame
        // larger than the kernel's socket buffers cannot deadlock the join.
        let workers = coordinator
            .accept_workers(num_sub_models)
            .map_err(runtime_err)?;
        let mut collected = Collected {
            per_sample: BTreeMap::new(),
            frames: 0,
            payload_bytes: 0,
            bytes_on_wire: workers.iter().map(|w| w.join_bytes).sum(),
            per_device_wire_bytes: vec![0u64; num_sub_models],
            slowest_frame_seconds: 0.0,
        };
        for worker in workers {
            let device = worker.device_id;
            let mut stream = worker.into_stream();
            loop {
                let envelope = read_envelope(&mut stream).map_err(|e| EdgeError::Runtime {
                    message: format!("device {device}: {e}"),
                })?;
                let frame = match envelope {
                    None => break,
                    Some(Envelope::Error(message)) => {
                        return Err(EdgeError::Runtime { message });
                    }
                    Some(Envelope::Frame(frame)) => frame,
                };
                let wire_bytes = frame.len() as u64;
                match WireFrame::decode(frame)? {
                    WireFrame::FeatureBatch(batch) => {
                        collected.frames += 1;
                        collected.payload_bytes += batch.payload_bytes() as u64;
                        collected.bytes_on_wire += wire_bytes;
                        if let Some(slot) = collected
                            .per_device_wire_bytes
                            .get_mut(batch.sub_model as usize)
                        {
                            *slot += wire_bytes;
                        }
                        let t = network.transfer_seconds(wire_bytes);
                        if t > collected.slowest_frame_seconds {
                            collected.slowest_frame_seconds = t;
                        }
                        let sub_model = batch.sub_model;
                        for message in batch.into_messages() {
                            collected
                                .per_sample
                                .entry(message.sample_index)
                                .or_default()
                                .insert(sub_model, message.into_tensor());
                        }
                    }
                    WireFrame::Control(control) => {
                        // The graceful leave; joins were consumed at accept.
                        collected.bytes_on_wire += wire_bytes;
                        if control.kind != edvit_edge::ControlKind::Leave {
                            return Err(EdgeError::Runtime {
                                message: format!(
                                    "device {device} sent a {:?} control frame mid-batch",
                                    control.kind
                                ),
                            });
                        }
                    }
                    other => {
                        return Err(EdgeError::Runtime {
                            message: format!(
                                "device {device} shipped a {} frame, expected a batch",
                                other.kind_name()
                            ),
                        });
                    }
                }
            }
        }
        Ok(collected)
    })
    .map_err(|_| EdgeError::Runtime {
        message: "a device worker thread panicked".to_string(),
    })??;

    if let Ok(message) = err_rx.try_recv() {
        return Err(EdgeError::Runtime { message });
    }
    let mut per_device_compute_seconds = vec![0.0f64; num_sub_models];
    for (device, seconds) in &timing_rx {
        per_device_compute_seconds[device] = seconds;
    }

    // Fuse each sample's features in sub-model order — same loop, same
    // errors, same outputs as the in-process runtime.
    let mut outputs = Vec::with_capacity(inputs.len());
    for sample_index in 0..inputs.len() as u32 {
        let features =
            collected
                .per_sample
                .get(&sample_index)
                .ok_or_else(|| EdgeError::Runtime {
                    message: format!("no features received for sample {sample_index}"),
                })?;
        if features.len() != num_sub_models {
            return Err(EdgeError::Runtime {
                message: format!(
                    "sample {sample_index} received {} of {num_sub_models} features",
                    features.len()
                ),
            });
        }
        let refs: Vec<&Tensor> = features.values().collect();
        let concatenated = Tensor::concat_last_axis(&refs).map_err(|e| EdgeError::Runtime {
            message: format!("feature concatenation failed: {e}"),
        })?;
        let fused = fusion(&concatenated).map_err(|message| EdgeError::Runtime { message })?;
        outputs.push(fused);
    }

    let wall_clock_seconds = started.elapsed().as_secs_f64();
    let samples_per_second = if wall_clock_seconds > 0.0 {
        outputs.len() as f64 / wall_clock_seconds
    } else {
        f64::INFINITY
    };
    Ok(RuntimeReport {
        outputs,
        worker_threads: num_sub_models,
        per_device_compute_seconds,
        frames: collected.frames,
        codec,
        payload_bytes: collected.payload_bytes,
        bytes_on_wire: collected.bytes_on_wire,
        per_device_wire_bytes: collected.per_device_wire_bytes,
        simulated_communication_seconds: collected.slowest_frame_seconds,
        wall_clock_seconds,
        samples_per_second,
    })
}

fn runtime_err(e: crate::NetError) -> EdgeError {
    EdgeError::Runtime {
        message: e.to_string(),
    }
}

/// Runs one device's executor over every sample and packs the results into a
/// single encoded batch frame — the exact frame the in-process runtime ships.
fn encode_device_batch(
    sub_model_index: usize,
    executor: &mut SubModelFn,
    inputs: &[Tensor],
    codec: PayloadCodec,
) -> std::result::Result<bytes::Bytes, String> {
    let mut batch: Option<FeatureBatchMessage> = None;
    for (sample_index, sample) in inputs.iter().enumerate() {
        let feature = executor(sample)?;
        let slot =
            batch.get_or_insert_with(|| FeatureBatchMessage::new(sub_model_index, feature.numel()));
        slot.push_tensor(sample_index, &feature)
            .map_err(|e| format!("device {sub_model_index}: {e}"))?;
    }
    let batch = batch.ok_or_else(|| format!("device {sub_model_index} saw no samples"))?;
    Ok(batch.encode_with(codec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_edge::wire::CONTROL_FRAME_LEN;
    use edvit_edge::ClusterRuntime;

    fn constant_executor(value: f32, dim: usize) -> SubModelFn {
        Box::new(move |_input: &Tensor| Ok(Tensor::full(&[dim], value)))
    }

    fn demo_executors() -> Vec<SubModelFn> {
        vec![
            constant_executor(0.5, 4),
            constant_executor(-2.0, 3),
            constant_executor(1.25, 5),
        ]
    }

    #[test]
    fn tcp_batch_matches_the_sim_run_bit_for_bit() {
        let inputs: Vec<Tensor> = (0..6).map(|i| Tensor::full(&[2], i as f32)).collect();
        let network = NetworkConfig::paper_default();
        let fusion = || -> FusionFn { Box::new(|concat: &Tensor| Ok(concat.clone())) };
        let sim = ClusterRuntime::new(network)
            .run(&inputs, demo_executors(), fusion())
            .unwrap();
        let tcp = run_batch_over_tcp(
            &inputs,
            demo_executors(),
            fusion(),
            PayloadCodec::F32,
            &network,
        )
        .unwrap();
        assert_eq!(sim.outputs.len(), tcp.outputs.len());
        for (a, b) in sim.outputs.iter().zip(&tcp.outputs) {
            assert_eq!(a.data(), b.data(), "fused outputs must be bitwise equal");
        }
        assert_eq!(sim.frames, tcp.frames);
        assert_eq!(sim.payload_bytes, tcp.payload_bytes);
        assert_eq!(sim.per_device_wire_bytes, tcp.per_device_wire_bytes);
        assert_eq!(
            sim.simulated_communication_seconds,
            tcp.simulated_communication_seconds
        );
        // The socket run additionally carries one join and one leave control
        // frame per device.
        assert_eq!(
            tcp.bytes_on_wire,
            sim.bytes_on_wire + 3 * 2 * CONTROL_FRAME_LEN as u64
        );
    }

    #[test]
    fn codec_choice_survives_the_socket() {
        let inputs: Vec<Tensor> = (0..4).map(|_| Tensor::zeros(&[1])).collect();
        let network = NetworkConfig::paper_default();
        let fusion = || -> FusionFn { Box::new(|concat: &Tensor| Ok(concat.clone())) };
        let base = run_batch_over_tcp(
            &inputs,
            demo_executors(),
            fusion(),
            PayloadCodec::F32,
            &network,
        )
        .unwrap();
        let coded = run_batch_over_tcp(
            &inputs,
            demo_executors(),
            fusion(),
            PayloadCodec::F16,
            &network,
        )
        .unwrap();
        assert_eq!(coded.codec, PayloadCodec::F16);
        assert!(coded.bytes_on_wire < base.bytes_on_wire);
        // 0.5 / -2.0 / 1.25 are exactly representable in f16.
        for (a, b) in base.outputs.iter().zip(&coded.outputs) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn executor_failures_cross_the_socket_in_band() {
        let inputs = vec![Tensor::zeros(&[1])];
        let network = NetworkConfig::paper_default();
        let failing: SubModelFn = Box::new(|_| Err("device out of memory".to_string()));
        let fusion: FusionFn = Box::new(|c: &Tensor| Ok(c.clone()));
        let err = run_batch_over_tcp(&inputs, vec![failing], fusion, PayloadCodec::F32, &network)
            .unwrap_err();
        assert!(matches!(err, EdgeError::Runtime { .. }));
        assert!(err.to_string().contains("out of memory"), "{err}");
    }

    #[test]
    fn empty_inputs_and_executors_error() {
        let network = NetworkConfig::paper_default();
        let fusion = || -> FusionFn { Box::new(|c: &Tensor| Ok(c.clone())) };
        assert!(run_batch_over_tcp(
            &[],
            vec![constant_executor(1.0, 1)],
            fusion(),
            PayloadCodec::F32,
            &network
        )
        .is_err());
        assert!(run_batch_over_tcp(
            &[Tensor::zeros(&[1])],
            vec![],
            fusion(),
            PayloadCodec::F32,
            &network
        )
        .is_err());
    }
}
