//! # edvit-net
//!
//! The transport layer: the [`Transport`] trait the streaming scheduler
//! speaks, its two backends, and the multi-process cluster primitives.
//!
//! The trait was extracted from the scheduler's hard-wired crossbeam
//! plumbing, so its contract is exactly what the scheduler already relied
//! on: per-peer ordered bounded lanes, blocking sends as backpressure,
//! in-band peer errors, and a single `Closed` event for every way a peer can
//! go away. [`SimTransport`] keeps that plumbing bit for bit (bounded
//! channels, virtual clock, fully deterministic — every existing test,
//! chaos drill and failover example runs on it unchanged);
//! [`TcpTransport`] carries the same contract over loopback sockets with
//! real wall-clock heartbeat deadlines mapped from the scheduler's
//! round-denominated grace window.
//!
//! On top of the lanes sit the pieces a cluster of real OS processes is
//! assembled from: [`Coordinator`] / [`WorkerClient`] (join-handshake
//! admission, per-round collection, graceful leave) and
//! [`run_batch_over_tcp`] (the socket-backed twin of
//! [`edvit_edge::ClusterRuntime::run`], bitwise-identical outputs).
//!
//! The equivalence rule, stated once and enforced by the conformance suite:
//! **everything a report derives from frame *content* is
//! transport-independent** — predictions, fused outputs, payload and wire
//! byte counts, control-frame dedupe decisions are identical across
//! backends, because the same encoded bytes cross both. Only wall-clock
//! observations (which the reports label informational) may differ.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod cluster;
mod error;
mod framing;
mod tcp;
mod transport;

pub use batch::run_batch_over_tcp;
pub use cluster::{ClusterReport, Coordinator, RoundSpec, WorkerClient, WorkerConn};
pub use error::NetError;
pub use framing::{read_envelope, write_envelope, Envelope, TAG_ERROR, TAG_FRAME};
pub use tcp::{
    backoff_delay, connect_with_backoff, TcpTransport, CONNECT_ATTEMPTS, RECONNECT_BASE,
};
pub use transport::{
    transport_for, FrameRx, FrameTx, LaneClosed, LaneEvent, SimTransport, Transport,
};

pub use edvit_edge::TransportKind;

/// Convenience result alias for transport operations.
pub type Result<T> = std::result::Result<T, NetError>;
