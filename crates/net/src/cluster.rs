//! Multi-process cluster primitives: a fusion-side [`Coordinator`] that
//! admits workers via `Join` control frames, and a device-side
//! [`WorkerClient`] that streams rounds to it — the pieces
//! `examples/cluster_proc.rs` assembles into a cluster of real OS processes
//! on loopback.
//!
//! The coordinator's collection loop is the healthy-path twin of the
//! streaming scheduler's collector: frames are consumed round by round per
//! device, control frames pass the same [`ControlDeduper`], data frames
//! stash first-delivery-wins, and every sample fuses exactly once in
//! sub-model order — so a multi-process run produces bitwise-identical
//! outputs to the in-process sim run of the same deployment.

use std::collections::BTreeMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use edvit_edge::{ControlDeduper, ControlKind, ControlMessage, WireFrame};
use edvit_tensor::Tensor;

use crate::framing::{read_envelope, write_envelope, Envelope};
use crate::tcp::{connect_with_backoff, CONNECT_ATTEMPTS};
use crate::{NetError, Result};

/// Read timeout armed on every accepted worker socket: generous enough for a
/// child process to train/compute, bounded so a hung worker cannot wedge the
/// drill past its CI timeout.
const WORKER_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One admitted worker connection, as the `Join` handshake described it.
#[derive(Debug)]
pub struct WorkerConn {
    /// Device id the worker announced.
    pub device_id: usize,
    /// Capacity the worker offered (FLOP/s).
    pub capacity_flops: f64,
    /// Encoded bytes of the join frame (already received).
    pub join_bytes: u64,
    stream: TcpStream,
}

impl WorkerConn {
    /// Consumes the connection, handing the raw socket to a caller that runs
    /// its own collection loop (e.g. the TCP batch runner).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

/// Round structure of a collection run.
#[derive(Debug, Clone, Copy)]
pub struct RoundSpec {
    /// Samples per round (≥ 1).
    pub round_size: usize,
    /// Samples in the whole stream.
    pub total_samples: usize,
    /// Sub-models whose features every sample must fuse.
    pub num_sub_models: usize,
}

impl RoundSpec {
    fn total_rounds(&self) -> usize {
        self.total_samples.div_ceil(self.round_size.max(1))
    }

    fn round_span(&self, round: usize) -> std::ops::Range<usize> {
        let lo = round * self.round_size;
        let hi = (lo + self.round_size).min(self.total_samples);
        lo..hi
    }
}

/// What a multi-process collection run reports.
#[derive(Debug)]
pub struct ClusterReport {
    /// Fused output per input sample, in input order — every sample exactly
    /// once.
    pub outputs: Vec<Tensor>,
    /// Feature-batch data frames received.
    pub data_frames: usize,
    /// Control frames received (join + heartbeat + leave).
    pub control_frames: usize,
    /// Heartbeat frames among them.
    pub heartbeats_seen: u64,
    /// Encoded wire-frame bytes received (envelope framing not counted — the
    /// number prices the same quantity the sim scheduler's report does).
    pub bytes_on_wire: u64,
    /// Rounds each device closed with a fresh heartbeat or leave.
    pub per_device_rounds: BTreeMap<usize, u64>,
}

impl ClusterReport {
    /// Argmax prediction per sample, for classification-style fusion outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Protocol`] if any output is empty.
    pub fn predictions(&self) -> Result<Vec<usize>> {
        self.outputs
            .iter()
            .map(|o| {
                o.argmax().map_err(|e| NetError::Protocol {
                    message: format!("empty fusion output: {e}"),
                })
            })
            .collect()
    }
}

/// The fusion-side listener: admits workers and collects their rounds.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Coordinator {
    /// Binds a loopback listener on an OS-assigned port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Bind`] when the OS refuses the socket.
    pub fn bind() -> Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| NetError::Bind {
            message: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| NetError::Bind {
            message: e.to_string(),
        })?;
        Ok(Coordinator { listener, addr })
    }

    /// The address workers dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts exactly `count` workers, validating each one's `Join`
    /// handshake at the wire boundary (the decode path rejects e.g. a
    /// non-positive capacity offer). Connections may arrive in any order —
    /// the join frame, not the accept order, names the device.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Accept`] for socket failures or a worker that
    /// never completes its handshake, [`NetError::Protocol`] for a handshake
    /// that is not a valid join, and [`NetError::Protocol`] when two workers
    /// claim the same device id.
    pub fn accept_workers(&self, count: usize) -> Result<Vec<WorkerConn>> {
        let mut workers = Vec::with_capacity(count);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..count {
            let (stream, _) = self.listener.accept().map_err(|e| NetError::Accept {
                message: e.to_string(),
            })?;
            stream.set_nodelay(true).map_err(|e| NetError::io(&e))?;
            stream
                .set_read_timeout(Some(WORKER_READ_TIMEOUT))
                .map_err(|e| NetError::io(&e))?;
            let mut stream = stream;
            let envelope = read_envelope(&mut stream)
                .map_err(|e| NetError::Accept {
                    message: format!("worker handshake: {e}"),
                })?
                .ok_or_else(|| NetError::Accept {
                    message: "worker closed before its join handshake".to_string(),
                })?;
            let Envelope::Frame(frame) = envelope else {
                return Err(NetError::Protocol {
                    message: "worker opened with an error record, not a join frame".to_string(),
                });
            };
            let join_bytes = frame.len() as u64;
            let decoded = WireFrame::decode(frame).map_err(|e| NetError::Protocol {
                message: format!("worker handshake frame: {e}"),
            })?;
            let control = match decoded {
                WireFrame::Control(control) => control,
                other => {
                    return Err(NetError::Protocol {
                        message: format!(
                            "worker opened with a {} frame, expected a join",
                            other.kind_name()
                        ),
                    });
                }
            };
            if control.kind != ControlKind::Join {
                return Err(NetError::Protocol {
                    message: format!("worker opened with a {:?} control frame", control.kind),
                });
            }
            let device_id = control.device_id as usize;
            if !seen.insert(device_id) {
                return Err(NetError::Protocol {
                    message: format!("two workers claimed device id {device_id}"),
                });
            }
            workers.push(WorkerConn {
                device_id,
                capacity_flops: control.capacity_flops_per_second,
                join_bytes,
                stream,
            });
        }
        workers.sort_by_key(|w| w.device_id);
        Ok(workers)
    }

    /// Collects every round from the admitted workers and fuses each sample
    /// exactly once: the healthy path of the streaming scheduler's collector,
    /// over sockets. A device's round is closed by its fresh heartbeat (or
    /// leave), so the collector needs no per-device frame count; `fusion`
    /// maps a sample's concatenated feature vector (sub-model order) to its
    /// fused output.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when a worker connection dies mid-round,
    /// [`NetError::Protocol`] for non-conforming frames, duplicate fusion or
    /// an incomplete round, and propagates fusion failures as
    /// [`NetError::Protocol`].
    pub fn collect_rounds(
        workers: Vec<WorkerConn>,
        spec: &RoundSpec,
        fusion: &mut dyn FnMut(&Tensor) -> std::result::Result<Tensor, String>,
    ) -> Result<ClusterReport> {
        let mut report = ClusterReport {
            outputs: Vec::new(),
            data_frames: 0,
            control_frames: workers.len(),
            heartbeats_seen: 0,
            bytes_on_wire: workers.iter().map(|w| w.join_bytes).sum(),
            per_device_rounds: BTreeMap::new(),
        };
        let mut deduper = ControlDeduper::new();
        for worker in &workers {
            // Replay the handshake through the deduper so in-stream control
            // frames face the same monotonicity rules as in the scheduler.
            deduper.admit(worker.device_id as u32, ControlKind::Join, 0);
        }
        let mut streams: BTreeMap<usize, TcpStream> = workers
            .into_iter()
            .map(|w| (w.device_id, w.stream))
            .collect();
        // round -> sample -> (sub-model -> feature), first delivery wins.
        let mut partial: BTreeMap<usize, BTreeMap<usize, BTreeMap<u32, Tensor>>> = BTreeMap::new();
        let mut fused: Vec<Option<Tensor>> = vec![None; spec.total_samples];

        for round in 0..spec.total_rounds() {
            let expected_sequence = round as u64 + 1;
            for (&device, stream) in &mut streams {
                loop {
                    match next_frame(stream, device)? {
                        None => {
                            return Err(NetError::Io {
                                message: format!(
                                    "device {device} closed before finishing round {round}"
                                ),
                            })
                        }
                        Some(frame) => {
                            let closed = ingest(
                                frame,
                                device,
                                spec,
                                &mut deduper,
                                &mut partial,
                                &mut report,
                            )?;
                            if closed.is_some_and(|seq| seq >= expected_sequence) {
                                report
                                    .per_device_rounds
                                    .entry(device)
                                    .and_modify(|r| *r = (*r).max(expected_sequence))
                                    .or_insert(expected_sequence);
                                break;
                            }
                        }
                    }
                }
            }
            fuse_round(round, spec, &mut partial, &mut fused, fusion)?;
        }

        // Graceful tail: drain the leave announcements down to EOF.
        for (&device, stream) in &mut streams {
            while let Some(frame) = next_frame(stream, device)? {
                ingest(frame, device, spec, &mut deduper, &mut partial, &mut report)?;
            }
        }

        report.outputs = fused
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| NetError::Protocol {
                    message: format!("sample {i} was never fused"),
                })
            })
            .collect::<Result<Vec<Tensor>>>()?;
        Ok(report)
    }
}

/// Reads the next wire frame from a worker socket; `None` is a clean EOF.
fn next_frame(stream: &mut TcpStream, device: usize) -> Result<Option<Bytes>> {
    match read_envelope(stream) {
        Ok(Some(Envelope::Frame(frame))) => Ok(Some(frame)),
        Ok(Some(Envelope::Error(message))) => Err(NetError::Protocol {
            message: format!("device {device} reported: {message}"),
        }),
        Ok(None) => Ok(None),
        Err(e) => Err(NetError::Io {
            message: format!("device {device}: {e}"),
        }),
    }
}

/// Decodes and accounts one frame; returns the closing sequence when it was a
/// fresh heartbeat or leave.
fn ingest(
    encoded: Bytes,
    device: usize,
    spec: &RoundSpec,
    deduper: &mut ControlDeduper,
    partial: &mut BTreeMap<usize, BTreeMap<usize, BTreeMap<u32, Tensor>>>,
    report: &mut ClusterReport,
) -> Result<Option<u64>> {
    report.bytes_on_wire += encoded.len() as u64;
    let frame = WireFrame::decode(encoded).map_err(|e| NetError::Protocol {
        message: format!("device {device}: {e}"),
    })?;
    match frame {
        WireFrame::Control(control) => {
            report.control_frames += 1;
            let fresh = deduper.admit(control.device_id, control.kind, control.sequence);
            match control.kind {
                ControlKind::Heartbeat => {
                    report.heartbeats_seen += 1;
                    Ok(fresh.then_some(control.sequence))
                }
                ControlKind::Leave => Ok(fresh.then_some(control.sequence)),
                ControlKind::Join => Ok(None),
            }
        }
        WireFrame::FeatureBatch(batch) => {
            report.data_frames += 1;
            let sub_model = batch.sub_model;
            for single in batch.into_messages() {
                let sample = single.sample_index as usize;
                if sample >= spec.total_samples {
                    return Err(NetError::Protocol {
                        message: format!(
                            "device {device} shipped sample {sample} beyond the stream of {}",
                            spec.total_samples
                        ),
                    });
                }
                let round = sample / spec.round_size.max(1);
                partial
                    .entry(round)
                    .or_default()
                    .entry(sample)
                    .or_default()
                    .entry(sub_model)
                    .or_insert_with(|| single.into_tensor());
            }
            Ok(None)
        }
        WireFrame::Feature(_) => Err(NetError::Protocol {
            message: format!("device {device} shipped a single-feature frame, expected batches"),
        }),
    }
}

/// Fuses one complete round; every output slot is written exactly once.
fn fuse_round(
    round: usize,
    spec: &RoundSpec,
    partial: &mut BTreeMap<usize, BTreeMap<usize, BTreeMap<u32, Tensor>>>,
    fused: &mut [Option<Tensor>],
    fusion: &mut dyn FnMut(&Tensor) -> std::result::Result<Tensor, String>,
) -> Result<()> {
    let span = spec.round_span(round);
    let samples = partial.remove(&round).unwrap_or_default();
    if span.len() != samples.len()
        || samples
            .values()
            .any(|features| features.len() != spec.num_sub_models)
    {
        return Err(NetError::Protocol {
            message: format!(
                "round {round} incomplete after every device heartbeat: {}/{} samples present",
                samples.len(),
                span.len()
            ),
        });
    }
    for (sample, features) in samples {
        if fused.get(sample).is_none_or(Option::is_some) {
            return Err(NetError::Protocol {
                message: format!("sample {sample} would be fused twice or is out of range"),
            });
        }
        let refs: Vec<&Tensor> = features.values().collect();
        let concatenated = Tensor::concat_last_axis(&refs).map_err(|e| NetError::Protocol {
            message: format!("feature concatenation failed: {e}"),
        })?;
        let output = fusion(&concatenated).map_err(|message| NetError::Protocol { message })?;
        fused[sample] = Some(output);
    }
    Ok(())
}

/// Device-side client: joins the coordinator and streams rounds to it.
#[derive(Debug)]
pub struct WorkerClient {
    stream: TcpStream,
    device_id: usize,
    completed: u64,
}

impl WorkerClient {
    /// Dials the coordinator (with the round-denominated backoff schedule)
    /// and announces this device with a `Join` frame. `capacity_flops` must
    /// be positive — the wire decode path rejects a non-positive offer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Connect`] when the coordinator stays unreachable
    /// and [`NetError::Io`] when the handshake write fails.
    pub fn connect(addr: &SocketAddr, device_id: usize, capacity_flops: f64) -> Result<Self> {
        let stream = connect_with_backoff(addr, CONNECT_ATTEMPTS)?;
        stream.set_nodelay(true).map_err(|e| NetError::io(&e))?;
        let mut client = WorkerClient {
            stream,
            device_id,
            completed: 0,
        };
        let join = ControlMessage::join(device_id, capacity_flops).encode();
        client.send_frame(&join)?;
        Ok(client)
    }

    /// The device id this client announced.
    pub fn device_id(&self) -> usize {
        self.device_id
    }

    /// Ships one encoded wire frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the socket write fails.
    pub fn send_frame(&mut self, frame: &Bytes) -> Result<()> {
        write_envelope(&mut self.stream, &Envelope::Frame(frame.clone()))
            .map_err(|e| NetError::io(&e))
    }

    /// Closes the current round with a heartbeat; returns the new completed
    /// sequence.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the socket write fails.
    pub fn heartbeat(&mut self, capacity_flops: f64) -> Result<u64> {
        self.completed += 1;
        let beat =
            ControlMessage::heartbeat(self.device_id, self.completed, capacity_flops).encode();
        self.send_frame(&beat)?;
        Ok(self.completed)
    }

    /// Reports a fatal worker-side failure in-band, then closes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the socket write fails.
    pub fn fail(mut self, message: String) -> Result<()> {
        write_envelope(&mut self.stream, &Envelope::Error(message))
            .map_err(|e| NetError::io(&e))?;
        self.stream
            .shutdown(Shutdown::Write)
            .map_err(|e| NetError::io(&e))
    }

    /// Announces a graceful departure and half-closes the connection, so the
    /// coordinator's EOF lands after the leave frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the socket write fails.
    pub fn leave(mut self) -> Result<()> {
        let leave = ControlMessage::leave(self.device_id, self.completed).encode();
        self.send_frame(&leave)?;
        self.stream
            .shutdown(Shutdown::Write)
            .map_err(|e| NetError::io(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_edge::{FeatureBatchMessage, PayloadCodec};

    /// Streams `total_samples` constant-feature samples from `devices` worker
    /// threads through a coordinator, one frame + heartbeat per round.
    fn run_cluster(devices: usize, spec: RoundSpec) -> ClusterReport {
        let coordinator = Coordinator::bind().unwrap();
        let addr = coordinator.local_addr();
        let mut handles = Vec::new();
        for device in 0..devices {
            handles.push(std::thread::spawn(move || {
                let mut client = WorkerClient::connect(&addr, device, 1.0e9).unwrap();
                assert_eq!(client.device_id(), device);
                for round in 0..spec.total_samples.div_ceil(spec.round_size) {
                    let lo = round * spec.round_size;
                    let hi = (lo + spec.round_size).min(spec.total_samples);
                    let mut batch = FeatureBatchMessage::new(device, 2);
                    for sample in lo..hi {
                        let feature = Tensor::full(&[2], (device * 100 + sample) as f32);
                        batch.push_tensor(sample, &feature).unwrap();
                    }
                    client
                        .send_frame(&batch.encode_with(PayloadCodec::F32))
                        .unwrap();
                    client.heartbeat(1.0e9).unwrap();
                }
                client.leave().unwrap();
            }));
        }
        let workers = coordinator.accept_workers(devices).unwrap();
        let report =
            Coordinator::collect_rounds(workers, &spec, &mut |concat: &Tensor| Ok(concat.clone()))
                .unwrap();
        for handle in handles {
            handle.join().unwrap();
        }
        report
    }

    #[test]
    fn three_workers_stream_rounds_to_exactly_once_fusion() {
        let spec = RoundSpec {
            round_size: 2,
            total_samples: 5,
            num_sub_models: 3,
        };
        let report = run_cluster(3, spec);
        assert_eq!(report.outputs.len(), 5);
        // Sub-model order fusion: device 0's feature comes first.
        assert_eq!(
            report.outputs[3].data(),
            &[3.0, 3.0, 103.0, 103.0, 203.0, 203.0]
        );
        // 3 rounds of (one frame + one heartbeat) per device, plus join/leave.
        assert_eq!(report.data_frames, 9);
        assert_eq!(report.heartbeats_seen, 9);
        assert_eq!(report.control_frames, 3 + 9 + 3);
        assert_eq!(
            report.per_device_rounds,
            BTreeMap::from([(0, 3), (1, 3), (2, 3)])
        );
        assert!(report.bytes_on_wire > 0);
        assert_eq!(report.predictions().unwrap().len(), 5);
    }

    #[test]
    fn duplicate_device_ids_are_rejected_at_admission() {
        let coordinator = Coordinator::bind().unwrap();
        let addr = coordinator.local_addr();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    // Both claim device 0; admission must refuse the second.
                    let _client = WorkerClient::connect(&addr, 0, 1.0);
                })
            })
            .collect();
        let err = coordinator.accept_workers(2).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }), "{err}");
        assert!(err.to_string().contains("device id 0"), "{err}");
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn a_worker_dying_mid_round_surfaces_as_an_io_error() {
        let spec = RoundSpec {
            round_size: 1,
            total_samples: 2,
            num_sub_models: 1,
        };
        let coordinator = Coordinator::bind().unwrap();
        let addr = coordinator.local_addr();
        let handle = std::thread::spawn(move || {
            // Join, then vanish without ever closing a round.
            let client = WorkerClient::connect(&addr, 0, 1.0).unwrap();
            drop(client);
        });
        let workers = coordinator.accept_workers(1).unwrap();
        let err = Coordinator::collect_rounds(workers, &spec, &mut |c: &Tensor| Ok(c.clone()))
            .unwrap_err();
        assert!(matches!(err, NetError::Io { .. }), "{err}");
        handle.join().unwrap();
    }
}
