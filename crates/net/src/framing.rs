//! The lane envelope: what one length-delimited record on a socket carries.
//!
//! Each record written by [`write_envelope`] is framed by
//! [`edvit_edge::wire::write_frame_bytes`] (`[u32 LE length][body]`) and its
//! body starts with a one-byte tag:
//!
//! ```text
//! [u32 LE length] [tag u8] [payload …]
//!                  0 = encoded wire-v2 frame (the payload is the frame)
//!                  1 = peer error report (the payload is a UTF-8 message)
//! ```
//!
//! Tag 0 is the normal case — every join / heartbeat / leave / feature-batch
//! frame travels as its exact encoded bytes, so the CRC-protected wire format
//! is what crosses the socket. Tag 1 mirrors the sim backend's in-band error
//! channel: a worker whose executor failed reports the message and the stream
//! aborts, instead of the failure masquerading as a silent crash.

use bytes::Bytes;
use edvit_edge::wire::{read_frame_bytes, write_frame_bytes};

/// Envelope tag: the payload is an encoded wire-v2 frame.
pub const TAG_FRAME: u8 = 0;
/// Envelope tag: the payload is a UTF-8 peer error message.
pub const TAG_ERROR: u8 = 1;

/// One decoded lane record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// An encoded wire-v2 frame.
    Frame(Bytes),
    /// A peer-reported error (fatal for the stream).
    Error(String),
}

impl Envelope {
    /// Bytes this envelope adds on the wire beyond the payload itself: the
    /// 4-byte length prefix plus the tag byte.
    pub const OVERHEAD: usize = 5;
}

/// Writes one envelope as a length-delimited record.
///
/// # Errors
///
/// Propagates any write error; an oversized payload is
/// [`std::io::ErrorKind::InvalidData`].
pub fn write_envelope<W: std::io::Write>(
    writer: &mut W,
    envelope: &Envelope,
) -> std::io::Result<()> {
    let (tag, payload): (u8, &[u8]) = match envelope {
        Envelope::Frame(frame) => (TAG_FRAME, frame.as_slice()),
        Envelope::Error(message) => (TAG_ERROR, message.as_bytes()),
    };
    let mut body = Vec::with_capacity(1 + payload.len());
    body.push(tag);
    body.extend_from_slice(payload);
    write_frame_bytes(writer, &body)
}

/// Reads one envelope. Returns `Ok(None)` on a clean EOF at a record
/// boundary.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] for an empty record, an
/// unknown tag, or a truncated stream, and propagates other read errors
/// (including read timeouts configured on the underlying stream).
pub fn read_envelope<R: std::io::Read>(reader: &mut R) -> std::io::Result<Option<Envelope>> {
    let Some(body) = read_frame_bytes(reader)? else {
        return Ok(None);
    };
    let bytes = body.as_slice();
    let Some((&tag, payload)) = bytes.split_first() else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "empty lane record (no tag byte)",
        ));
    };
    match tag {
        TAG_FRAME => Ok(Some(Envelope::Frame(Bytes::copy_from_slice(payload)))),
        TAG_ERROR => Ok(Some(Envelope::Error(
            String::from_utf8_lossy(payload).into_owned(),
        ))),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unknown lane record tag {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edvit_edge::ControlMessage;

    #[test]
    fn envelopes_round_trip() {
        let frame = ControlMessage::join(7, 1.5e9).encode();
        let mut stream = Vec::new();
        write_envelope(&mut stream, &Envelope::Frame(frame.clone())).unwrap();
        write_envelope(&mut stream, &Envelope::Error("device 7: oom".to_string())).unwrap();
        let mut reader = stream.as_slice();
        assert_eq!(
            read_envelope(&mut reader).unwrap(),
            Some(Envelope::Frame(frame))
        );
        assert_eq!(
            read_envelope(&mut reader).unwrap(),
            Some(Envelope::Error("device 7: oom".to_string()))
        );
        assert_eq!(read_envelope(&mut reader).unwrap(), None);
    }

    #[test]
    fn bad_tag_and_empty_record_are_invalid_data() {
        // A record with an unknown tag.
        let mut stream = Vec::new();
        edvit_edge::wire::write_frame_bytes(&mut stream, &[9u8, 1, 2]).unwrap();
        let err = read_envelope(&mut stream.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("tag 9"), "{err}");
        // A record with no tag byte at all.
        let mut empty = Vec::new();
        edvit_edge::wire::write_frame_bytes(&mut empty, &[]).unwrap();
        let err = read_envelope(&mut empty.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn overhead_matches_the_layout() {
        let mut stream = Vec::new();
        let frame = ControlMessage::leave(1, 2).encode();
        write_envelope(&mut stream, &Envelope::Frame(frame.clone())).unwrap();
        assert_eq!(stream.len(), frame.len() + Envelope::OVERHEAD);
    }
}
