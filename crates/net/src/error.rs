//! Error taxonomy of the transport layer.

/// Errors raised while standing up or driving a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Binding the coordinator's listening socket failed.
    Bind {
        /// The underlying OS error.
        message: String,
    },
    /// Connecting to a peer failed after the whole backoff schedule.
    Connect {
        /// Address dialed.
        addr: String,
        /// The last OS error observed.
        message: String,
    },
    /// Accepting an inbound peer connection failed or timed out.
    Accept {
        /// What went wrong.
        message: String,
    },
    /// A socket read or write failed mid-stream.
    Io {
        /// The underlying OS error.
        message: String,
    },
    /// The peer violated the lane protocol: a malformed envelope, an
    /// unexpected frame kind, or a handshake that was not a valid `Join`.
    Protocol {
        /// What the peer did wrong.
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Bind { message } => write!(f, "bind failed: {message}"),
            NetError::Connect { addr, message } => {
                write!(f, "connect to {addr} failed: {message}")
            }
            NetError::Accept { message } => write!(f, "accept failed: {message}"),
            NetError::Io { message } => write!(f, "socket i/o failed: {message}"),
            NetError::Protocol { message } => write!(f, "peer protocol violation: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// Wraps a mid-stream socket error.
    pub fn io(e: &std::io::Error) -> Self {
        NetError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(NetError, &str)> = vec![
            (
                NetError::Bind {
                    message: "in use".to_string(),
                },
                "bind failed: in use",
            ),
            (
                NetError::Connect {
                    addr: "127.0.0.1:9".to_string(),
                    message: "refused".to_string(),
                },
                "connect to 127.0.0.1:9 failed: refused",
            ),
            (
                NetError::Accept {
                    message: "timed out".to_string(),
                },
                "accept failed: timed out",
            ),
            (
                NetError::Io {
                    message: "reset".to_string(),
                },
                "socket i/o failed: reset",
            ),
            (
                NetError::Protocol {
                    message: "bad tag".to_string(),
                },
                "peer protocol violation: bad tag",
            ),
        ];
        for (error, expected) in cases {
            assert_eq!(error.to_string(), expected);
        }
    }

    #[test]
    fn io_wrapper_carries_the_os_message() {
        let os = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer reset");
        let wrapped = NetError::io(&os);
        assert!(wrapped.to_string().contains("peer reset"));
    }
}
