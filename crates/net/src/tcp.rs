//! The loopback TCP backend: the [`Transport`] contract over real sockets.
//!
//! Every lane is one TCP connection. The device side owns a bounded send
//! queue drained by a dedicated writer thread — `send` blocks when
//! `capacity` frames are undrained, reusing the scheduler's backpressure
//! semantics bound-for-bound (the kernel's socket buffer adds slack a
//! channel does not have, but the queue bound is what stops a fast device
//! from racing arbitrarily far ahead). The fusion side reads envelopes
//! straight off the socket with a read timeout armed from the scheduler's
//! round-denominated heartbeat deadline: a peer whose next frame misses the
//! deadline looks exactly like a disconnect, which is the trait's one
//! failure signal.
//!
//! Connection establishment retries with the same `min(2^(n−1), 8)` backoff
//! factor schedule the scheduler prices retries with on the virtual clock
//! ([`edvit_edge::StreamTiming::retry_backoff_seconds`]) — mapped to wall
//! time via [`RECONNECT_BASE`].

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel;
use edvit_edge::TransportKind;

use crate::framing::{read_envelope, write_envelope, Envelope};
use crate::transport::{FrameRx, FrameTx, LaneClosed, LaneEvent, Transport};
use crate::{NetError, Result};

/// Wall-time unit of one reconnect backoff step.
pub const RECONNECT_BASE: Duration = Duration::from_millis(50);

/// Connection attempts before [`connect_with_backoff`] gives up.
pub const CONNECT_ATTEMPTS: u32 = 6;

/// Floor of the mapped heartbeat deadline: virtual round intervals can be
/// microseconds, but a real worker needs wall time to compute a round.
const MIN_DEADLINE_SECONDS: f64 = 5.0;

/// Cap of the mapped heartbeat deadline, so a mis-configured run cannot hang
/// CI for longer than the job timeout.
const MAX_DEADLINE_SECONDS: f64 = 600.0;

/// Wall sleep before reconnect attempt `attempt` (1-based): the factor
/// schedule is `min(2^(attempt−1), 8)`, the same one
/// [`edvit_edge::StreamTiming::retry_backoff_seconds`] prices on the virtual
/// clock.
pub fn backoff_delay(attempt: u32) -> Duration {
    let factor = 1u64 << u64::from(attempt.saturating_sub(1)).min(3);
    RECONNECT_BASE * u32::try_from(factor).unwrap_or(8)
}

/// Dials `addr`, retrying up to `attempts` times with the round-denominated
/// backoff schedule between attempts.
///
/// # Errors
///
/// Returns [`NetError::Connect`] carrying the last OS error once the whole
/// schedule is exhausted.
pub fn connect_with_backoff(addr: &SocketAddr, attempts: u32) -> Result<TcpStream> {
    let mut last = "no attempt made".to_string();
    for attempt in 1..=attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt < attempts {
            std::thread::sleep(backoff_delay(attempt));
        }
    }
    Err(NetError::Connect {
        addr: addr.to_string(),
        message: last,
    })
}

/// The loopback TCP transport: one listener, one connection per lane.
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
    read_timeout: Duration,
}

impl TcpTransport {
    /// Binds a fresh loopback listener on an OS-assigned port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Bind`] when the OS refuses the socket.
    pub fn bind() -> Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| NetError::Bind {
            message: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| NetError::Bind {
            message: e.to_string(),
        })?;
        Ok(TcpTransport {
            listener,
            addr,
            read_timeout: Duration::from_secs_f64(MIN_DEADLINE_SECONDS),
        })
    }

    /// The loopback address lanes connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Device-side half of a TCP lane: a bounded queue feeding a writer thread.
struct TcpTx {
    queue: channel::SyncSender<Envelope>,
}

impl FrameTx for TcpTx {
    fn send(&self, frame: Bytes) -> std::result::Result<(), LaneClosed> {
        self.queue
            .send(Envelope::Frame(frame))
            .map_err(|_| LaneClosed)
    }

    fn send_error(&self, message: String) -> std::result::Result<(), LaneClosed> {
        self.queue
            .send(Envelope::Error(message))
            .map_err(|_| LaneClosed)
    }
}

/// Fusion-side half of a TCP lane: reads envelopes off the accepted socket.
struct TcpRx {
    stream: TcpStream,
    closed: bool,
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> LaneEvent {
        if self.closed {
            return LaneEvent::Closed;
        }
        match read_envelope(&mut self.stream) {
            Ok(Some(Envelope::Frame(frame))) => LaneEvent::Frame(frame),
            Ok(Some(Envelope::Error(message))) => LaneEvent::PeerError(message),
            // Clean EOF, a torn connection, a hostile envelope, or a missed
            // read deadline: all of them mean "the next heartbeat never
            // arrived", the trait's one failure signal.
            Ok(None) | Err(_) => {
                self.closed = true;
                LaneEvent::Closed
            }
        }
    }
}

impl Transport for TcpTransport {
    fn open_lane(
        &mut self,
        peer: usize,
        capacity: usize,
    ) -> Result<(Box<dyn FrameTx>, Box<dyn FrameRx>)> {
        // Loopback connect completes against the listen backlog, so dialing
        // before accepting cannot deadlock.
        let sender = connect_with_backoff(&self.addr, CONNECT_ATTEMPTS)?;
        let (receiver, _) = self.listener.accept().map_err(|e| NetError::Accept {
            message: format!("lane for peer {peer}: {e}"),
        })?;
        let configure = |stream: &TcpStream| -> std::io::Result<()> { stream.set_nodelay(true) };
        configure(&sender).map_err(|e| NetError::io(&e))?;
        configure(&receiver).map_err(|e| NetError::io(&e))?;
        receiver
            .set_read_timeout(Some(self.read_timeout))
            .map_err(|e| NetError::io(&e))?;

        let (queue_tx, queue_rx) = channel::bounded::<Envelope>(capacity);
        std::thread::spawn(move || {
            let mut stream = sender;
            // Drain until every sender half is gone and the queue is empty;
            // a write error drops the queue receiver, which unblocks any
            // sender stuck in `send` (its next send fails as LaneClosed).
            while let Ok(envelope) = queue_rx.recv() {
                if write_envelope(&mut stream, &envelope).is_err() {
                    return;
                }
            }
            // Graceful close: the FIN lands after the final (leave) frame.
            let _ = stream.shutdown(Shutdown::Write);
        });

        Ok((
            Box::new(TcpTx { queue: queue_tx }),
            Box::new(TcpRx {
                stream: receiver,
                closed: false,
            }),
        ))
    }

    fn set_round_deadline(&mut self, grace_rounds: u64, round_interval_seconds: f64) {
        let virtual_seconds = (grace_rounds + 1) as f64 * round_interval_seconds.max(0.0);
        let clamped = virtual_seconds.clamp(MIN_DEADLINE_SECONDS, MAX_DEADLINE_SECONDS);
        self.read_timeout = Duration::from_secs_f64(clamped);
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_matches_the_virtual_factors() {
        assert_eq!(backoff_delay(1), RECONNECT_BASE);
        assert_eq!(backoff_delay(2), RECONNECT_BASE * 2);
        assert_eq!(backoff_delay(3), RECONNECT_BASE * 4);
        assert_eq!(backoff_delay(4), RECONNECT_BASE * 8);
        assert_eq!(
            backoff_delay(9),
            RECONNECT_BASE * 8,
            "factor saturates at 8"
        );
    }

    #[test]
    fn connect_to_a_dead_port_exhausts_the_schedule() {
        // Bind-then-drop guarantees a port nothing listens on right now.
        let addr = {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap()
        };
        let err = connect_with_backoff(&addr, 2).unwrap_err();
        assert!(matches!(err, NetError::Connect { .. }), "{err}");
        assert!(err.to_string().contains(&addr.to_string()), "{err}");
    }

    #[test]
    fn tcp_lane_round_trips_frames_and_closes_cleanly() {
        let mut transport = TcpTransport::bind().unwrap();
        let (tx, mut rx) = transport.open_lane(0, 4).unwrap();
        tx.send(Bytes::copy_from_slice(b"alpha")).unwrap();
        tx.send_error("device 0: boom".to_string()).unwrap();
        tx.send(Bytes::copy_from_slice(b"omega")).unwrap();
        drop(tx);
        assert_eq!(
            rx.recv(),
            LaneEvent::Frame(Bytes::copy_from_slice(b"alpha"))
        );
        assert_eq!(
            rx.recv(),
            LaneEvent::PeerError("device 0: boom".to_string())
        );
        assert_eq!(
            rx.recv(),
            LaneEvent::Frame(Bytes::copy_from_slice(b"omega"))
        );
        assert_eq!(rx.recv(), LaneEvent::Closed);
        assert_eq!(rx.recv(), LaneEvent::Closed, "closed is sticky");
    }

    #[test]
    fn deadline_mapping_clamps_to_the_wall_window() {
        let mut transport = TcpTransport::bind().unwrap();
        transport.set_round_deadline(2, 1e-6);
        assert_eq!(transport.read_timeout, Duration::from_secs(5));
        transport.set_round_deadline(2, 1e6);
        assert_eq!(transport.read_timeout, Duration::from_secs(600));
        transport.set_round_deadline(1, 10.0);
        assert_eq!(transport.read_timeout, Duration::from_secs(20));
    }
}
