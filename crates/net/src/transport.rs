//! The `Transport` trait — the seam between the streaming scheduler and
//! whatever actually carries its frames — and the deterministic
//! [`SimTransport`] backend.
//!
//! A transport hands out *lanes*: one ordered, bounded, device→fusion byte
//! pipe per peer. The scheduler's contract with a lane is deliberately
//! minimal and identical across backends:
//!
//! * the sender ships encoded wire-v2 frames in order; `send` **blocks** when
//!   `capacity` frames are undrained (that bound is the scheduler's
//!   backpressure, not a transport detail);
//! * the receiver observes the same frames in the same order, then exactly
//!   one [`LaneEvent::Closed`] — whether the peer left gracefully, crashed,
//!   or went silent past the heartbeat deadline. The scheduler cannot (and
//!   must not) distinguish those cases at the transport level: "the next
//!   heartbeat never arrived" is the one failure signal, exactly as in the
//!   channel-based implementation this trait was extracted from;
//! * a peer-side executor failure travels in-band as
//!   [`LaneEvent::PeerError`] and aborts the stream.
//!
//! [`SimTransport`] is the bit-identical twin of the scheduler's original
//! hard-wired crossbeam plumbing: bounded channels, disconnect-as-death, no
//! wall clock anywhere. [`crate::TcpTransport`] carries the same contract
//! over loopback sockets.

use bytes::Bytes;
use crossbeam::channel;
use edvit_edge::TransportKind;

use crate::{Result, TcpTransport};

/// What a lane receiver observes next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneEvent {
    /// An encoded wire-v2 frame arrived.
    Frame(Bytes),
    /// The peer reported a runtime error; the stream must abort.
    PeerError(String),
    /// The lane is finished: graceful close, crash, or heartbeat deadline —
    /// all equivalent to the scheduler.
    Closed,
}

/// The receiving half of a lane went away; the sender should stop quietly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneClosed;

/// Device-side half of a lane.
pub trait FrameTx: Send {
    /// Ships one encoded frame, blocking while the lane's `capacity` frames
    /// are undrained.
    ///
    /// # Errors
    ///
    /// Returns [`LaneClosed`] when the receiving side is gone.
    fn send(&self, frame: Bytes) -> std::result::Result<(), LaneClosed>;

    /// Reports a fatal peer-side error in-band.
    ///
    /// # Errors
    ///
    /// Returns [`LaneClosed`] when the receiving side is gone.
    fn send_error(&self, message: String) -> std::result::Result<(), LaneClosed>;
}

/// Fusion-side half of a lane.
pub trait FrameRx: Send {
    /// Blocks for the next lane event. After the first [`LaneEvent::Closed`]
    /// every further call returns `Closed` again.
    fn recv(&mut self) -> LaneEvent;
}

/// A frame carrier: hands out one lane per peer and maps the scheduler's
/// round-denominated liveness deadline onto whatever clock it runs on.
pub trait Transport: Send {
    /// Opens the lane to `peer`, bounded at `capacity` undrained frames.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] when the backend cannot stand the lane up
    /// (socket connect/accept failures; the sim backend is infallible).
    fn open_lane(
        &mut self,
        peer: usize,
        capacity: usize,
    ) -> Result<(Box<dyn FrameTx>, Box<dyn FrameRx>)>;

    /// Installs the heartbeat deadline for lanes opened afterwards, given in
    /// the scheduler's native unit: a device whose next frame is
    /// `grace_rounds + 1` round intervals overdue is dead. The sim backend
    /// ignores this (its virtual clock charges the deadline analytically);
    /// the TCP backend maps it to a socket read timeout.
    fn set_round_deadline(&mut self, grace_rounds: u64, round_interval_seconds: f64);

    /// Which backend this is, for reports.
    fn kind(&self) -> TransportKind;
}

/// Builds the transport for a [`TransportKind`].
///
/// # Errors
///
/// Returns [`NetError::Bind`] when the TCP backend cannot bind its loopback
/// listener.
pub fn transport_for(kind: TransportKind) -> Result<Box<dyn Transport>> {
    match kind {
        TransportKind::Sim => Ok(Box::new(SimTransport::new())),
        TransportKind::Tcp => Ok(Box::new(TcpTransport::bind()?)),
    }
}

/// What travels through a sim lane: the same `Result<Bytes, String>` the
/// scheduler's original channel carried.
enum LaneItem {
    Frame(Bytes),
    Error(String),
}

/// The deterministic in-process backend: bounded crossbeam channels with
/// disconnect-as-death semantics, bit-identical to the plumbing the
/// [`Transport`] trait was extracted from.
#[derive(Debug, Default)]
pub struct SimTransport;

impl SimTransport {
    /// Creates the sim backend (stateless — every lane is independent).
    pub fn new() -> Self {
        SimTransport
    }
}

struct SimTx {
    tx: channel::SyncSender<LaneItem>,
}

struct SimRx {
    rx: channel::Receiver<LaneItem>,
}

impl FrameTx for SimTx {
    fn send(&self, frame: Bytes) -> std::result::Result<(), LaneClosed> {
        self.tx.send(LaneItem::Frame(frame)).map_err(|_| LaneClosed)
    }

    fn send_error(&self, message: String) -> std::result::Result<(), LaneClosed> {
        self.tx
            .send(LaneItem::Error(message))
            .map_err(|_| LaneClosed)
    }
}

impl FrameRx for SimRx {
    fn recv(&mut self) -> LaneEvent {
        match self.rx.recv() {
            Ok(LaneItem::Frame(frame)) => LaneEvent::Frame(frame),
            Ok(LaneItem::Error(message)) => LaneEvent::PeerError(message),
            Err(_) => LaneEvent::Closed,
        }
    }
}

impl Transport for SimTransport {
    fn open_lane(
        &mut self,
        _peer: usize,
        capacity: usize,
    ) -> Result<(Box<dyn FrameTx>, Box<dyn FrameRx>)> {
        let (tx, rx) = channel::bounded::<LaneItem>(capacity);
        Ok((Box::new(SimTx { tx }), Box::new(SimRx { rx })))
    }

    fn set_round_deadline(&mut self, _grace_rounds: u64, _round_interval_seconds: f64) {
        // Virtual time: the scheduler charges the deadline analytically and a
        // dead peer surfaces as a channel disconnect, so there is nothing to
        // arm here.
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_lane_preserves_order_and_closes_on_drop() {
        let mut transport = SimTransport::new();
        let (tx, mut rx) = transport.open_lane(0, 8).unwrap();
        tx.send(Bytes::copy_from_slice(b"one")).unwrap();
        tx.send(Bytes::copy_from_slice(b"two")).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), LaneEvent::Frame(Bytes::copy_from_slice(b"one")));
        assert_eq!(rx.recv(), LaneEvent::Frame(Bytes::copy_from_slice(b"two")));
        assert_eq!(rx.recv(), LaneEvent::Closed);
        assert_eq!(rx.recv(), LaneEvent::Closed);
    }

    #[test]
    fn sim_lane_delivers_peer_errors_in_band() {
        let mut transport = SimTransport::new();
        let (tx, mut rx) = transport.open_lane(3, 2).unwrap();
        tx.send_error("device 3: executor failed".to_string())
            .unwrap();
        assert_eq!(
            rx.recv(),
            LaneEvent::PeerError("device 3: executor failed".to_string())
        );
    }

    #[test]
    fn sender_sees_lane_closed_after_receiver_drops() {
        let mut transport = SimTransport::new();
        let (tx, rx) = transport.open_lane(0, 1).unwrap();
        drop(rx);
        assert_eq!(tx.send(Bytes::copy_from_slice(b"x")), Err(LaneClosed));
        assert_eq!(tx.send_error("late".to_string()), Err(LaneClosed));
    }

    #[test]
    fn factory_builds_the_requested_backend() {
        let sim = transport_for(TransportKind::Sim).unwrap();
        assert_eq!(sim.kind(), TransportKind::Sim);
        let tcp = transport_for(TransportKind::Tcp).unwrap();
        assert_eq!(tcp.kind(), TransportKind::Tcp);
    }
}
