//! Property-based tests for the tensor substrate.

use edvit_tensor::{init::TensorRng, stats, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8, 1usize..8)
}

fn tensor_with_dims(rows: usize, cols: usize, seed: u64) -> Tensor {
    TensorRng::new(seed).rand_uniform(&[rows, cols], -2.0, 2.0)
}

proptest! {
    #[test]
    fn reshape_preserves_numel_and_data((r, c) in small_dims(), seed in 0u64..1000) {
        let t = tensor_with_dims(r, c, seed);
        let flat = t.reshape(&[r * c]).unwrap();
        prop_assert_eq!(flat.numel(), t.numel());
        prop_assert_eq!(flat.data(), t.data());
    }

    #[test]
    fn transpose_is_involution((r, c) in small_dims(), seed in 0u64..1000) {
        let t = tensor_with_dims(r, c, seed);
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(tt.dims(), t.dims());
        prop_assert_eq!(tt.data(), t.data());
    }

    #[test]
    fn matmul_identity_left_and_right((r, c) in small_dims(), seed in 0u64..1000) {
        let t = tensor_with_dims(r, c, seed);
        let left = Tensor::eye(r).matmul(&t).unwrap();
        let right = t.matmul(&Tensor::eye(c)).unwrap();
        for (a, b) in left.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in right.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        (m, k) in small_dims(),
        n in 1usize..8,
        seed in 0u64..500,
    ) {
        let a = tensor_with_dims(m, k, seed);
        let b = tensor_with_dims(k, n, seed + 1);
        let c = tensor_with_dims(k, n, seed + 2);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_transposed_agrees_with_materialized_transpose(
        (m, k) in small_dims(),
        n in 1usize..8,
        seed in 0u64..500,
    ) {
        let a = tensor_with_dims(m, k, seed);
        let b = tensor_with_dims(n, k, seed + 7);
        let fast = a.matmul_transposed(&b).unwrap();
        let slow = a.matmul(&b.transpose().unwrap()).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn addition_commutes((r, c) in small_dims(), seed in 0u64..1000) {
        let a = tensor_with_dims(r, c, seed);
        let b = tensor_with_dims(r, c, seed + 13);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn softmax_rows_are_distributions((r, c) in small_dims(), seed in 0u64..1000) {
        let t = tensor_with_dims(r, c, seed).scale(5.0);
        let p = t.softmax_last_axis().unwrap();
        for row in p.data().chunks(c) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn softmax_invariant_to_constant_shift((r, c) in small_dims(), seed in 0u64..1000, shift in -10.0f32..10.0) {
        let t = tensor_with_dims(r, c, seed);
        let p1 = t.softmax_last_axis().unwrap();
        let p2 = t.add_scalar(shift).softmax_last_axis().unwrap();
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn layer_norm_output_is_standardized((r, c) in (1usize..8, 2usize..10), seed in 0u64..1000) {
        let t = tensor_with_dims(r, c, seed).scale(3.0).add_scalar(1.0);
        let y = t
            .layer_norm_last_axis(&Tensor::ones(&[c]), &Tensor::zeros(&[c]))
            .unwrap();
        for row in y.data().chunks(c) {
            let mean: f32 = row.iter().sum::<f32>() / c as f32;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn kl_divergence_nonnegative_and_zero_on_self(c in 2usize..16, seed in 0u64..1000) {
        let p = TensorRng::new(seed).rand_uniform(&[c], 0.01, 1.0);
        let q = TensorRng::new(seed + 1).rand_uniform(&[c], 0.01, 1.0);
        let d = stats::kl_divergence(&p, &q).unwrap();
        prop_assert!(d >= 0.0);
        prop_assert!(stats::kl_divergence(&p, &p).unwrap() < 1e-6);
    }

    #[test]
    fn select_then_concat_roundtrip((r, c) in (1usize..6, 2usize..8), seed in 0u64..500) {
        let t = tensor_with_dims(r, c, seed);
        let split = c / 2;
        let left = t.select_last_axis(&(0..split).collect::<Vec<_>>()).unwrap();
        let right = t.select_last_axis(&(split..c).collect::<Vec<_>>()).unwrap();
        let joined = Tensor::concat_last_axis(&[&left, &right]).unwrap();
        prop_assert_eq!(joined.data(), t.data());
    }

    #[test]
    fn gather_rows_preserves_row_content(r in 1usize..8, c in 1usize..8, seed in 0u64..500) {
        let t = tensor_with_dims(r, c, seed);
        let idx: Vec<usize> = (0..r).rev().collect();
        let g = t.gather_rows(&idx).unwrap();
        for (new_row, &orig) in idx.iter().enumerate() {
            let gathered = g.row(new_row).unwrap();
            let original = t.row(orig).unwrap();
            prop_assert_eq!(gathered.data(), original.data());
        }
    }

    #[test]
    fn argmax_last_axis_points_at_maximum((r, c) in small_dims(), seed in 0u64..500) {
        let t = tensor_with_dims(r, c, seed);
        let idx = t.argmax_last_axis().unwrap();
        for (row_i, &best) in idx.iter().enumerate() {
            let row = t.row(row_i).unwrap();
            let max = row.max();
            prop_assert!((row.data()[best] - max).abs() < 1e-7);
        }
    }

    #[test]
    fn rng_reproducibility(seed in 0u64..10_000) {
        let a = TensorRng::new(seed).randn(&[16], 0.0, 1.0);
        let b = TensorRng::new(seed).randn(&[16], 0.0, 1.0);
        prop_assert_eq!(a.data(), b.data());
    }
}
